// JOB demo: build the scaled Join-Order-Benchmark database, pick a query
// (default: the paper's Q8c), explain the hybridNDP plan, and execute it
// under every strategy.
//
//   ./build/examples/job_hybrid_demo [group] [variant] [scale]
//   ./build/examples/job_hybrid_demo 17 b 0.001

#include <cstdio>
#include <cstdlib>

#include "common/thread_pool.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"

using namespace hybridndp;

int main(int argc, char** argv) {
  const int group = argc > 1 ? atoi(argv[1]) : 8;
  const char variant = argc > 2 ? argv[2][0] : 'c';
  const double scale = argc > 3 ? atof(argv[3]) : 0.0005;

  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hw.mem.device_ndp_budget_bytes = 3 << 20;
  hw.mem.device_selection_bytes = 96 << 10;
  hw.mem.device_join_bytes = 48 << 10;

  lsm::VirtualStorage storage(&hw);
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 512 << 10;
  lsm::DB db(&storage, db_opts);
  rel::Catalog catalog(&db);

  printf("Building JOB database at scale %g ...\n", scale);
  job::JobDataOptions data_opts;
  data_opts.scale = scale;
  Status st = job::BuildJobDatabase(&catalog, data_opts);
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto query = job::MakeJobQuery({group, variant});
  if (!query.ok()) {
    fprintf(stderr, "unknown query %d%c\n", group, variant);
    return 1;
  }

  hybrid::PlannerConfig cfg;
  cfg.buffers.selection_buffer_bytes = 96 << 10;
  cfg.buffers.join_buffer_bytes = 48 << 10;
  cfg.buffers.shared_slot_bytes = 16 << 10;
  cfg.buffers.shared_slots = 4;

  hybrid::Planner planner(&catalog, &hw, cfg);
  auto plan = planner.PlanQuery(*query);
  if (!plan.ok()) {
    fprintf(stderr, "planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  printf("\n%s\n", plan->Explain().c_str());

  hybrid::HybridExecutor executor(&catalog, &storage, &hw, cfg);
  printf("%-14s %12s %12s %14s %12s\n", "strategy", "total ms", "waits ms",
         "interm. rows", "batches");
  // All strategies are independent cold-start runs; fan them over a worker
  // pool (each with its own fresh cache) and print in choice order.
  int threads = common::ThreadPool::DefaultThreads();
  if (const char* s = std::getenv("HNDP_THREADS")) threads = atoi(s);
  common::ThreadPool pool(threads);
  const uint64_t cache_bytes = storage.TotalBytes() * 2 / 5;
  const auto choices = hybrid::HybridExecutor::AllChoices(*plan);
  auto results = executor.RunAll(*plan, choices, &pool, [cache_bytes] {
    return std::make_unique<lsm::BlockCache>(cache_bytes);
  });
  for (size_t i = 0; i < choices.size(); ++i) {
    const auto& r = results[i];
    if (!r.ok()) {
      printf("%-14s (%s)\n", choices[i].ToString().c_str(),
             r.status().ToString().c_str());
      continue;
    }
    printf("%-14s %12.3f %12.3f %14llu %12d\n", choices[i].ToString().c_str(),
           r->total_ms(),
           (r->host_stages.initial_wait + r->host_stages.later_waits) /
               kNanosPerMilli,
           static_cast<unsigned long long>(r->device_rows), r->num_batches);
  }
  return 0;
}
