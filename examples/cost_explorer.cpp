// Cost-model explorer: how the hybridNDP offloading decision reacts to the
// hardware model (paper Sect. 7, Discussion — the HW-model generalizes to
// other accelerators). Sweeps the interconnect generation and the device
// compute power, re-planning the same query under each configuration.
//
//   ./build/examples/cost_explorer

#include <cstdio>

#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"

using namespace hybridndp;

namespace {

struct Setup {
  sim::HwParams hw;
  std::unique_ptr<lsm::VirtualStorage> storage;
  std::unique_ptr<lsm::DB> db;
  std::unique_ptr<rel::Catalog> catalog;
};

std::unique_ptr<Setup> Build(const sim::HwParams& hw) {
  auto s = std::make_unique<Setup>();
  s->hw = hw;
  s->storage = std::make_unique<lsm::VirtualStorage>(&s->hw);
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 512 << 10;
  s->db = std::make_unique<lsm::DB>(s->storage.get(), db_opts);
  s->catalog = std::make_unique<rel::Catalog>(s->db.get());
  job::JobDataOptions data_opts;
  data_opts.scale = 0.0005;
  if (!job::BuildJobDatabase(s->catalog.get(), data_opts).ok()) return nullptr;
  return s;
}

sim::HwParams BaseHw() {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hw.mem.device_ndp_budget_bytes = 3 << 20;
  hw.mem.device_selection_bytes = 96 << 10;
  hw.mem.device_join_bytes = 48 << 10;
  return hw;
}

hybrid::PlannerConfig Config() {
  hybrid::PlannerConfig cfg;
  cfg.buffers.selection_buffer_bytes = 96 << 10;
  cfg.buffers.join_buffer_bytes = 48 << 10;
  cfg.buffers.shared_slot_bytes = 16 << 10;
  cfg.buffers.shared_slots = 4;
  return cfg;
}

void Explore(const char* label, Setup* s) {
  hybrid::Planner planner(s->catalog.get(), &s->hw, Config());
  hybrid::HybridExecutor executor(s->catalog.get(), s->storage.get(), &s->hw,
                                  Config());
  auto query = job::MakeJobQuery({8, 'c'});
  auto plan = planner.PlanQuery(*query);
  if (!plan.ok()) return;

  double best_t = -1;
  hybrid::ExecChoice best;
  for (const auto& choice : hybrid::HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache cache(s->storage->TotalBytes() * 2 / 5);
    auto r = executor.Run(*plan, choice, &cache);
    if (!r.ok()) continue;
    if (best_t < 0 || r->total_ms() < best_t) {
      best_t = r->total_ms();
      best = choice;
    }
  }
  printf("%-34s planner: %-12s measured best: %-12s (%.2f ms)\n", label,
         plan->recommended.ToString().c_str(), best.ToString().c_str(),
         best_t);
}

}  // namespace

int main() {
  printf("=== Q8c offloading decision across hardware configurations ===\n\n");

  printf("-- interconnect sweep (faster PCIe favors the host) --\n");
  for (int gen : {1, 2, 3, 4}) {
    sim::HwParams hw = BaseHw();
    hw.pcie.version = gen;
    auto s = Build(hw);
    if (!s) return 1;
    char label[64];
    snprintf(label, sizeof(label), "PCIe gen%d x8 (%.1f GB/s)", gen,
             hw.pcie.BytesPerSec() / 1e9);
    Explore(label, s.get());
  }

  printf("\n-- device compute sweep (enterprise-class smart storage) --\n");
  for (double factor : {0.5, 1.0, 4.0, 16.0}) {
    sim::HwParams hw = BaseHw();
    hw.device_cpu.effective_hz *= factor;
    hw.device_cpu.coremark_score *= factor;
    auto s = Build(hw);
    if (!s) return 1;
    char label[64];
    snprintf(label, sizeof(label), "device compute x%.1f (ratio %.0f:1)",
             factor, hw.ComputeRatio());
    Explore(label, s.get());
  }

  printf("\npaper Sect. 7: consumer-class devices favor data-movement\n"
         "reduction (early splits); more compute shifts the balance toward\n"
         "deeper offloading.\n");
  return 0;
}
