// Cooperative-execution trace (paper Figs. 7/17): visualizes the merged
// host/device timeline of a hybrid split — when each shared-buffer batch is
// produced by the on-device engine, when the host fetches it, and where
// either side stalls.
//
//   ./build/examples/cooperative_trace

#include <cstdio>
#include <string>

#include "hybrid/coop.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"

using namespace hybridndp;

namespace {

/// ASCII bar of `width` chars showing [t0, t1) within [0, total).
std::string Bar(double t0, double t1, double total, int width, char fill) {
  std::string bar(width, '.');
  const int a = static_cast<int>(t0 / total * width);
  const int b = static_cast<int>(t1 / total * width);
  for (int i = a; i <= b && i < width; ++i) bar[i] = fill;
  return bar;
}

}  // namespace

int main() {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hw.mem.device_ndp_budget_bytes = 3 << 20;
  hw.mem.device_selection_bytes = 96 << 10;
  hw.mem.device_join_bytes = 48 << 10;

  lsm::VirtualStorage storage(&hw);
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 512 << 10;
  lsm::DB db(&storage, db_opts);
  rel::Catalog catalog(&db);
  job::JobDataOptions data_opts;
  data_opts.scale = 0.0005;
  if (!job::BuildJobDatabase(&catalog, data_opts).ok()) return 1;

  hybrid::PlannerConfig cfg;
  cfg.buffers.selection_buffer_bytes = 96 << 10;
  cfg.buffers.join_buffer_bytes = 48 << 10;
  cfg.buffers.shared_slot_bytes = 4 << 10;  // small slots: many batches
  cfg.buffers.shared_slots = 4;

  auto query = job::MakeJobQuery({8, 'd'});
  hybrid::Planner planner(&catalog, &hw, cfg);
  auto plan = planner.PlanQuery(*query);
  if (!plan.ok()) return 1;

  hybrid::HybridExecutor executor(&catalog, &storage, &hw, cfg);
  lsm::BlockCache cache(storage.TotalBytes() * 2 / 5);
  auto r = executor.Run(*plan, {hybrid::Strategy::kHybrid, 1}, &cache);
  if (!r.ok()) {
    fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  const double total = r->total_ms();
  printf("JOB Q8d, split H1: total %.2f ms, %d batches\n\n", total,
         r->num_batches);
  printf("timeline  0 ms %*s %.2f ms\n", 48, "", total);

  // Reconstruct the visible phases from the stage accounting.
  const double setup = r->host_stages.ndp_setup / kNanosPerMilli;
  const double initial = r->host_stages.initial_wait / kNanosPerMilli;
  const double dev_busy = r->device_busy_ns / kNanosPerMilli;
  printf("device    |%s| NDP pipeline (busy %.2f ms, stalls %.2f ms)\n",
         Bar(setup, setup + dev_busy, total, 56, '#').c_str(), dev_busy,
         r->device_stall_ns / kNanosPerMilli);
  printf("host      |%s| setup\n", Bar(0, setup, total, 56, 'S').c_str());
  printf("host      |%s| wait for first results\n",
         Bar(setup, setup + initial, total, 56, 'w').c_str());
  printf("host      |%s| PQEP processing + fetches\n",
         Bar(setup + initial, total, total, 56, '#').c_str());

  printf("\nStage breakdown (paper Table 4, left):\n%s",
         r->host_stages.ToString().c_str());
  printf("\nDevice op breakdown (paper Table 4, right):\n%s",
         r->device_counters.BreakdownString().c_str());
  return 0;
}
