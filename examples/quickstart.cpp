// Quickstart: build a tiny database, run one query on the host-only stack
// and under hybridNDP, and compare the simulated timelines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "lsm/db.h"
#include "rel/table.h"
#include "sim/hw_model.h"

using namespace hybridndp;

int main() {
  // 1. The hardware model: a host CPU and a COSMOS+-class smart storage
  //    device (weak ARM core, fast internal flash path, PCIe 2.0 x8).
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hw.mem.device_ndp_budget_bytes = 8 << 20;  // scaled-down NDP buffers
  hw.mem.device_selection_bytes = 96 << 10;
  hw.mem.device_join_bytes = 48 << 10;

  // 2. An LSM store on the simulated flash and two relational tables.
  lsm::VirtualStorage storage(&hw);
  lsm::DB db(&storage, lsm::DBOptions{});
  rel::Catalog catalog(&db);

  rel::TableDef users;
  users.name = "users";
  users.schema = rel::Schema({rel::IntCol("id"), rel::CharCol("name", 16),
                              rel::CharCol("country", 8)});
  users.pk_col = 0;
  rel::Table* users_t = catalog.CreateTable(std::move(users));

  rel::TableDef events;
  events.name = "events";
  events.schema = rel::Schema({rel::IntCol("id"), rel::IntCol("user_id"),
                               rel::IntCol("amount")});
  events.pk_col = 0;
  events.indexes.push_back({"user_id", 1});  // secondary index
  rel::Table* events_t = catalog.CreateTable(std::move(events));

  Rng rng(42);
  for (int i = 1; i <= 2000; ++i) {
    rel::RowBuilder rb(&users_t->schema());
    rb.SetInt(0, i)
        .SetString(1, "user" + std::to_string(i))
        .SetString(2, i % 7 == 0 ? "de" : "us");
    if (!users_t->Insert(rb.row()).ok()) return 1;
  }
  for (int i = 1; i <= 50000; ++i) {
    rel::RowBuilder rb(&events_t->schema());
    rb.SetInt(0, i)
        .SetInt(1, static_cast<int32_t>(rng.Zipf(2000, 0.4) + 1))
        .SetInt(2, static_cast<int32_t>(rng.Uniform(1000)));
    if (!events_t->Insert(rb.row()).ok()) return 1;
  }
  (void)db.FlushAll();
  (void)users_t->AnalyzeStats();
  (void)events_t->AnalyzeStats();

  // 3. A join query with an aggregate:
  //    SELECT COUNT(*), SUM(e.amount) FROM events e, users u
  //    WHERE u.country = 'de' AND e.user_id = u.id;
  hybrid::Query q;
  q.name = "quickstart";
  q.tables.push_back({"events", "e", nullptr});
  q.tables.push_back(
      {"users", "u", exec::Expr::CmpStr("u.country", exec::CmpOp::kEq, "de")});
  q.joins.push_back({"e", "user_id", "u", "id"});
  q.has_agg = true;
  q.aggs = {{exec::AggFn::kCount, "", "events"},
            {exec::AggFn::kSum, "e.amount", "total_amount"}};

  // 4. Plan: the hybridNDP cost model computes the QEP split. The buffer
  //    configuration must fit the device's NDP budget.
  hybrid::PlannerConfig cfg;
  cfg.buffers.selection_buffer_bytes = 96 << 10;
  cfg.buffers.join_buffer_bytes = 48 << 10;
  cfg.buffers.shared_slot_bytes = 16 << 10;
  cfg.buffers.shared_slots = 4;
  hybrid::Planner planner(&catalog, &hw, cfg);
  auto plan = planner.PlanQuery(q);
  if (!plan.ok()) {
    fprintf(stderr, "planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  printf("%s\n", plan->Explain().c_str());

  // 5. Execute under several strategies and compare.
  hybrid::HybridExecutor executor(&catalog, &storage, &hw, cfg);
  for (auto choice : hybrid::HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache cache(32 << 20);
    auto r = executor.Run(*plan, choice, &cache);
    if (!r.ok()) {
      printf("%-12s -> %s\n", choice.ToString().c_str(),
             r.status().ToString().c_str());
      continue;
    }
    rel::RowView row(r->rows[0].data(), &r->schema);
    printf("%-12s -> %8.3f ms   (COUNT=%d SUM=%d)\n",
           choice.ToString().c_str(), r->total_ms(), row.GetInt(0),
           row.GetInt(1));
  }
  printf("\nThe planner recommends: %s\n", plan->recommended.ToString().c_str());
  return 0;
}
