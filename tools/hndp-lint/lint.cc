#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hndplint {

namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replace the contents of comments, string literals and char literals with
/// spaces (newlines kept), so token scans cannot match inside them.
std::string StripCommentsAndStrings(std::string_view in) {
  std::string out(in);
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRawStr };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(in[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          size_t p = i + 2;
          raw_delim.clear();
          while (p < in.size() && in[p] != '(') raw_delim += in[p++];
          st = St::kRawStr;
          for (size_t k = i; k <= p && k < in.size(); ++k) out[k] = ' ';
          i = p;
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'' && (i == 0 || !IsIdentChar(in[i - 1]))) {
          // Skip digit separators like 20'000 via the ident-char guard.
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawStr: {
        const std::string end = ")" + raw_delim + "\"";
        if (in.compare(i, end.size(), end) == 0) {
          for (size_t k = i; k < i + end.size(); ++k) out[k] = ' ';
          i += end.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

int LineOf(std::string_view s, size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + pos, '\n'));
}

std::string NormalizePath(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// Per-line suppressions parsed from the original (unstripped) source.
struct Suppressions {
  /// line -> rules allowed on that line (with justification present).
  std::map<int, std::set<std::string>> allow;
  /// allow() comments missing a justification.
  std::vector<int> bare;
};

Suppressions ParseSuppressions(std::string_view content) {
  Suppressions sup;
  int line = 1;
  size_t start = 0;
  while (start <= content.size()) {
    size_t eol = content.find('\n', start);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view l = content.substr(start, eol - start);
    const std::string_view kTag = "hndp-lint: allow(";
    size_t at = l.find(kTag);
    while (at != std::string_view::npos) {
      const size_t open = at + kTag.size();
      const size_t close = l.find(')', open);
      if (close == std::string_view::npos) break;
      const std::string rule(l.substr(open, close - open));
      std::string_view rest = l.substr(close + 1);
      const bool justified =
          rest.find_first_not_of(" \t") != std::string_view::npos;
      if (justified) {
        sup.allow[line].insert(rule);
      } else {
        sup.bare.push_back(line);
      }
      at = l.find(kTag, close);
    }
    start = eol + 1;
    ++line;
  }
  return sup;
}

bool Suppressed(const Suppressions& sup, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    auto it = sup.allow.find(l);
    if (it != sup.allow.end() &&
        (it->second.count(rule) != 0 || it->second.count("all") != 0)) {
      return true;
    }
  }
  return false;
}

/// Find the matching '>' for the '<' at `open` (handles nesting; bails at
/// statement terminators so `a < b;` never scans past the expression).
size_t MatchAngle(std::string_view s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (--depth == 0) return i;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

/// Identifier starting at or after `pos` (skipping whitespace and a
/// leading & or *), or empty if the next token is not an identifier.
std::string NextIdentifier(std::string_view s, size_t pos) {
  while (pos < s.size() &&
         (std::isspace(static_cast<unsigned char>(s[pos])) != 0 ||
          s[pos] == '&' || s[pos] == '*')) {
    ++pos;
  }
  size_t end = pos;
  while (end < s.size() && IsIdentChar(s[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
    return "";
  }
  return std::string(s.substr(pos, end - pos));
}

/// Names of variables/members declared with an unordered_{map,set} type.
std::set<std::string> CollectUnorderedNames(std::string_view stripped) {
  std::set<std::string> names;
  const std::string_view kPat = "unordered_";
  size_t at = stripped.find(kPat);
  while (at != std::string_view::npos) {
    const std::string_view after = stripped.substr(at);
    if (after.rfind("unordered_map", 0) == 0 ||
        after.rfind("unordered_set", 0) == 0) {
      const size_t open = stripped.find('<', at);
      if (open != std::string_view::npos && open < at + 16) {
        const size_t close = MatchAngle(stripped, open);
        if (close != std::string_view::npos) {
          const std::string name = NextIdentifier(stripped, close + 1);
          if (!name.empty()) names.insert(name);
        }
      }
    }
    at = stripped.find(kPat, at + 1);
  }
  return names;
}

bool IsSerializationName(const std::string& name) {
  return name.find("Json") != std::string::npos ||
         name.rfind("Export", 0) == 0 || name.rfind("Serialize", 0) == 0;
}

/// One function definition found in stripped source.
struct FuncDef {
  std::string name;
  size_t body_begin = 0;  // position after '{'
  size_t body_end = 0;    // position of matching '}'
};

/// Scan for `name (args) [const] {` definitions. Token-level heuristic:
/// good enough to locate serialization functions, which is all we use it
/// for.
std::vector<FuncDef> FindFunctionDefs(std::string_view s) {
  std::vector<FuncDef> defs;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '(') continue;
    // Identifier immediately before '('.
    size_t ne = i;
    while (ne > 0 && std::isspace(static_cast<unsigned char>(s[ne - 1]))) --ne;
    size_t nb = ne;
    while (nb > 0 && IsIdentChar(s[nb - 1])) --nb;
    if (nb == ne) continue;
    const std::string name(s.substr(nb, ne - nb));
    // Matching ')'.
    int depth = 0;
    size_t close = std::string_view::npos;
    for (size_t j = i; j < s.size(); ++j) {
      if (s[j] == '(') ++depth;
      if (s[j] == ')' && --depth == 0) {
        close = j;
        break;
      }
      if (s[j] == ';' || s[j] == '{') break;
    }
    if (close == std::string_view::npos) continue;
    // Skip trailing qualifiers up to '{' (const/noexcept/override/->ret).
    size_t k = close + 1;
    while (k < s.size() && s[k] != '{' && s[k] != ';' && s[k] != '(' &&
           s[k] != '}' && s[k] != '=') {
      ++k;
    }
    if (k >= s.size() || s[k] != '{') continue;
    // Matching '}'.
    int bd = 0;
    size_t end = std::string_view::npos;
    for (size_t j = k; j < s.size(); ++j) {
      if (s[j] == '{') ++bd;
      if (s[j] == '}' && --bd == 0) {
        end = j;
        break;
      }
    }
    if (end == std::string_view::npos) continue;
    defs.push_back(FuncDef{name, k + 1, end});
  }
  return defs;
}

bool PathAllowlisted(const std::string& norm_path,
                     const std::vector<std::string>& allowlist) {
  for (const auto& frag : allowlist) {
    if (norm_path.find(frag) != std::string::npos) return true;
  }
  return false;
}

// --- Rule: wall-clock -------------------------------------------------------

const char* const kClockTokens[] = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
};

void CheckWallClock(const std::string& path, std::string_view stripped,
                    std::vector<Violation>* out) {
  for (const char* tok : kClockTokens) {
    const std::string_view t(tok);
    size_t at = stripped.find(t);
    while (at != std::string_view::npos) {
      const bool bounded =
          (at == 0 || !IsIdentChar(stripped[at - 1])) &&
          (at + t.size() >= stripped.size() ||
           !IsIdentChar(stripped[at + t.size()]));
      if (bounded) {
        out->push_back({path, LineOf(stripped, at), "wall-clock",
                        std::string(t) +
                            " is a nondeterminism source; simulated "
                            "timelines must replay bit-identically"});
      }
      at = stripped.find(t, at + 1);
    }
  }
  // rand( / srand( / time( / clock(: flag bare and std::-qualified calls,
  // skip member calls (x.clock(), ctx->time()) and other ::-qualified names.
  for (const char* tok : {"rand", "srand", "time", "clock"}) {
    const std::string_view t(tok);
    size_t at = stripped.find(t);
    while (at != std::string_view::npos) {
      const size_t after = at + t.size();
      const bool word =
          (at == 0 || !IsIdentChar(stripped[at - 1])) &&
          after < stripped.size() && !IsIdentChar(stripped[after]);
      if (word) {
        size_t p = after;
        while (p < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[p]))) {
          ++p;
        }
        const bool is_call = p < stripped.size() && stripped[p] == '(';
        bool qualified_member = false;
        bool std_qualified = false;
        if (at >= 1 && (stripped[at - 1] == '.' ||
                        (at >= 2 && stripped[at - 2] == '-' &&
                         stripped[at - 1] == '>'))) {
          qualified_member = true;
        } else if (at >= 2 && stripped[at - 1] == ':' &&
                   stripped[at - 2] == ':') {
          size_t qe = at - 2;
          size_t qb = qe;
          while (qb > 0 && IsIdentChar(stripped[qb - 1])) --qb;
          const std::string_view qual = stripped.substr(qb, qe - qb);
          if (qual == "std") {
            std_qualified = true;
          } else {
            qualified_member = true;  // SomeClass::time — not libc time()
          }
        }
        if (is_call && !qualified_member &&
            (std_qualified || stripped[at == 0 ? 0 : at - 1] != ':')) {
          out->push_back({path, LineOf(stripped, at), "wall-clock",
                          std::string(t) +
                              "() is a nondeterminism source; use the "
                              "simulated clock (src/sim) or common::Random"});
        }
      }
      at = stripped.find(t, at + 1);
    }
  }
}

// --- Rule: unordered-serialize ---------------------------------------------

void CheckUnorderedSerialize(const std::string& path,
                             std::string_view stripped,
                             std::vector<Violation>* out) {
  const std::set<std::string> unordered = CollectUnorderedNames(stripped);
  for (const FuncDef& fn : FindFunctionDefs(stripped)) {
    if (!IsSerializationName(fn.name)) continue;
    std::string_view body =
        stripped.substr(fn.body_begin, fn.body_end - fn.body_begin);
    // Range-fors whose range expression is (or dereferences) an
    // unordered container, plus any direct unordered_* mention.
    size_t at = body.find("for");
    while (at != std::string_view::npos) {
      const bool word = (at == 0 || !IsIdentChar(body[at - 1])) &&
                        at + 3 < body.size() && !IsIdentChar(body[at + 3]);
      if (word) {
        const size_t open = body.find('(', at);
        if (open != std::string_view::npos && open < at + 8) {
          int depth = 0;
          size_t close = std::string_view::npos;
          for (size_t j = open; j < body.size(); ++j) {
            if (body[j] == '(') ++depth;
            if (body[j] == ')' && --depth == 0) {
              close = j;
              break;
            }
          }
          if (close != std::string_view::npos) {
            const std::string_view head = body.substr(open, close - open);
            const size_t colon = head.find(':');
            if (colon != std::string_view::npos &&
                (colon + 1 >= head.size() || head[colon + 1] != ':') &&
                (colon == 0 || head[colon - 1] != ':')) {
              std::string range_expr(head.substr(colon + 1));
              // Trim and strip trailing member access like `m_.items`.
              std::string ident;
              for (char c : range_expr) {
                if (IsIdentChar(c)) {
                  ident += c;
                } else if (!ident.empty() && c != '.' && c != '-' &&
                           c != '>') {
                  break;
                } else if (c == '.' || c == '-' || c == '>') {
                  ident.clear();
                }
              }
              if (unordered.count(ident) != 0 ||
                  range_expr.find("unordered_") != std::string::npos) {
                out->push_back(
                    {path, LineOf(stripped, fn.body_begin + at),
                     "unordered-serialize",
                     "serialization function '" + fn.name +
                         "' iterates an unordered container ('" + ident +
                         "'); exported ordering must be canonical — sort "
                         "keys or use std::map"});
              }
            }
          }
        }
      }
      at = body.find("for", at + 1);
    }
  }
}

// --- Rules: raw-new / raw-delete -------------------------------------------

void CheckRawNewDelete(const std::string& path, std::string_view stripped,
                       std::vector<Violation>* out) {
  for (const char* tok : {"new", "delete"}) {
    const std::string_view t(tok);
    size_t at = stripped.find(t);
    while (at != std::string_view::npos) {
      const bool word = (at == 0 || !IsIdentChar(stripped[at - 1])) &&
                        (at + t.size() >= stripped.size() ||
                         !IsIdentChar(stripped[at + t.size()]));
      if (word) {
        // `= delete` / `= default`-style declarations and `operator new`
        // overloads are not raw allocations.
        size_t prev = at;
        while (prev > 0 && std::isspace(static_cast<unsigned char>(
                               stripped[prev - 1]))) {
          --prev;
        }
        const bool deleted_fn = t == "delete" && prev > 0 &&
                                stripped[prev - 1] == '=';
        const bool operator_decl =
            prev >= 8 &&
            stripped.substr(prev - 8, 8) == "operator";
        if (!deleted_fn && !operator_decl) {
          out->push_back({path, LineOf(stripped, at),
                          t == "new" ? "raw-new" : "raw-delete",
                          std::string("raw `") + std::string(t) +
                              "` in checked sources; use std::make_unique "
                              "or a container"});
        }
      }
      at = stripped.find(t, at + 1);
    }
  }
}

// --- Rule: discarded-status -------------------------------------------------

const char* const kStmtKeywords[] = {"return", "if",   "while", "for",
                                     "switch", "case", "else",  "do",
                                     "co_return"};

void CheckDiscardedStatus(const std::string& path, std::string_view stripped,
                          const std::set<std::string>& status_fns,
                          std::vector<Violation>* out) {
  int line_no = 0;
  size_t start = 0;
  while (start <= stripped.size()) {
    ++line_no;
    size_t eol = stripped.find('\n', start);
    if (eol == std::string_view::npos) eol = stripped.size();
    std::string_view l = stripped.substr(start, eol - start);
    start = eol + 1;
    // Trim.
    size_t b = l.find_first_not_of(" \t");
    if (b == std::string_view::npos) continue;
    size_t e = l.find_last_not_of(" \t");
    l = l.substr(b, e - b + 1);
    if (l.empty() || l.back() != ';') continue;
    // Bare-statement shape: optional receiver chain, then a call.
    bool keyword = false;
    for (const char* kw : kStmtKeywords) {
      const std::string_view k(kw);
      if (l.size() > k.size() && l.substr(0, k.size()) == k &&
          !IsIdentChar(l[k.size()])) {
        keyword = true;
        break;
      }
    }
    if (keyword) continue;
    if (l.find('=') != std::string_view::npos) continue;  // assignment/init
    if (l.rfind("(void)", 0) == 0) continue;  // deliberate, visible discard
    // Callee: identifier immediately before the first '('.
    const size_t paren = l.find('(');
    if (paren == std::string_view::npos || paren == 0) continue;
    size_t ne = paren;
    while (ne > 0 && std::isspace(static_cast<unsigned char>(l[ne - 1]))) --ne;
    size_t nb = ne;
    while (nb > 0 && IsIdentChar(l[nb - 1])) --nb;
    if (nb == ne) continue;
    // A callee preceded by whitespace is a declaration (`Status Flush();`)
    // or a keyword-led statement, not a call expression; calls start the
    // statement or follow `.`, `->` or `::`.
    if (nb > 0 && l[nb - 1] != '.' && l[nb - 1] != '>' && l[nb - 1] != ':') {
      continue;
    }
    const std::string callee(l.substr(nb, ne - nb));
    if (status_fns.count(callee) == 0) continue;
    // The statement must END at that call (no `.ok()` etc. after it).
    int depth = 0;
    size_t close = std::string_view::npos;
    for (size_t j = paren; j < l.size(); ++j) {
      if (l[j] == '(') ++depth;
      if (l[j] == ')' && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == std::string_view::npos) continue;
    const std::string_view tail = l.substr(close + 1);
    if (tail.find_first_not_of(" \t;") != std::string_view::npos) continue;
    out->push_back({path, line_no, "discarded-status",
                    "result of Status-returning call '" + callee +
                        "' is discarded; check it, propagate it, or "
                        "(void)-cast with a justification"});
  }
}

std::string ReadFileOrEmpty(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

}  // namespace

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::vector<std::string> CollectStatusFunctions(std::string_view content) {
  const std::string stripped = StripCommentsAndStrings(content);
  std::vector<std::string> out;
  const std::string_view kStatus = "Status";
  size_t at = stripped.find(kStatus);
  while (at != std::string_view::npos) {
    const size_t after = at + kStatus.size();
    const bool word = (at == 0 || (!IsIdentChar(stripped[at - 1]) &&
                                   stripped[at - 1] != ':')) &&
                      after < stripped.size() &&
                      std::isspace(static_cast<unsigned char>(
                          stripped[after])) != 0;
    // `common::Status Foo(` is found via the unqualified occurrence check
    // failing; also accept a `::`-qualified Status return type.
    const bool qualified =
        at >= 2 && stripped[at - 1] == ':' && stripped[at - 2] == ':';
    if ((word || (qualified && after < stripped.size() &&
                  std::isspace(static_cast<unsigned char>(stripped[after])) !=
                      0))) {
      const std::string name = NextIdentifier(stripped, after);
      if (!name.empty()) {
        size_t p = after;
        while (p < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[p]))) {
          ++p;
        }
        p += name.size();
        while (p < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[p]))) {
          ++p;
        }
        if (p < stripped.size() && stripped[p] == '(') out.push_back(name);
      }
    }
    at = stripped.find(kStatus, at + 1);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Violation> LintSource(
    const std::string& path, std::string_view content, const Options& opts,
    const std::vector<std::string>& status_functions) {
  const std::string norm = NormalizePath(path);
  const std::string stripped = StripCommentsAndStrings(content);
  const Suppressions sup = ParseSuppressions(content);

  std::vector<Violation> raw;
  if (!PathAllowlisted(norm, opts.wallclock_allowlist)) {
    CheckWallClock(path, stripped, &raw);
  }
  CheckUnorderedSerialize(path, stripped, &raw);
  CheckRawNewDelete(path, stripped, &raw);
  std::set<std::string> status_fns(status_functions.begin(),
                                   status_functions.end());
  status_fns.insert(opts.extra_status_functions.begin(),
                    opts.extra_status_functions.end());
  CheckDiscardedStatus(path, stripped, status_fns, &raw);

  std::vector<Violation> out;
  for (auto& v : raw) {
    if (!Suppressed(sup, v.line, v.rule)) out.push_back(std::move(v));
  }
  for (int line : sup.bare) {
    out.push_back({path, line, "bare-allow",
                   "hndp-lint: allow(...) needs a one-line justification "
                   "after the closing parenthesis"});
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.line < b.line;
  });
  return out;
}

std::vector<Violation> LintFile(const std::string& path, const Options& opts) {
  bool ok = false;
  const std::string content = ReadFileOrEmpty(path, &ok);
  if (!ok) {
    return {{path, 0, "io", "cannot read file"}};
  }
  return LintSource(path, content, opts, CollectStatusFunctions(content));
}

std::vector<Violation> LintFiles(const std::vector<std::string>& paths,
                                 const Options& opts) {
  // Pass 1: union of Status-returning declarations over the whole set, so a
  // discard in one file of a function declared in another is still caught.
  std::vector<std::string> status_fns;
  std::vector<std::pair<std::string, std::string>> contents;
  std::vector<Violation> out;
  for (const auto& p : paths) {
    bool ok = false;
    std::string c = ReadFileOrEmpty(p, &ok);
    if (!ok) {
      out.push_back({p, 0, "io", "cannot read file"});
      continue;
    }
    auto fns = CollectStatusFunctions(c);
    status_fns.insert(status_fns.end(), fns.begin(), fns.end());
    contents.emplace_back(p, std::move(c));
  }
  std::sort(status_fns.begin(), status_fns.end());
  status_fns.erase(std::unique(status_fns.begin(), status_fns.end()),
                   status_fns.end());
  for (const auto& [p, c] : contents) {
    auto vs = LintSource(p, c, opts, status_fns);
    out.insert(out.end(), vs.begin(), vs.end());
  }
  return out;
}

std::vector<std::string> ExpandArg(const std::string& arg,
                                   const std::string& root) {
  std::vector<std::string> files;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
  };
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (auto it = fs::recursive_directory_iterator(arg, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file(ec) && is_source(it->path())) {
        files.push_back(it->path().string());
      }
    }
  } else if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".json") {
    // compile_commands.json: pull the "file" entries (plus sibling
    // headers), filtered to `root` when given. Hand-rolled scan — the
    // format is machine-written, one "file" key per entry.
    bool ok = false;
    const std::string content = ReadFileOrEmpty(arg, &ok);
    if (!ok) return files;
    std::set<std::string> dirs;
    const std::string_view kKey = "\"file\"";
    size_t at = content.find(kKey);
    while (at != std::string::npos) {
      const size_t q1 = content.find('"', at + kKey.size() + 1);
      if (q1 == std::string::npos) break;
      const size_t q2 = content.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      std::string f = content.substr(q1 + 1, q2 - q1 - 1);
      if (root.empty() ||
          NormalizePath(f).find(NormalizePath(root)) != std::string::npos) {
        files.push_back(f);
        dirs.insert(fs::path(f).parent_path().string());
      }
      at = content.find(kKey, q2);
    }
    for (const auto& d : dirs) {
      for (auto it = fs::directory_iterator(d, ec);
           !ec && it != fs::directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && is_source(it->path()) &&
            it->path().extension() != ".cc" &&
            it->path().extension() != ".cpp") {
          files.push_back(it->path().string());
        }
      }
    }
  } else {
    files.push_back(arg);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace hndplint
