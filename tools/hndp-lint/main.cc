// hndp-lint CLI. Usage:
//
//   hndp-lint [--root <dir>] <path|dir|compile_commands.json>...
//
// Directories are walked recursively for C++ sources; a
// compile_commands.json argument contributes its "file" entries (filtered
// to --root when given) plus headers next to them. Violations print as
// `file:line: [rule] message` on stdout.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hndp-lint: --root needs a value\n");
        return 2;
      }
      root = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::fprintf(stderr,
                   "usage: hndp-lint [--root <dir>] "
                   "<path|dir|compile_commands.json>...\n");
      return 2;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: hndp-lint [--root <dir>] "
                 "<path|dir|compile_commands.json>...\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const auto& a : args) {
    const auto expanded = hndplint::ExpandArg(a, root);
    files.insert(files.end(), expanded.begin(), expanded.end());
  }
  if (files.empty()) {
    std::fprintf(stderr, "hndp-lint: no source files matched\n");
    return 2;
  }

  hndplint::Options opts;
  const auto violations = hndplint::LintFiles(files, opts);
  bool io_error = false;
  for (const auto& v : violations) {
    if (v.rule == "io") io_error = true;
    std::printf("%s\n", v.ToString().c_str());
  }
  if (io_error) return 2;
  if (!violations.empty()) {
    std::printf("hndp-lint: %zu violation(s) in %zu file(s) checked\n",
                violations.size(), files.size());
    return 1;
  }
  return 0;
}
