// hndp-lint: project-invariant checker for the hybridNDP source tree.
//
// Generic linters cannot know this repo's determinism contract; these rules
// encode it (DESIGN.md §13):
//
//   wall-clock          No nondeterminism source (std::chrono clocks, rand,
//                       random_device, time()/clock()/gettimeofday, ...)
//                       outside the simulation layer (src/sim/) and the
//                       bench harness (bench/). Simulated timelines must
//                       replay bit-identically; a stray wall-clock read is
//                       how that guarantee silently dies.
//   unordered-serialize No iteration over std::unordered_{map,set} inside a
//                       serialization function (ToJson/Export*/Serialize*/
//                       Write*Json): exported JSON ordering must be
//                       canonical, never hash-order.
//   raw-new / raw-delete  No raw `new`/`delete` in checked sources; use
//                       make_unique/containers (`= delete` declarations are
//                       ignored).
//   discarded-status    A bare-statement call of a function declared to
//                       return Status discards the error; check, propagate,
//                       or void-cast it deliberately.
//
// Any finding can be suppressed on its line (or the line above) with
//   // hndp-lint: allow(<rule>) <one-line justification>
// The justification is mandatory; a bare allow() is itself a violation
// (rule "bare-allow").
//
// The checker is token/regex based on comment- and string-stripped source —
// deliberately dependency-free (no libclang); see tools/hndp-lint/README in
// DESIGN.md §13 for the accepted false-negative envelope.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hndplint {

struct Violation {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  std::string ToString() const;
};

struct Options {
  /// Path substrings (checked against '/'-normalized paths) where the
  /// wall-clock rule does not apply: the simulation layer itself and the
  /// bench harness (which legitimately measures wall time).
  std::vector<std::string> wallclock_allowlist = {"src/sim/", "bench/"};

  /// Extra function names (beyond those declared in the linted file set)
  /// treated as Status-returning for the discarded-status rule.
  std::vector<std::string> extra_status_functions;
};

/// Collect the names of functions declared with a `Status` return type in
/// `content` (used to seed the discarded-status rule across a file set).
std::vector<std::string> CollectStatusFunctions(std::string_view content);

/// Lint one in-memory source. `status_functions` is the cross-file set of
/// Status-returning function names (pass the union over all linted files).
std::vector<Violation> LintSource(
    const std::string& path, std::string_view content, const Options& opts,
    const std::vector<std::string>& status_functions);

/// Read + lint one file (two-pass over just that file). Convenience for
/// tests; returns a violation of rule "io" if the file cannot be read.
std::vector<Violation> LintFile(const std::string& path, const Options& opts);

/// Lint a whole file set with cross-file Status declarations.
std::vector<Violation> LintFiles(const std::vector<std::string>& paths,
                                 const Options& opts);

/// Expand a command-line argument into source paths: a directory is walked
/// recursively for .h/.cc/.cpp/.hpp files, a compile_commands.json is
/// parsed for its "file" entries (filtered to those under `root` when
/// non-empty) plus headers next to them, any other path is taken verbatim.
std::vector<std::string> ExpandArg(const std::string& arg,
                                   const std::string& root);

}  // namespace hndplint
