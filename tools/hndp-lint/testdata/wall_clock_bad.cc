// Fixture: wall-clock reads outside src/sim/ must be flagged.
#include <chrono>
#include <ctime>

long NowNanos() {
  auto t = std::chrono::steady_clock::now();  // wall-clock
  return t.time_since_epoch().count();
}

long Epoch() {
  return std::time(nullptr);  // wall-clock
}
