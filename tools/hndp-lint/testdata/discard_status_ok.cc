// Fixture: checked, propagated, assigned, and void-cast Status results are
// all fine.
struct Status {
  bool ok() const { return true; }
};

Status Flush();
Status Open(int fd);

Status Run() {
  if (!Open(3).ok()) return Open(3);
  Status st = Flush();
  (void)Flush();  // deliberate, visible discard
  return st;
}
