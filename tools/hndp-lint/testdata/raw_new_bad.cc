// Fixture: raw new/delete must be flagged.
struct Node {
  int v = 0;
};

Node* Make() {
  return new Node();  // raw allocation
}

void Free(Node* n) {
  delete n;  // raw deallocation
}
