// Fixture: a suppression without a justification is itself a violation.
struct Node {
  int v = 0;
};

Node* Singleton() {
  // hndp-lint: allow(raw-new)
  static Node* n = new Node();
  return n;
}
