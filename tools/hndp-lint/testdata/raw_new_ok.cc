// Fixture: make_unique, deleted special members, and a justified
// suppression are all clean.
#include <memory>

struct Node {
  int v = 0;
  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
};

std::unique_ptr<Node> Make() { return std::make_unique<Node>(); }

Node* Singleton() {
  // hndp-lint: allow(raw-new) leak-on-purpose process singleton
  static Node* n = new Node();
  return n;
}
