// Fixture: sorted-map serialization is canonical; unordered iteration in a
// non-serialization function (e.g. a join build side) is legitimate.
#include <map>
#include <string>
#include <unordered_map>

struct Registry {
  std::map<std::string, long> counters;
  std::unordered_map<std::string, long> scratch;

  std::string ToJson() const {
    std::string out = "{";
    for (const auto& kv : counters) {  // std::map: key-sorted, canonical
      out += "\"" + kv.first + "\":" + std::to_string(kv.second) + ",";
    }
    out += "}";
    return out;
  }

  long Sum() const {
    long total = 0;
    for (const auto& kv : scratch) total += kv.second;  // order-independent
    return total;
  }
};
