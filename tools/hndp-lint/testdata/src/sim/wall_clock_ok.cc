// Fixture: identical wall-clock reads, but the path is under src/sim/ —
// the simulation layer is the one place allowed to define time.
#include <chrono>
#include <ctime>

long NowNanos() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long Epoch() {
  return std::time(nullptr);
}

// Member/qualified calls named like libc functions are fine anywhere, but
// exercise them here too.
struct Clock {
  long time() const { return 0; }
};
long Member(const Clock& c) { return c.time(); }
