// Fixture: serialization functions must not iterate unordered containers —
// exported bytes would depend on hash order.
#include <string>
#include <unordered_map>

struct Registry {
  std::unordered_map<std::string, long> counters;

  std::string ToJson() const {
    std::string out = "{";
    for (const auto& kv : counters) {  // hash-order iteration
      out += "\"" + kv.first + "\":" + std::to_string(kv.second) + ",";
    }
    out += "}";
    return out;
  }
};
