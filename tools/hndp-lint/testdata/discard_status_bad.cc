// Fixture: a bare-statement call of a Status-returning function silently
// drops the error.
struct Status {
  bool ok() const { return true; }
};

Status Flush();
Status Open(int fd);

void Run() {
  Flush();    // discarded
  Open(3);    // discarded
}
