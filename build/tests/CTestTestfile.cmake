# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/job_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rel_test[1]_include.cmake")
include("/root/repo/build/tests/ndp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
