file(REMOVE_RECURSE
  "CMakeFiles/ndp_test.dir/ndp_test.cc.o"
  "CMakeFiles/ndp_test.dir/ndp_test.cc.o.d"
  "ndp_test"
  "ndp_test.pdb"
  "ndp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
