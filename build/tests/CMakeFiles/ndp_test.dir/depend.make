# Empty dependencies file for ndp_test.
# This may be replaced when dependencies are built.
