file(REMOVE_RECURSE
  "CMakeFiles/job_test.dir/job_test.cc.o"
  "CMakeFiles/job_test.dir/job_test.cc.o.d"
  "job_test"
  "job_test.pdb"
  "job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
