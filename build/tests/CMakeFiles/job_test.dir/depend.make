# Empty dependencies file for job_test.
# This may be replaced when dependencies are built.
