# Empty dependencies file for job_hybrid_demo.
# This may be replaced when dependencies are built.
