file(REMOVE_RECURSE
  "CMakeFiles/job_hybrid_demo.dir/job_hybrid_demo.cpp.o"
  "CMakeFiles/job_hybrid_demo.dir/job_hybrid_demo.cpp.o.d"
  "job_hybrid_demo"
  "job_hybrid_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_hybrid_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
