file(REMOVE_RECURSE
  "CMakeFiles/cooperative_trace.dir/cooperative_trace.cpp.o"
  "CMakeFiles/cooperative_trace.dir/cooperative_trace.cpp.o.d"
  "cooperative_trace"
  "cooperative_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
