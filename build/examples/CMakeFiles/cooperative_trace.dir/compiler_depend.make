# Empty compiler generated dependencies file for cooperative_trace.
# This may be replaced when dependencies are built.
