# Empty compiler generated dependencies file for hndp_exec.
# This may be replaced when dependencies are built.
