
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg.cc" "src/exec/CMakeFiles/hndp_exec.dir/agg.cc.o" "gcc" "src/exec/CMakeFiles/hndp_exec.dir/agg.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/hndp_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/hndp_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/hndp_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/hndp_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/hndp_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/hndp_exec.dir/scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rel/CMakeFiles/hndp_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/hndp_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hndp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
