file(REMOVE_RECURSE
  "CMakeFiles/hndp_exec.dir/agg.cc.o"
  "CMakeFiles/hndp_exec.dir/agg.cc.o.d"
  "CMakeFiles/hndp_exec.dir/expr.cc.o"
  "CMakeFiles/hndp_exec.dir/expr.cc.o.d"
  "CMakeFiles/hndp_exec.dir/join.cc.o"
  "CMakeFiles/hndp_exec.dir/join.cc.o.d"
  "CMakeFiles/hndp_exec.dir/scan.cc.o"
  "CMakeFiles/hndp_exec.dir/scan.cc.o.d"
  "libhndp_exec.a"
  "libhndp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
