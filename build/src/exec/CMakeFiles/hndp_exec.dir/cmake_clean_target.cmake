file(REMOVE_RECURSE
  "libhndp_exec.a"
)
