# Empty compiler generated dependencies file for hndp_lsm.
# This may be replaced when dependencies are built.
