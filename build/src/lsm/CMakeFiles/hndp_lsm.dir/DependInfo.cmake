
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/block.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/block.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/block.cc.o.d"
  "/root/repo/src/lsm/block_cache.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/block_cache.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/block_cache.cc.o.d"
  "/root/repo/src/lsm/db.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/db.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/db.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/sst.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/sst.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/sst.cc.o.d"
  "/root/repo/src/lsm/storage.cc" "src/lsm/CMakeFiles/hndp_lsm.dir/storage.cc.o" "gcc" "src/lsm/CMakeFiles/hndp_lsm.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hndp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hndp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
