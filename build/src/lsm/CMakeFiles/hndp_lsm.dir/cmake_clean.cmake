file(REMOVE_RECURSE
  "CMakeFiles/hndp_lsm.dir/block.cc.o"
  "CMakeFiles/hndp_lsm.dir/block.cc.o.d"
  "CMakeFiles/hndp_lsm.dir/block_cache.cc.o"
  "CMakeFiles/hndp_lsm.dir/block_cache.cc.o.d"
  "CMakeFiles/hndp_lsm.dir/db.cc.o"
  "CMakeFiles/hndp_lsm.dir/db.cc.o.d"
  "CMakeFiles/hndp_lsm.dir/memtable.cc.o"
  "CMakeFiles/hndp_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/hndp_lsm.dir/sst.cc.o"
  "CMakeFiles/hndp_lsm.dir/sst.cc.o.d"
  "CMakeFiles/hndp_lsm.dir/storage.cc.o"
  "CMakeFiles/hndp_lsm.dir/storage.cc.o.d"
  "libhndp_lsm.a"
  "libhndp_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
