file(REMOVE_RECURSE
  "libhndp_lsm.a"
)
