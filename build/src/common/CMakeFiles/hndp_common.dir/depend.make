# Empty dependencies file for hndp_common.
# This may be replaced when dependencies are built.
