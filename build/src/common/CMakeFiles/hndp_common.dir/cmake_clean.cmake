file(REMOVE_RECURSE
  "CMakeFiles/hndp_common.dir/arena.cc.o"
  "CMakeFiles/hndp_common.dir/arena.cc.o.d"
  "CMakeFiles/hndp_common.dir/bloom.cc.o"
  "CMakeFiles/hndp_common.dir/bloom.cc.o.d"
  "CMakeFiles/hndp_common.dir/coding.cc.o"
  "CMakeFiles/hndp_common.dir/coding.cc.o.d"
  "CMakeFiles/hndp_common.dir/hash.cc.o"
  "CMakeFiles/hndp_common.dir/hash.cc.o.d"
  "CMakeFiles/hndp_common.dir/random.cc.o"
  "CMakeFiles/hndp_common.dir/random.cc.o.d"
  "CMakeFiles/hndp_common.dir/status.cc.o"
  "CMakeFiles/hndp_common.dir/status.cc.o.d"
  "libhndp_common.a"
  "libhndp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
