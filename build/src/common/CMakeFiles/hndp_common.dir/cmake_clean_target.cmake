file(REMOVE_RECURSE
  "libhndp_common.a"
)
