# Empty compiler generated dependencies file for hndp_common.
# This may be replaced when dependencies are built.
