# Empty compiler generated dependencies file for hndp_rel.
# This may be replaced when dependencies are built.
