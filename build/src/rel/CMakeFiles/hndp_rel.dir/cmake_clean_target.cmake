file(REMOVE_RECURSE
  "libhndp_rel.a"
)
