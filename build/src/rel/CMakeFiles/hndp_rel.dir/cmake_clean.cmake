file(REMOVE_RECURSE
  "CMakeFiles/hndp_rel.dir/schema.cc.o"
  "CMakeFiles/hndp_rel.dir/schema.cc.o.d"
  "CMakeFiles/hndp_rel.dir/stats.cc.o"
  "CMakeFiles/hndp_rel.dir/stats.cc.o.d"
  "CMakeFiles/hndp_rel.dir/table.cc.o"
  "CMakeFiles/hndp_rel.dir/table.cc.o.d"
  "libhndp_rel.a"
  "libhndp_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
