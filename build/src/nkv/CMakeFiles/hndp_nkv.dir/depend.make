# Empty dependencies file for hndp_nkv.
# This may be replaced when dependencies are built.
