file(REMOVE_RECURSE
  "CMakeFiles/hndp_nkv.dir/ndp_command.cc.o"
  "CMakeFiles/hndp_nkv.dir/ndp_command.cc.o.d"
  "libhndp_nkv.a"
  "libhndp_nkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_nkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
