file(REMOVE_RECURSE
  "libhndp_nkv.a"
)
