# Empty compiler generated dependencies file for hndp_hybrid.
# This may be replaced when dependencies are built.
