file(REMOVE_RECURSE
  "CMakeFiles/hndp_hybrid.dir/coop.cc.o"
  "CMakeFiles/hndp_hybrid.dir/coop.cc.o.d"
  "CMakeFiles/hndp_hybrid.dir/executor.cc.o"
  "CMakeFiles/hndp_hybrid.dir/executor.cc.o.d"
  "CMakeFiles/hndp_hybrid.dir/plan.cc.o"
  "CMakeFiles/hndp_hybrid.dir/plan.cc.o.d"
  "CMakeFiles/hndp_hybrid.dir/planner.cc.o"
  "CMakeFiles/hndp_hybrid.dir/planner.cc.o.d"
  "libhndp_hybrid.a"
  "libhndp_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
