file(REMOVE_RECURSE
  "libhndp_hybrid.a"
)
