# Empty dependencies file for hndp_ndp.
# This may be replaced when dependencies are built.
