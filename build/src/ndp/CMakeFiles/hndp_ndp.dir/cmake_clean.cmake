file(REMOVE_RECURSE
  "CMakeFiles/hndp_ndp.dir/device_executor.cc.o"
  "CMakeFiles/hndp_ndp.dir/device_executor.cc.o.d"
  "libhndp_ndp.a"
  "libhndp_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
