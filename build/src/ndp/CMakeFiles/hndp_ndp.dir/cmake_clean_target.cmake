file(REMOVE_RECURSE
  "libhndp_ndp.a"
)
