file(REMOVE_RECURSE
  "CMakeFiles/hndp_sim.dir/cost.cc.o"
  "CMakeFiles/hndp_sim.dir/cost.cc.o.d"
  "CMakeFiles/hndp_sim.dir/hw_model.cc.o"
  "CMakeFiles/hndp_sim.dir/hw_model.cc.o.d"
  "CMakeFiles/hndp_sim.dir/profiler.cc.o"
  "CMakeFiles/hndp_sim.dir/profiler.cc.o.d"
  "libhndp_sim.a"
  "libhndp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
