file(REMOVE_RECURSE
  "libhndp_sim.a"
)
