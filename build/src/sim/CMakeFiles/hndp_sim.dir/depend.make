# Empty dependencies file for hndp_sim.
# This may be replaced when dependencies are built.
