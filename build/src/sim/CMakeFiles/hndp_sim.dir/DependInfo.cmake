
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost.cc" "src/sim/CMakeFiles/hndp_sim.dir/cost.cc.o" "gcc" "src/sim/CMakeFiles/hndp_sim.dir/cost.cc.o.d"
  "/root/repo/src/sim/hw_model.cc" "src/sim/CMakeFiles/hndp_sim.dir/hw_model.cc.o" "gcc" "src/sim/CMakeFiles/hndp_sim.dir/hw_model.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/hndp_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/hndp_sim.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
