file(REMOVE_RECURSE
  "CMakeFiles/hndp_job.dir/generator.cc.o"
  "CMakeFiles/hndp_job.dir/generator.cc.o.d"
  "CMakeFiles/hndp_job.dir/queries.cc.o"
  "CMakeFiles/hndp_job.dir/queries.cc.o.d"
  "CMakeFiles/hndp_job.dir/schema.cc.o"
  "CMakeFiles/hndp_job.dir/schema.cc.o.d"
  "libhndp_job.a"
  "libhndp_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hndp_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
