# Empty compiler generated dependencies file for hndp_job.
# This may be replaced when dependencies are built.
