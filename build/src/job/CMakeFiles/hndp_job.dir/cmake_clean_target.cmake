file(REMOVE_RECURSE
  "libhndp_job.a"
)
