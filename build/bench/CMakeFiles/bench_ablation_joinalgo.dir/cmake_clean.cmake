file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_joinalgo.dir/bench_ablation_joinalgo.cc.o"
  "CMakeFiles/bench_ablation_joinalgo.dir/bench_ablation_joinalgo.cc.o.d"
  "bench_ablation_joinalgo"
  "bench_ablation_joinalgo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_joinalgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
