# Empty compiler generated dependencies file for bench_ablation_joinalgo.
# This may be replaced when dependencies are built.
