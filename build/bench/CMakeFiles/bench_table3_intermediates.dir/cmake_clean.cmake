file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_intermediates.dir/bench_table3_intermediates.cc.o"
  "CMakeFiles/bench_table3_intermediates.dir/bench_table3_intermediates.cc.o.d"
  "bench_table3_intermediates"
  "bench_table3_intermediates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_intermediates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
