
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_intermediates.cc" "bench/CMakeFiles/bench_table3_intermediates.dir/bench_table3_intermediates.cc.o" "gcc" "bench/CMakeFiles/bench_table3_intermediates.dir/bench_table3_intermediates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/job/CMakeFiles/hndp_job.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/hndp_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/hndp_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/nkv/CMakeFiles/hndp_nkv.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/hndp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/hndp_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/hndp_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hndp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
