file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_stacks.dir/bench_fig11_stacks.cc.o"
  "CMakeFiles/bench_fig11_stacks.dir/bench_fig11_stacks.cc.o.d"
  "bench_fig11_stacks"
  "bench_fig11_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
