# Empty dependencies file for bench_micro_lsm.
# This may be replaced when dependencies are built.
