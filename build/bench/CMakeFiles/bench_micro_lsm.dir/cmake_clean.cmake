file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lsm.dir/bench_micro_lsm.cc.o"
  "CMakeFiles/bench_micro_lsm.dir/bench_micro_lsm.cc.o.d"
  "bench_micro_lsm"
  "bench_micro_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
