file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_decisions.dir/bench_fig13_decisions.cc.o"
  "CMakeFiles/bench_fig13_decisions.dir/bench_fig13_decisions.cc.o.d"
  "bench_fig13_decisions"
  "bench_fig13_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
