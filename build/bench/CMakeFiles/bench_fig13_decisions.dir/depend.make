# Empty dependencies file for bench_fig13_decisions.
# This may be replaced when dependencies are built.
