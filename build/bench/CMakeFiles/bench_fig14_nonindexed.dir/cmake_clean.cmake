file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nonindexed.dir/bench_fig14_nonindexed.cc.o"
  "CMakeFiles/bench_fig14_nonindexed.dir/bench_fig14_nonindexed.cc.o.d"
  "bench_fig14_nonindexed"
  "bench_fig14_nonindexed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nonindexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
