# Empty compiler generated dependencies file for bench_fig15_insitu_index.
# This may be replaced when dependencies are built.
