file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_insitu_index.dir/bench_fig15_insitu_index.cc.o"
  "CMakeFiles/bench_fig15_insitu_index.dir/bench_fig15_insitu_index.cc.o.d"
  "bench_fig15_insitu_index"
  "bench_fig15_insitu_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_insitu_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
