file(REMOVE_RECURSE
  "CMakeFiles/bench_profiler.dir/bench_profiler.cc.o"
  "CMakeFiles/bench_profiler.dir/bench_profiler.cc.o.d"
  "bench_profiler"
  "bench_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
