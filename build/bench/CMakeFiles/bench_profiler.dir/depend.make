# Empty dependencies file for bench_profiler.
# This may be replaced when dependencies are built.
