# Empty dependencies file for bench_ablation_cacheformat.
# This may be replaced when dependencies are built.
