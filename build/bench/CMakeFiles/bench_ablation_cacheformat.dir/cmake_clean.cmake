file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cacheformat.dir/bench_ablation_cacheformat.cc.o"
  "CMakeFiles/bench_ablation_cacheformat.dir/bench_ablation_cacheformat.cc.o.d"
  "bench_ablation_cacheformat"
  "bench_ablation_cacheformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cacheformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
