# Empty dependencies file for bench_fig17_timeline.
# This may be replaced when dependencies are built.
