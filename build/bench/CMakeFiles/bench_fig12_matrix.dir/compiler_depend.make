# Empty compiler generated dependencies file for bench_fig12_matrix.
# This may be replaced when dependencies are built.
