file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_matrix.dir/bench_fig12_matrix.cc.o"
  "CMakeFiles/bench_fig12_matrix.dir/bench_fig12_matrix.cc.o.d"
  "bench_fig12_matrix"
  "bench_fig12_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
