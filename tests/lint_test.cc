// Unit tests for the hndp-lint rule engine (tools/hndp-lint). The fixture
// files under tools/hndp-lint/testdata are exercised end-to-end by ctest
// (lint_fixture_*); these tests pin the per-rule behavior at the LintSource
// API level, including the suppression grammar and the comment/string
// stripper the rules depend on.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace hndplint {
namespace {

std::vector<std::string> Rules(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  for (const auto& v : vs) out.push_back(v.rule);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Violation> Lint(const std::string& path,
                            const std::string& source) {
  Options opts;
  return LintSource(path, source, opts, CollectStatusFunctions(source));
}

TEST(WallClockRuleTest, FlagsClockTokensOutsideSim) {
  const std::string src = R"(
#include <chrono>
long Now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long Epoch() { return std::time(nullptr); }
)";
  const auto vs = Lint("src/exec/scan.cc", src);
  EXPECT_EQ(Rules(vs), (std::vector<std::string>{"wall-clock", "wall-clock"}));
}

TEST(WallClockRuleTest, AllowlistsSimAndBenchPaths) {
  const std::string src = "long Epoch() { return std::time(nullptr); }\n";
  EXPECT_TRUE(Lint("src/sim/clock.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_common.h", src).empty());
  EXPECT_FALSE(Lint("src/lsm/db.cc", src).empty());
}

TEST(WallClockRuleTest, MemberAndQualifiedCallsAreNotLibcTime) {
  const std::string src = R"(
double F(const Clock& c, Ctx* ctx) { return c.time() + ctx->clock().now(); }
double G() { return SimClock::time(); }
)";
  EXPECT_TRUE(Lint("src/lsm/db.cc", src).empty());
}

TEST(WallClockRuleTest, TokensInCommentsAndStringsAreIgnored) {
  const std::string src = R"lint(
// steady_clock would be wrong here
const char* kMsg = "do not use time() or rand()";
)lint";
  EXPECT_TRUE(Lint("src/lsm/db.cc", src).empty());
}

TEST(UnorderedSerializeRuleTest, FlagsRangeForInSerializationFunction) {
  const std::string src = R"(
#include <unordered_map>
struct R {
  std::unordered_map<std::string, long> counters;
  std::string ToJson() const {
    std::string out;
    for (const auto& kv : counters) out += kv.first;
    return out;
  }
};
)";
  EXPECT_EQ(Rules(Lint("src/obs/metrics.cc", src)),
            (std::vector<std::string>{"unordered-serialize"}));
}

TEST(UnorderedSerializeRuleTest, IgnoresNonSerializationFunctions) {
  const std::string src = R"(
#include <unordered_map>
struct J {
  std::unordered_map<std::string, long> build;
  long Probe() const {
    long n = 0;
    for (const auto& kv : build) n += kv.second;
    return n;
  }
};
)";
  EXPECT_TRUE(Lint("src/exec/join.cc", src).empty());
}

TEST(RawNewRuleTest, FlagsNewAndDeleteButNotDeletedFunctions) {
  const std::string src = R"(
struct T {
  T(const T&) = delete;
  T& operator=(const T&) = delete;
};
T* Make() { return new T(); }
void Free(T* t) { delete t; }
)";
  EXPECT_EQ(Rules(Lint("src/lsm/db.cc", src)),
            (std::vector<std::string>{"raw-delete", "raw-new"}));
}

TEST(DiscardedStatusRuleTest, FlagsBareCallsOnly) {
  const std::string src = R"(
Status Flush();
Status Run() {
  Flush();
  if (!Flush().ok()) return Flush();
  Status st = Flush();
  (void)Flush();
  return st;
}
)";
  const auto vs = Lint("src/lsm/db.cc", src);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "discarded-status");
  EXPECT_EQ(vs[0].line, 4);
}

TEST(DiscardedStatusRuleTest, CrossFileDeclarationsSeedTheRule) {
  // The declaration lives in another "file" of the linted set.
  Options opts;
  opts.extra_status_functions.push_back("Compact");
  const auto vs = LintSource("src/lsm/db.cc", "void F() {\n  Compact();\n}\n",
                             opts, {});
  EXPECT_EQ(Rules(vs), (std::vector<std::string>{"discarded-status"}));
}

TEST(SuppressionTest, JustifiedAllowSilencesSameOrNextLine) {
  const std::string same = R"(
struct T { int v; };
T* A() { return new T(); }  // hndp-lint: allow(raw-new) arena-owned
)";
  EXPECT_TRUE(Lint("src/lsm/db.cc", same).empty());

  const std::string above = R"(
struct T { int v; };
// hndp-lint: allow(raw-new) arena-owned
T* A() { return new T(); }
)";
  EXPECT_TRUE(Lint("src/lsm/db.cc", above).empty());
}

TEST(SuppressionTest, BareAllowIsItselfAViolation) {
  const std::string src = R"(
struct T { int v; };
// hndp-lint: allow(raw-new)
T* A() { return new T(); }
)";
  // The unjustified allow() does not suppress, and is flagged itself.
  EXPECT_EQ(Rules(Lint("src/lsm/db.cc", src)),
            (std::vector<std::string>{"bare-allow", "raw-new"}));
}

TEST(SuppressionTest, AllowOnlySilencesItsOwnRule) {
  const std::string src = R"(
struct T { int v; };
T* A() { return new T(); }  // hndp-lint: allow(wall-clock) wrong rule
)";
  EXPECT_EQ(Rules(Lint("src/lsm/db.cc", src)),
            (std::vector<std::string>{"raw-new"}));
}

TEST(CollectStatusFunctionsTest, FindsPlainAndQualifiedReturnTypes) {
  const auto fns = CollectStatusFunctions(
      "Status Flush();\n"
      "common::Status Open(int fd);\n"
      "TreeStatus x;\n"  // not a Status-returning function
      "int Count();\n");
  EXPECT_EQ(fns, (std::vector<std::string>{"Flush", "Open"}));
}

}  // namespace
}  // namespace hndplint
