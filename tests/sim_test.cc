// Tests for the hardware model, cost accounting, and the profiler.

#include <gtest/gtest.h>

#include "sim/cost.h"
#include "sim/hw_model.h"
#include "sim/profiler.h"

namespace hybridndp::sim {
namespace {

TEST(PcieModelTest, BandwidthScalesWithGenerationAndLanes) {
  PcieModel gen2x8{2, 8};
  PcieModel gen3x8{3, 8};
  PcieModel gen2x4{2, 4};
  EXPECT_GT(gen3x8.BytesPerSec(), gen2x8.BytesPerSec() * 1.5);
  EXPECT_NEAR(gen2x8.BytesPerSec() / gen2x4.BytesPerSec(), 2.0, 0.01);
  // PCIe 2.0 x8: 4 GB/s raw, ~3.4 GB/s effective after encoding + protocol.
  EXPECT_NEAR(gen2x8.BytesPerSec() / 1e9, 3.4, 0.2);
}

TEST(PcieModelTest, TransferTimeHasLatencyFloor) {
  PcieModel pcie{2, 8};
  EXPECT_GE(pcie.TransferTime(1), pcie.command_latency_ns);
  EXPECT_GT(pcie.TransferTime(1 << 20), pcie.TransferTime(1 << 10));
}

TEST(FlashModelTest, SequentialBeatsRandomPerByte) {
  FlashModel flash;
  // Reading 1 MiB sequentially (channel-parallel) must be much cheaper than
  // 64 random page reads of the same volume.
  const SimNanos seq = flash.InternalReadTime(1 << 20);
  const SimNanos rand = 64 * flash.RandomPageReadTime();
  EXPECT_LT(seq, rand / 4);
}

TEST(FlashModelTest, FractionalPagesNotOverCharged) {
  FlashModel flash;
  // Four quarter-page reads must cost the same as one full page.
  const SimNanos quarter = flash.InternalReadTime(flash.page_bytes / 4);
  const SimNanos full = flash.InternalReadTime(flash.page_bytes);
  EXPECT_NEAR(4 * quarter, full, full * 0.01);
}

TEST(HwParamsTest, PaperDefaultsMatchCoreMarkRatio) {
  HwParams hw = HwParams::PaperDefaults();
  EXPECT_NEAR(hw.ComputeRatio(), 92343.0 / 2964.0, 0.5);
  EXPECT_EQ(hw.pcie.version, 2);
  EXPECT_EQ(hw.pcie.lanes, 8);
  EXPECT_EQ(hw.device_cpu.cores, 1);
  EXPECT_FALSE(hw.ToString().empty());
}

TEST(AccessContextTest, DeviceCpuWorkIsSlowerByComputeRatio) {
  HwParams hw = HwParams::PaperDefaults();
  AccessContext host(&hw, Actor::kHost, IoPath::kNative);
  AccessContext dev(&hw, Actor::kDevice, IoPath::kInternal);
  host.Charge(CostKind::kRecordEval, 1000);
  dev.Charge(CostKind::kRecordEval, 1000);
  // Raw compute differs by the CoreMark ratio; the host additionally pays
  // its interpreted-engine cycle factor on query work.
  EXPECT_NEAR(dev.now() / host.now(),
              hw.ComputeRatio() / hw.host_cpu.engine_cycle_factor, 0.01);
  EXPECT_GT(hw.host_cpu.engine_cycle_factor, 1.0);
}

TEST(AccessContextTest, IoPathsOrderedByOverhead) {
  HwParams hw = HwParams::PaperDefaults();
  AccessContext internal(&hw, Actor::kDevice, IoPath::kInternal);
  AccessContext native(&hw, Actor::kHost, IoPath::kNative);
  AccessContext blk(&hw, Actor::kHost, IoPath::kBlk);
  const uint64_t bytes = 4 << 20;
  internal.ChargeFlashRead(bytes);
  native.ChargeFlashRead(bytes);
  blk.ChargeFlashRead(bytes);
  EXPECT_LT(internal.now(), native.now());
  EXPECT_LT(native.now(), blk.now());
}

TEST(AccessContextTest, CountersTrackUnitsAndTime) {
  HwParams hw = HwParams::PaperDefaults();
  AccessContext ctx(&hw, Actor::kHost, IoPath::kNative);
  ctx.Charge(CostKind::kMemcmp, 100);
  ctx.Charge(CostKind::kMemcmp, 50);
  ctx.ChargeTransfer(1 << 20);
  EXPECT_EQ(ctx.counters().Units(CostKind::kMemcmp), 150u);
  EXPECT_EQ(ctx.counters().Units(CostKind::kTransfer), 1u << 20);
  EXPECT_NEAR(ctx.counters().TotalTime(), ctx.now(), 1e-6);
  ctx.ResetCosts();
  EXPECT_EQ(ctx.now(), 0.0);
  EXPECT_EQ(ctx.counters().Units(CostKind::kMemcmp), 0u);
}

TEST(AccessContextTest, CopyFactorDiscountsPointerCache) {
  HwParams hw = HwParams::PaperDefaults();
  AccessContext row(&hw, Actor::kDevice, IoPath::kInternal);
  AccessContext ptr(&hw, Actor::kDevice, IoPath::kInternal);
  ptr.SetCopyFactor(0.15);
  row.ChargeCopy(1 << 20);
  ptr.ChargeCopy(1 << 20);
  EXPECT_NEAR(ptr.now() / row.now(), 0.15, 0.01);
}

TEST(CostCountersTest, MergeAndBreakdown) {
  CostCounters a, b;
  a.Add(CostKind::kMemcmp, 10, 100.0);
  b.Add(CostKind::kMemcmp, 5, 50.0);
  b.Add(CostKind::kFlashLoad, 4096, 2000.0);
  a.Merge(b);
  EXPECT_EQ(a.Units(CostKind::kMemcmp), 15u);
  EXPECT_NEAR(a.Time(CostKind::kFlashLoad), 2000.0, 1e-9);
  const std::string s = a.BreakdownString();
  EXPECT_NE(s.find("memcmp"), std::string::npos);
  EXPECT_NE(s.find("flash load"), std::string::npos);
}

TEST(SimClockTest, AdvanceToNeverGoesBackward) {
  SimClock clock;
  clock.Advance(100);
  clock.AdvanceTo(50);  // in the past: no-op
  EXPECT_EQ(clock.now(), 100.0);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.now(), 200.0);
}

TEST(ProfilerTest, ReproducesPaperRatios) {
  HwParams platform = HwParams::PaperDefaults();
  HardwareProfiler profiler(platform);
  ProfileReport report = profiler.Run();
  // The compute-kernel ratio must match CoreMark (paper: ~31x).
  EXPECT_NEAR(report.host_coremark / report.device_coremark, 31.2, 1.0);
  // Internal flash path beats the host paths.
  EXPECT_GT(report.internal_seq_read_gbps, report.host_native_seq_read_gbps);
  EXPECT_GT(report.host_native_seq_read_gbps, report.host_blk_seq_read_gbps);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ProfilerTest, DerivedParamsFeedTheModel) {
  HwParams platform = HwParams::PaperDefaults();
  HardwareProfiler profiler(platform);
  ProfileReport report = profiler.Run();
  HwParams derived = profiler.DeriveParams(report);
  EXPECT_NEAR(derived.ndp_flash_clock, 1.0, 1e-9);
  EXPECT_GT(derived.host_flash_clock, 0.0);
  EXPECT_LT(derived.host_flash_clock, 1.0);
  EXPECT_NEAR(derived.ComputeRatio(), platform.ComputeRatio(),
              platform.ComputeRatio() * 0.05);
}

}  // namespace
}  // namespace hybridndp::sim
