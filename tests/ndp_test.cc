// Tests for the NDP stack: the command/shared-state snapshot (nkv), the
// on-device executor (ndp), and the cooperative batch schedule (hybrid).

#include <gtest/gtest.h>

#include "hybrid/coop.h"
#include "lsm/db.h"
#include "ndp/device_executor.h"
#include "nkv/ndp_command.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp {
namespace {

using exec::CmpOp;
using exec::Expr;
using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using rel::RowView;
using sim::HwParams;

class NdpTest : public ::testing::Test {
 protected:
  NdpTest() : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
              catalog_(&db_) {
    rel::TableDef orders;
    orders.name = "orders";
    orders.schema = rel::Schema({IntCol("id"), IntCol("item_id"),
                                 IntCol("qty"), CharCol("note", 12)});
    orders.pk_col = 0;
    orders.indexes.push_back({"item_id", 1});
    orders_ = catalog_.CreateTable(std::move(orders));

    rel::TableDef items;
    items.name = "items";
    items.schema = rel::Schema({IntCol("id"), IntCol("price")});
    items.pk_col = 0;
    items_ = catalog_.CreateTable(std::move(items));

    for (int i = 1; i <= 3000; ++i) {
      RowBuilder rb(&orders_->schema());
      rb.SetInt(0, i)
          .SetInt(1, 1 + i % 100)
          .SetInt(2, i % 7)
          .SetString(3, i % 3 == 0 ? "rush" : "normal");
      EXPECT_TRUE(orders_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 100; ++i) {
      RowBuilder rb(&items_->schema());
      rb.SetInt(0, i).SetInt(1, i * 10);
      EXPECT_TRUE(items_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
  }

  static HwParams MakeHw() {
    HwParams hw = HwParams::PaperDefaults();
    hw.mem.device_ndp_budget_bytes = 2 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }

  nkv::NdpBufferConfig SmallBuffers() {
    nkv::NdpBufferConfig b;
    b.selection_buffer_bytes = 64 << 10;
    b.join_buffer_bytes = 32 << 10;
    b.shared_slot_bytes = 4 << 10;
    b.shared_slots = 4;
    return b;
  }

  /// Scan-only command over orders with an early selection + projection.
  nkv::NdpCommand ScanCommand() {
    nkv::NdpCommand cmd;
    cmd.buffers = SmallBuffers();
    cmd.scans_only = true;
    nkv::NdpTableAccess access = nkv::SnapshotTable(*orders_, "o");
    access.predicate = Expr::CmpStr("o.note", CmpOp::kEq, "rush");
    access.projection = {"o.id", "o.item_id"};
    cmd.snapshot = access.primary.sequence;
    cmd.tables.push_back(std::move(access));
    return cmd;
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  rel::Table* orders_ = nullptr;
  rel::Table* items_ = nullptr;
};

TEST_F(NdpTest, DeviceAccessorMatchesHostReads) {
  nkv::NdpTableAccess access = nkv::SnapshotTable(*orders_, "o");
  nkv::DeviceTableAccessor accessor(&storage_, &access);
  EXPECT_EQ(accessor.row_count(), orders_->row_count());

  // Point lookups agree with the host path.
  for (int32_t pk : {1, 1500, 3000}) {
    std::string host_row, dev_row;
    ASSERT_TRUE(orders_->GetByPk(lsm::ReadOptions{}, pk, &host_row).ok());
    ASSERT_TRUE(accessor.GetByPk(lsm::ReadOptions{}, pk, &dev_row).ok());
    EXPECT_EQ(host_row, dev_row);
  }
  std::string missing;
  EXPECT_TRUE(
      accessor.GetByPk(lsm::ReadOptions{}, 99999, &missing).IsNotFound());
}

TEST_F(NdpTest, DeviceAccessorSeesSharedStateMemTable) {
  // An unflushed write must be visible through the shipped snapshot
  // (update-aware NDP, paper Sect. 2.1).
  RowBuilder rb(&orders_->schema());
  rb.SetInt(0, 7777).SetInt(1, 1).SetInt(2, 1).SetString(3, "hot");
  ASSERT_TRUE(orders_->Insert(rb.row()).ok());

  nkv::NdpTableAccess access = nkv::SnapshotTable(*orders_, "o");
  nkv::DeviceTableAccessor accessor(&storage_, &access);
  std::string row;
  ASSERT_TRUE(accessor.GetByPk(lsm::ReadOptions{}, 7777, &row).ok());
  EXPECT_EQ(RowView(row.data(), &orders_->schema()).GetString(3).ToString(),
            "hot");
}

TEST_F(NdpTest, ScanCommandFiltersAndProjects) {
  ndp::DeviceExecutor executor(&storage_, &hw_);
  auto result = executor.Execute(ScanCommand());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stream_rows.size(), 1u);
  EXPECT_EQ(result->rows().size(), 1000u);  // i % 3 == 0
  EXPECT_EQ(result->schema().row_size(), 8u);  // two ints
  EXPECT_GT(result->batches.size(), 1u);       // multiple slots filled
  EXPECT_GT(result->total_work_ns, 0);
  EXPECT_FALSE(result->pointer_cache);  // single table -> row cache
  // Batch row counts sum to the result size.
  uint64_t rows = 0;
  for (const auto& b : result->batches) rows += b.rows;
  EXPECT_EQ(rows, result->rows().size());
}

TEST_F(NdpTest, PipelinedJoinCommandProducesJoinedRows) {
  nkv::NdpCommand cmd;
  cmd.buffers = SmallBuffers();
  nkv::NdpTableAccess orders_access = nkv::SnapshotTable(*orders_, "o");
  orders_access.predicate = Expr::CmpInt("o.qty", CmpOp::kGe, 5);
  orders_access.projection = {"o.id", "o.item_id"};
  cmd.snapshot = orders_access.primary.sequence;
  cmd.tables.push_back(std::move(orders_access));
  nkv::NdpTableAccess items_access = nkv::SnapshotTable(*items_, "i");
  items_access.projection = {"i.id", "i.price"};
  cmd.tables.push_back(std::move(items_access));
  nkv::NdpJoinStage stage;
  stage.algo = nkv::JoinAlgo::kBNLJI;
  stage.outer_key_col = "o.item_id";
  stage.inner_join_col = "id";
  cmd.joins.push_back(std::move(stage));

  ndp::DeviceExecutor executor(&storage_, &hw_);
  auto result = executor.Execute(cmd);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // qty in {5,6}: 2/7 of 3000 rows, each joining exactly one item.
  EXPECT_EQ(result->rows().size(), 856u);
  const rel::Schema& schema = result->schema();
  const int price = schema.Find("i.price");
  const int item = schema.Find("o.item_id");
  ASSERT_GE(price, 0);
  for (const auto& row : result->rows()) {
    RowView v(row.data(), &schema);
    EXPECT_EQ(v.GetInt(price), v.GetInt(item) * 10);
  }
}

TEST_F(NdpTest, ResourceCheckRejectsOverBudget) {
  nkv::NdpCommand cmd = ScanCommand();
  cmd.buffers.selection_buffer_bytes = 64ull << 20;  // > 2 MiB budget
  ndp::DeviceExecutor executor(&storage_, &hw_);
  EXPECT_TRUE(executor.Execute(cmd).status().IsResourceExhausted());
}

TEST_F(NdpTest, MalformedCommandsRejected) {
  ndp::DeviceExecutor executor(&storage_, &hw_);
  nkv::NdpCommand empty;
  empty.buffers = SmallBuffers();
  EXPECT_TRUE(executor.Execute(empty).status().IsInvalidArgument());

  nkv::NdpCommand mismatched = ScanCommand();
  mismatched.scans_only = false;  // 1 table but no joins is fine...
  mismatched.joins.emplace_back();  // ...but a join without a second table is not
  EXPECT_TRUE(executor.Execute(mismatched).status().IsInvalidArgument());
}

TEST_F(NdpTest, BufferReservationArithmetic) {
  nkv::NdpCommand cmd = ScanCommand();
  const auto& b = cmd.buffers;
  EXPECT_EQ(cmd.ReservedBufferBytes(),
            b.selection_buffer_bytes +
                static_cast<uint64_t>(b.shared_slots) * b.shared_slot_bytes);
  // Index-scan tables reserve a second (secondary) selection buffer.
  cmd.tables[0].use_index_scan = true;
  EXPECT_EQ(cmd.ReservedBufferBytes(),
            2 * b.selection_buffer_bytes +
                static_cast<uint64_t>(b.shared_slots) * b.shared_slot_bytes);
}

TEST_F(NdpTest, DeviceBloomExtensionSavesLookupFlash) {
  // BNLJI pipeline where most outer keys have no match *inside* the inner
  // table's key range (so fence pointers cannot prune them): in-situ bloom
  // probing (Sect. 2.2 future work) must cut device flash traffic without
  // changing the result.
  rel::TableDef sparse;
  sparse.name = "sparse_items";
  sparse.schema = rel::Schema({IntCol("id"), IntCol("price")});
  sparse.pk_col = 0;
  rel::Table* sparse_t = catalog_.CreateTable(std::move(sparse));
  for (int i = 1; i <= 100; ++i) {
    RowBuilder rb(&sparse_t->schema());
    rb.SetInt(0, i * 30).SetInt(1, i);  // ids 30, 60, ..., 3000
    ASSERT_TRUE(sparse_t->Insert(rb.row()).ok());
  }
  ASSERT_TRUE(db_.FlushAll().ok());

  auto make_cmd = [&](bool bloom) {
    nkv::NdpCommand cmd;
    cmd.buffers = SmallBuffers();
    cmd.device_bloom = bloom;
    nkv::NdpTableAccess orders_access = nkv::SnapshotTable(*orders_, "o");
    orders_access.projection = {"o.id", "o.item_id"};
    cmd.snapshot = orders_access.primary.sequence;
    cmd.tables.push_back(std::move(orders_access));
    nkv::NdpTableAccess items_access = nkv::SnapshotTable(*sparse_t, "i");
    items_access.projection = {"i.id", "i.price"};
    cmd.tables.push_back(std::move(items_access));
    nkv::NdpJoinStage stage;
    stage.algo = nkv::JoinAlgo::kBNLJI;
    stage.outer_key_col = "o.id";  // ids 1..3000; only multiples of 30 hit
    stage.inner_join_col = "id";
    cmd.joins.push_back(std::move(stage));
    return cmd;
  };
  ndp::DeviceExecutor executor(&storage_, &hw_);
  auto without = executor.Execute(make_cmd(false));
  auto with = executor.Execute(make_cmd(true));
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->rows().size(), without->rows().size());
  EXPECT_EQ(with->total_rows(), 100u);  // multiples of 30 up to 3000
  // Bloom short-circuits missing keys before the sparse-index seek and the
  // data-block probe (the device block buffer absorbs the flash either way
  // for this small table, so the saving shows up as seek work + time).
  EXPECT_LT(with->counters.Units(sim::CostKind::kSeekIndexBlock),
            without->counters.Units(sim::CostKind::kSeekIndexBlock));
  EXPECT_LT(with->counters.Units(sim::CostKind::kSeekDataBlock),
            without->counters.Units(sim::CostKind::kSeekDataBlock));
  EXPECT_LT(with->total_work_ns, without->total_work_ns);
}

// ---- cooperative batch schedule ----

std::vector<ndp::DeviceBatch> MakeBatches(int n, SimNanos work,
                                          uint64_t bytes) {
  std::vector<ndp::DeviceBatch> out;
  for (int i = 0; i < n; ++i) out.push_back({0, 10, bytes, work});
  return out;
}

TEST(BatchScheduleTest, HostWaitsForProduction) {
  HwParams hw = HwParams::PaperDefaults();
  // 1 ms of device work per batch (far above the PCIe transfer latency).
  hybrid::BatchSchedule sched(MakeBatches(3, 1'000'000.0, 100), 4, &hw, 0.0,
                              /*eager=*/false);
  hybrid::StageTimes stages;
  // Host asks immediately: must wait the full production time of batch 0.
  SimNanos t0 = sched.Fetch(0, 0.0, &stages);
  EXPECT_GE(t0, 1'000'000.0);
  EXPECT_NEAR(stages.initial_wait, 1'000'000.0, 1.0);
  // Later batches attribute to later_waits (host is faster than the device).
  SimNanos t1 = sched.Fetch(1, t0, &stages);
  EXPECT_GE(t1, 2'000'000.0);
  EXPECT_GT(stages.later_waits, 0.0);
  EXPECT_GT(stages.result_transfer, 0.0);
}

TEST(BatchScheduleTest, SlotBackPressureStallsDevice) {
  HwParams hw = HwParams::PaperDefaults();
  // 1 slot: the device cannot produce batch i+1 before batch i is fetched.
  hybrid::BatchSchedule sched(MakeBatches(4, 1000.0, 100), 1, &hw, 0.0,
                              /*eager=*/false);
  hybrid::StageTimes stages;
  SimNanos host = 0;
  for (int i = 0; i < 4; ++i) {
    // Slow host: fetches every 10000 ns.
    host = std::max(host + 10000.0, sched.Fetch(i, host + 10000.0, &stages));
  }
  EXPECT_GT(sched.device_stall(), 0.0);  // device halted on full slots
}

TEST(BatchScheduleTest, EagerModeHasNoBackPressure) {
  HwParams hw = HwParams::PaperDefaults();
  hybrid::BatchSchedule sched(MakeBatches(4, 1000.0, 100), 1, &hw, 0.0,
                              /*eager=*/true);
  hybrid::StageTimes stages;
  SimNanos host = 0;
  for (int i = 0; i < 4; ++i) {
    host = sched.Fetch(i, host + 10000.0, &stages);
  }
  EXPECT_EQ(sched.device_stall(), 0.0);
}

TEST(BatchScheduleTest, ReplayedFetchesAreFree) {
  HwParams hw = HwParams::PaperDefaults();
  hybrid::BatchSchedule sched(MakeBatches(2, 1000.0, 100), 4, &hw, 0.0, false);
  hybrid::StageTimes stages;
  SimNanos t = sched.Fetch(0, 0.0, &stages);
  const SimNanos wait_once = stages.initial_wait;
  // Rewind: same batch again — already in host memory, no new wait.
  SimNanos t2 = sched.Fetch(0, t, &stages);
  EXPECT_EQ(t2, t);
  EXPECT_EQ(stages.initial_wait, wait_once);
}

}  // namespace
}  // namespace hybridndp
