// Tests for the fault-injection layer (sim/fault) and the robustness
// plumbing built on it: poisoned shared-buffer schedules wake blocked
// consumers instead of deadlocking, Status propagates through both the
// row-pull and batch-native executor paths, and the hybrid executor
// degrades to a correct host-only run when a device-assisted attempt dies.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <set>

#include "exec/operator.h"
#include "hybrid/coop.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "lsm/db.h"
#include "obs/trace.h"
#include "rel/table.h"
#include "sim/fault.h"
#include "sim/hw_model.h"

namespace hybridndp {
namespace {

using exec::CmpOp;
using exec::Expr;
using hybrid::ExecChoice;
using hybrid::RunResult;
using hybrid::StageTimes;
using hybrid::Strategy;
using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using sim::FaultConfig;
using sim::FaultInjector;
using sim::FaultPolicy;
using sim::FaultSite;
using sim::ScopedFaultInjection;

FaultPolicy& SitePolicy(FaultConfig* cfg, FaultSite site) {
  return cfg->sites[static_cast<size_t>(site)];
}

// ---------------------------------------------------------------------------
// Spec parser

TEST(FaultSpecTest, SiteNamesRoundTrip) {
  for (int i = 0; i < sim::kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    FaultSite parsed;
    ASSERT_TRUE(sim::ParseFaultSite(sim::FaultSiteName(site), &parsed))
        << sim::FaultSiteName(site);
    EXPECT_EQ(parsed, site);
  }
  FaultSite ignored;
  EXPECT_FALSE(sim::ParseFaultSite("bogus.site", &ignored));
  EXPECT_FALSE(sim::ParseFaultSite("", &ignored));
}

TEST(FaultSpecTest, ParsesFullGrammar) {
  auto cfg = FaultConfig::Parse(
      "device.exec:nth=2;"
      "sst.read:prob=0.25,seed=7,stall=5us;"
      "coop.slot:always;"
      "retry:budget=5,backoff=10us");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();

  const FaultPolicy& dev = SitePolicy(&*cfg, FaultSite::kDeviceExec);
  EXPECT_EQ(dev.trigger, FaultPolicy::Trigger::kNth);
  EXPECT_EQ(dev.nth, 2u);
  EXPECT_EQ(dev.stall_ns, 0);

  const FaultPolicy& sst = SitePolicy(&*cfg, FaultSite::kSstRead);
  EXPECT_EQ(sst.trigger, FaultPolicy::Trigger::kProb);
  EXPECT_DOUBLE_EQ(sst.prob, 0.25);
  EXPECT_EQ(sst.seed, 7u);
  EXPECT_DOUBLE_EQ(sst.stall_ns, 5000.0);

  const FaultPolicy& slot = SitePolicy(&*cfg, FaultSite::kCoopSlot);
  EXPECT_EQ(slot.trigger, FaultPolicy::Trigger::kAlways);

  EXPECT_FALSE(SitePolicy(&*cfg, FaultSite::kStorageRead).armed());
  EXPECT_FALSE(SitePolicy(&*cfg, FaultSite::kStorageWrite).armed());
  EXPECT_EQ(cfg->retry_budget, 5);
  EXPECT_DOUBLE_EQ(cfg->backoff_ns, 10000.0);
  EXPECT_TRUE(cfg->any_armed());
}

TEST(FaultSpecTest, DurationSuffixes) {
  auto cfg = FaultConfig::Parse("coop.slot:always,stall=3ms;retry:backoff=40");
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(SitePolicy(&*cfg, FaultSite::kCoopSlot).stall_ns,
                   3'000'000.0);
  EXPECT_DOUBLE_EQ(cfg->backoff_ns, 40.0);  // bare number = ns
}

TEST(FaultSpecTest, EmptySpecDisarmsEverything) {
  auto cfg = FaultConfig::Parse("");
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg->any_armed());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus.site:always",        // unknown site
      "device.exec",              // missing items
      "device.exec:",             // empty item list
      "device.exec:nth=",         // missing value
      "device.exec:nth=abc",      // non-numeric
      "device.exec:nth=0",        // nth is 1-based
      "sst.read:prob=1.5",        // out of range
      "sst.read:prob=-0.1",       // out of range
      "coop.slot:stall=3kg",      // bad duration suffix
      "coop.slot:frobnicate",     // unknown item
      "retry:budget=-1",          // negative budget
      "device.exec:nth=1,prob=0.5",  // two triggers on one site
  };
  for (const char* spec : bad) {
    auto cfg = FaultConfig::Parse(spec);
    EXPECT_FALSE(cfg.ok()) << "accepted: " << spec;
  }
}

// ---------------------------------------------------------------------------
// Injector semantics

TEST(FaultInjectorTest, DisarmedFastPathIsFree) {
  ASSERT_FALSE(FaultInjector::Enabled());
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  sim::AccessContext ctx(&hw, sim::Actor::kDevice, sim::IoPath::kInternal);
  EXPECT_TRUE(sim::FaultCheck(FaultSite::kSstRead, &ctx).ok());
  EXPECT_EQ(ctx.now(), 0);
}

TEST(FaultInjectorTest, NthFaultRecoversOnFirstRetry) {
  FaultConfig cfg;
  SitePolicy(&cfg, FaultSite::kDeviceExec) = {FaultPolicy::Trigger::kNth,
                                              /*nth=*/1, 0.0, 0, 0};
  ScopedFaultInjection arm(cfg);

  sim::HwParams hw = sim::HwParams::PaperDefaults();
  sim::AccessContext ctx(&hw, sim::Actor::kDevice, sim::IoPath::kInternal);
  // Op 1 fires; the retry re-draws op 2, which does not, so the transient
  // fault heals after one backoff.
  EXPECT_TRUE(sim::FaultCheck(FaultSite::kDeviceExec, &ctx).ok());
  EXPECT_DOUBLE_EQ(ctx.now(), cfg.backoff_ns);

  const auto stats = FaultInjector::Global().Stats(FaultSite::kDeviceExec);
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(FaultInjectorTest, AlwaysFaultExhaustsRetryBudget) {
  FaultConfig cfg;
  cfg.retry_budget = 3;
  cfg.backoff_ns = 1000;
  SitePolicy(&cfg, FaultSite::kStorageRead).trigger =
      FaultPolicy::Trigger::kAlways;
  ScopedFaultInjection arm(cfg);

  sim::HwParams hw = sim::HwParams::PaperDefaults();
  sim::AccessContext ctx(&hw, sim::Actor::kDevice, sim::IoPath::kInternal);
  Status st = sim::FaultCheck(FaultSite::kStorageRead, &ctx);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("storage.read"), std::string::npos)
      << st.ToString();
  // Backoff doubles per attempt: 1000 + 2000 + 4000.
  EXPECT_DOUBLE_EQ(ctx.now(), 7000.0);

  const auto stats = FaultInjector::Global().Stats(FaultSite::kStorageRead);
  EXPECT_EQ(stats.injected, 4u);  // initial fire + 3 failed retries
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.exhausted, 1u);
}

TEST(FaultInjectorTest, StallFaultDelaysWithoutError) {
  FaultConfig cfg;
  auto& p = SitePolicy(&cfg, FaultSite::kCoopSlot);
  p.trigger = FaultPolicy::Trigger::kAlways;
  p.stall_ns = 2500;
  ScopedFaultInjection arm(cfg);

  sim::HwParams hw = sim::HwParams::PaperDefaults();
  sim::AccessContext ctx(&hw, sim::Actor::kHost, sim::IoPath::kInternal);
  EXPECT_TRUE(sim::FaultCheck(FaultSite::kCoopSlot, &ctx).ok());
  EXPECT_DOUBLE_EQ(ctx.now(), 2500.0);
  EXPECT_EQ(FaultInjector::Global().Stats(FaultSite::kCoopSlot).stalls, 1u);
  EXPECT_EQ(FaultInjector::Global().Stats(FaultSite::kCoopSlot).exhausted, 0u);
}

TEST(FaultInjectorTest, ProbTriggerIsDeterministicallySeeded) {
  FaultConfig cfg;
  auto& p = SitePolicy(&cfg, FaultSite::kSstRead);
  p.trigger = FaultPolicy::Trigger::kProb;
  p.prob = 0.5;
  p.seed = 123;
  p.stall_ns = 1;  // stall faults don't retry: one decision per check
  ScopedFaultInjection arm(cfg);

  auto run = [] {
    FaultInjector::Global().ResetCounters();
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(sim::FaultCheck(FaultSite::kSstRead, nullptr).ok());
    }
    return FaultInjector::Global().Stats(FaultSite::kSstRead).stalls;
  };
  const uint64_t first = run();
  const uint64_t second = run();
  EXPECT_EQ(first, second);
  // A fair-ish coin over 200 draws: sanity bounds, not distribution tests.
  EXPECT_GT(first, 50u);
  EXPECT_LT(first, 150u);
}

TEST(FaultInjectorTest, ScopedInjectionRestoresPreviousState) {
  ASSERT_FALSE(FaultInjector::Enabled());
  {
    ScopedFaultInjection arm("device.exec:always");
    EXPECT_TRUE(FaultInjector::Enabled());
    {
      ScopedFaultInjection inner("coop.slot:nth=3");
      EXPECT_TRUE(FaultInjector::Enabled());
      EXPECT_FALSE(
          FaultInjector::Global().config().sites[0].armed());  // storage.read
    }
    EXPECT_TRUE(FaultInjector::Global()
                    .config()
                    .sites[static_cast<size_t>(FaultSite::kDeviceExec)]
                    .armed());
  }
  EXPECT_FALSE(FaultInjector::Enabled());
}

TEST(FaultInjectorTest, InitFromEnvParsesAndDisarms) {
  ASSERT_EQ(setenv("HNDP_FAULTS", "device.exec:nth=4", 1), 0);
  EXPECT_TRUE(FaultInjector::Global().InitFromEnv().ok());
  EXPECT_TRUE(FaultInjector::Enabled());
  EXPECT_EQ(FaultInjector::Global()
                .config()
                .sites[static_cast<size_t>(FaultSite::kDeviceExec)]
                .nth,
            4u);

  ASSERT_EQ(setenv("HNDP_FAULTS", "not a spec", 1), 0);
  EXPECT_FALSE(FaultInjector::Global().InitFromEnv().ok());

  ASSERT_EQ(unsetenv("HNDP_FAULTS"), 0);
  EXPECT_TRUE(FaultInjector::Global().InitFromEnv().ok());
  EXPECT_FALSE(FaultInjector::Enabled());
}

// ---------------------------------------------------------------------------
// Poisoned BatchSchedule: wake semantics

std::vector<ndp::DeviceBatch> ThreeBatches() {
  return {{0, 2, 8, 1000}, {0, 2, 8, 1000}, {0, 2, 8, 1000}};
}

TEST(PoisonedScheduleTest, FetchOfDeadBatchWakesAtDeathTime) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hybrid::BatchSchedule sched(ThreeBatches(), /*shared_slots=*/4, &hw,
                              /*start_time=*/0, /*eager=*/false);
  sched.Poison(5000, Status::IOError("producer died"), /*after=*/0);

  StageTimes stages;
  Status err;
  const SimNanos wake = sched.Fetch(0, /*host_now=*/100, &stages, &err);
  EXPECT_DOUBLE_EQ(wake, 5000.0);  // woken at the death notification
  EXPECT_TRUE(err.IsIOError());
  EXPECT_DOUBLE_EQ(stages.initial_wait, 4900.0);
  EXPECT_DOUBLE_EQ(stages.result_transfer, 0.0);

  // A consumer already past the death time is woken immediately.
  err = Status::OK();
  const SimNanos wake2 = sched.Fetch(1, /*host_now=*/9000, &stages, &err);
  EXPECT_DOUBLE_EQ(wake2, 9000.0);
  EXPECT_TRUE(err.IsIOError());
}

TEST(PoisonedScheduleTest, BatchesBeforeThePoisonIndexStillArrive) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hybrid::BatchSchedule sched(ThreeBatches(), 4, &hw, 0, /*eager=*/false);
  sched.Poison(10'000, Status::Aborted("device fault"), /*after=*/2);

  StageTimes stages;
  Status err;
  SimNanos now = sched.Fetch(0, 0, &stages, &err);
  EXPECT_TRUE(err.ok());
  now = sched.Fetch(1, now, &stages, &err);
  EXPECT_TRUE(err.ok());
  sched.Fetch(2, now, &stages, &err);
  EXPECT_TRUE(err.IsAborted());
}

TEST(PoisonedScheduleTest, ErrorOutParamIsOptional) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  hybrid::BatchSchedule sched(ThreeBatches(), 4, &hw, 0, /*eager=*/false);
  sched.Poison(0, Status::IOError("x"), 0);
  StageTimes stages;
  // Legacy 3-arg callers (timing-only tests) must not crash on poison.
  EXPECT_DOUBLE_EQ(sched.Fetch(0, 50, &stages), 50.0);
}

// ---------------------------------------------------------------------------
// Status propagation through the host pipeline (row-pull and batch paths)

class PoisonedSourceTest : public ::testing::Test {
 protected:
  PoisonedSourceTest()
      : hw_(sim::HwParams::PaperDefaults()),
        schema_({IntCol("v")}),
        ctx_(&hw_, sim::Actor::kHost, sim::IoPath::kNative) {
    for (int i = 0; i < 6; ++i) {
      RowBuilder rb(&schema_);
      rb.SetInt(0, i);
      rows_.push_back(rb.row());
    }
  }

  /// Schedule of 3 x 2-row batches, poisoned after the first two batches:
  /// 4 rows arrive, then the producer dies.
  std::unique_ptr<hybrid::BatchSchedule> MakePoisonedSchedule() {
    auto sched = std::make_unique<hybrid::BatchSchedule>(
        ThreeBatches(), 4, &hw_, 0, /*eager=*/false);
    sched->Poison(10'000, Status::IOError("injected fault at sst.read"),
                  /*after=*/2);
    return sched;
  }

  sim::HwParams hw_;
  rel::Schema schema_;
  std::vector<std::string> rows_;
  sim::AccessContext ctx_;
  StageTimes stages_;
};

TEST_F(PoisonedSourceTest, RowPullDeliversPrefixThenParksStatus) {
  auto sched = MakePoisonedSchedule();
  hybrid::StallingSourceOp src(schema_, &rows_, sched.get(), &ctx_, &stages_);
  ASSERT_TRUE(src.Open().ok());
  std::string row;
  int delivered = 0;
  while (src.Next(&row)) ++delivered;
  // Rows that reached the shared buffer before the death stay delivered;
  // the failure surfaces afterwards, in order.
  EXPECT_EQ(delivered, 4);
  EXPECT_TRUE(src.status().IsIOError());
}

TEST_F(PoisonedSourceTest, BatchPullDeliversPrefixThenParksStatus) {
  auto sched = MakePoisonedSchedule();
  hybrid::StallingSourceOp src(schema_, &rows_, sched.get(), &ctx_, &stages_);
  ASSERT_TRUE(src.Open().ok());
  size_t delivered = 0;
  while (exec::RowBatch* b = src.NextBatch(64)) delivered += b->num_active();
  EXPECT_EQ(delivered, 4u);
  EXPECT_TRUE(src.status().IsIOError());
}

TEST_F(PoisonedSourceTest, CollectAllSurfacesChildStatusThroughParents) {
  // The error is parked two levels down (source under a projection); both
  // drain paths must surface it instead of returning a silently truncated
  // result set.
  for (const bool batched : {false, true}) {
    auto sched = MakePoisonedSchedule();
    exec::OperatorPtr src = std::make_unique<hybrid::StallingSourceOp>(
        schema_, &rows_, sched.get(), &ctx_, &stages_);
    auto root = std::make_unique<exec::ProjectOp>(
        std::move(src), std::vector<std::string>{"v"}, &ctx_);
    auto rows = batched ? exec::CollectAllBatched(root.get(), 3)
                        : exec::CollectAll(root.get());
    EXPECT_FALSE(rows.ok()) << (batched ? "batched" : "row") << " path";
    EXPECT_TRUE(rows.status().IsIOError());
  }
}

TEST_F(PoisonedSourceTest, CleanScheduleStillDrainsEverything) {
  hybrid::BatchSchedule sched(ThreeBatches(), 4, &hw_, 0, /*eager=*/false);
  hybrid::StallingSourceOp src(schema_, &rows_, &sched, &ctx_, &stages_);
  ASSERT_TRUE(src.Open().ok());
  size_t delivered = 0;
  while (exec::RowBatch* b = src.NextBatch(64)) delivered += b->num_active();
  EXPECT_EQ(delivered, 6u);
  EXPECT_TRUE(src.status().ok());
}

// ---------------------------------------------------------------------------
// End-to-end: hybrid executor under injected faults

/// Small star schema (orders -> customer, product), same shape as the
/// hybrid_test fixture but sized for many repeated runs.
class FaultE2ETest : public ::testing::Test {
 protected:
  FaultE2ETest()
      : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
        catalog_(&db_) {
    rel::TableDef cust;
    cust.name = "customer";
    cust.schema =
        rel::Schema({IntCol("id"), CharCol("name", 16), CharCol("city", 12)});
    cust.pk_col = 0;
    cust_ = catalog_.CreateTable(std::move(cust));

    rel::TableDef prod;
    prod.name = "product";
    prod.schema =
        rel::Schema({IntCol("id"), IntCol("price"), CharCol("category", 12)});
    prod.pk_col = 0;
    prod_ = catalog_.CreateTable(std::move(prod));

    rel::TableDef orders;
    orders.name = "orders";
    orders.schema = rel::Schema({IntCol("id"), IntCol("customer_id"),
                                 IntCol("product_id"), IntCol("quantity")});
    orders.pk_col = 0;
    orders.indexes.push_back({"customer_id", 1});
    orders.indexes.push_back({"product_id", 2});
    orders_ = catalog_.CreateTable(std::move(orders));

    Rng rng(7);
    for (int i = 1; i <= 80; ++i) {
      RowBuilder rb(&cust_->schema());
      rb.SetInt(0, i)
          .SetString(1, "cust" + std::to_string(i))
          .SetString(2, i % 5 == 0 ? "berlin" : "city" + std::to_string(i % 9));
      EXPECT_TRUE(cust_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 50; ++i) {
      RowBuilder rb(&prod_->schema());
      rb.SetInt(0, i)
          .SetInt(1, 10 + (i * 13) % 500)
          .SetString(2, i % 4 == 0 ? "book" : "tool");
      EXPECT_TRUE(prod_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 1500; ++i) {
      RowBuilder rb(&orders_->schema());
      rb.SetInt(0, i)
          .SetInt(1, static_cast<int32_t>(rng.Zipf(80, 0.5) + 1))
          .SetInt(2, static_cast<int32_t>(rng.Zipf(50, 0.5) + 1))
          .SetInt(3, static_cast<int32_t>(1 + rng.Uniform(20)));
      EXPECT_TRUE(orders_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
    for (auto* t : catalog_.tables()) {
      EXPECT_TRUE(t->AnalyzeStats().ok());
    }
  }

  static sim::HwParams MakeHw() {
    sim::HwParams hw = sim::HwParams::PaperDefaults();
    hw.mem.device_selection_bytes = 64 << 10;
    hw.mem.device_join_bytes = 32 << 10;
    hw.mem.device_ndp_budget_bytes = 4 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }
  hybrid::PlannerConfig MakePlannerConfig() {
    hybrid::PlannerConfig cfg;
    cfg.buffers.selection_buffer_bytes = 64 << 10;
    cfg.buffers.join_buffer_bytes = 32 << 10;
    cfg.buffers.shared_slot_bytes = 4 << 10;
    cfg.buffers.shared_slots = 4;
    return cfg;
  }

  hybrid::Query MakeQuery() {
    hybrid::Query q;
    q.name = "orders_join";
    q.tables.push_back({"orders", "o", nullptr});
    q.tables.push_back(
        {"customer", "c", Expr::CmpStr("c.city", CmpOp::kEq, "berlin")});
    q.tables.push_back(
        {"product", "p", Expr::CmpInt("p.price", CmpOp::kGe, 400)});
    q.joins.push_back({"o", "customer_id", "c", "id"});
    q.joins.push_back({"o", "product_id", "p", "id"});
    q.select_columns = {"o.id", "c.name", "p.price"};
    return q;
  }

  Result<hybrid::Plan> MakePlan() {
    hybrid::Planner planner(&catalog_, &hw_, MakePlannerConfig());
    return planner.PlanQuery(MakeQuery());
  }

  hybrid::HybridExecutor MakeExecutor() {
    return hybrid::HybridExecutor(&catalog_, &storage_, &hw_,
                                  MakePlannerConfig());
  }

  static std::multiset<std::string> Canon(const RunResult& r) {
    return std::multiset<std::string>(r.rows.begin(), r.rows.end());
  }

  sim::HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  rel::Table* cust_ = nullptr;
  rel::Table* prod_ = nullptr;
  rel::Table* orders_ = nullptr;
};

TEST_F(FaultE2ETest, ZeroFaultModeIsBitIdenticalWhileArmed) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();

  auto clean = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(clean.ok());

  // Armed injector whose policy never fires: the simulation must be
  // bit-identical — site checks draw op numbers but charge nothing.
  ScopedFaultInjection arm("device.exec:nth=1000000");
  auto armed = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(armed.ok());
  EXPECT_FALSE(armed->fell_back);
  EXPECT_EQ(armed->total_ns, clean->total_ns);
  EXPECT_EQ(armed->rows, clean->rows);
  EXPECT_EQ(armed->host_stages.total(), clean->host_stages.total());
  EXPECT_EQ(armed->device_busy_ns, clean->device_busy_ns);
}

TEST_F(FaultE2ETest, TransientDeviceFaultRetriesAndSucceeds) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();
  auto clean = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(clean.ok());

  // nth=1 fires on the first NDP invocation; the retry re-draws op 2 and
  // recovers — no fallback, identical results, one retry on the books.
  ScopedFaultInjection arm("device.exec:nth=1");
  auto r = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->fell_back);
  EXPECT_EQ(Canon(*r), Canon(*clean));
  const auto stats = FaultInjector::Global().Stats(FaultSite::kDeviceExec);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST_F(FaultE2ETest, SlotStallDelaysButSucceeds) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();
  auto clean = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(clean.ok());

  ScopedFaultInjection arm("coop.slot:always,stall=100us");
  auto r = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->fell_back);
  EXPECT_EQ(Canon(*r), Canon(*clean));
  EXPECT_GT(r->total_ns, clean->total_ns);  // spikes became wait time
  EXPECT_GT(FaultInjector::Global().Stats(FaultSite::kCoopSlot).stalls, 0u);
}

TEST_F(FaultE2ETest, PermanentFaultAtEverySiteDegradesToCorrectResults) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();

  auto host_ref = executor.Run(*plan, {Strategy::kHostNative, 0});
  ASSERT_TRUE(host_ref.ok());
  const auto want = Canon(*host_ref);

  const FaultSite sites[] = {FaultSite::kStorageRead, FaultSite::kSstRead,
                             FaultSite::kDeviceExec, FaultSite::kCoopSlot};
  const ExecChoice choices[] = {{Strategy::kHybrid, 0},
                                {Strategy::kHybrid, 1},
                                {Strategy::kFullNdp, 0}};
  for (const FaultSite site : sites) {
    for (const ExecChoice& choice : choices) {
      ScopedFaultInjection arm(std::string(sim::FaultSiteName(site)) +
                               ":always");
      obs::TraceRecorder rec;
      auto r = executor.Run(*plan, choice, nullptr, &rec);
      ASSERT_TRUE(r.ok())
          << sim::FaultSiteName(site) << "/" << choice.ToString() << ": "
          << r.status().ToString();
      EXPECT_TRUE(r->fell_back)
          << sim::FaultSiteName(site) << "/" << choice.ToString();
      EXPECT_TRUE(r->fault_status.IsIOError());
      EXPECT_GT(r->fault_wasted_ns, 0);
      EXPECT_EQ(Canon(*r), want)
          << sim::FaultSiteName(site) << "/" << choice.ToString();
      // Degradation is observable: counted, and the wasted attempt is a
      // setup-category span so the stage spans still tile [0, total].
      EXPECT_EQ(rec.metrics()->counter("hndp.fallback")->value(), 1u);
      ASSERT_GE(r->trace_host_track, 0);
      EXPECT_DOUBLE_EQ(rec.CategoryTotal(r->trace_host_track, "setup"),
                       r->fault_wasted_ns);
      EXPECT_DOUBLE_EQ(r->host_stages.ndp_setup, r->fault_wasted_ns);
      EXPECT_DOUBLE_EQ(r->host_stages.total(), r->total_ns);
    }
  }
}

TEST_F(FaultE2ETest, HostOnlyRunsAreImmuneToDeviceSideFaults) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();
  auto clean = executor.Run(*plan, {Strategy::kHostNative, 0});
  ASSERT_TRUE(clean.ok());

  // storage.read / sst.read faults are device-gated, so the host path never
  // trips them — the precondition for fallback always succeeding.
  ScopedFaultInjection arm("storage.read:always;sst.read:always");
  auto r = executor.Run(*plan, {Strategy::kHostNative, 0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->fell_back);
  EXPECT_EQ(Canon(*r), Canon(*clean));
}

TEST_F(FaultE2ETest, LevelScanLatchesSstReadErrorInsteadOfTruncating) {
  // Push the orders table into C2+: those files sit behind the concatenating
  // level iterator, which used to treat an errored file iterator as merely
  // exhausted — skipping past it and reporting a clean, truncated scan.
  ASSERT_TRUE(db_.CompactAll(orders_->primary_cf()).ok());
  const lsm::Version& v = db_.GetVersion(orders_->primary_cf());
  size_t deep_files = 0;
  for (size_t level = 1; level < v.levels.size(); ++level) {
    deep_files += v.levels[level].size();
  }
  ASSERT_GT(deep_files, 0u) << "compaction left no files below C1";

  sim::AccessContext host_ctx(&hw_, sim::Actor::kHost, sim::IoPath::kNative);
  lsm::ReadOptions host_opts;
  host_opts.ctx = &host_ctx;
  size_t total_rows = 0;
  auto host_it = db_.NewIterator(host_opts, orders_->primary_cf());
  for (host_it->SeekToFirst(); host_it->Valid(); host_it->Next()) {
    ++total_rows;
  }
  ASSERT_TRUE(host_it->status().ok()) << host_it->status().ToString();
  ASSERT_EQ(total_rows, 1500u);

  ScopedFaultInjection arm("sst.read:always");
  sim::AccessContext dev_ctx(&hw_, sim::Actor::kDevice,
                             sim::IoPath::kInternal);
  lsm::ReadOptions dev_opts;
  dev_opts.ctx = &dev_ctx;
  auto it = db_.NewIterator(dev_opts, orders_->primary_cf());
  size_t rows = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) ++rows;
  // The drain may stop early, but it must NOT look like a clean exhaustion:
  // either every row arrived or the error is parked on the iterator.
  EXPECT_TRUE(it->status().IsIOError()) << it->status().ToString();
  EXPECT_LT(rows, total_rows);
}

TEST_F(FaultE2ETest, StorageWriteFaultFailsSstBuild) {
  ScopedFaultInjection arm("storage.write:always");
  auto file = storage_.AddFileChecked("payload");
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsIOError());
}

TEST_F(FaultE2ETest, BlockedConsumerIsWokenNotDeadlocked) {
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();
  auto host_ref = executor.Run(*plan, {Strategy::kHostNative, 0});
  ASSERT_TRUE(host_ref.ok());

  // Watchdog: the consumer blocks on device batches whose producer dies
  // mid-production. Poison-the-buffer must complete the run (via fallback)
  // instead of deadlocking in StallingSourceOp::Fetch; the future would
  // never become ready if the consumer hung.
  ScopedFaultInjection arm("coop.slot:nth=2");  // die on the 2nd slot handoff
  auto fut = std::async(std::launch::async, [&] {
    return executor.Run(*plan, {Strategy::kHybrid, 1});
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "consumer deadlocked on a dead producer";
  auto r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // nth=2 with retries drawing ops 3..5: coop.slot:always-style recovery
  // does not apply — the retry draws don't fire, so the fault is transient
  // and the run either recovers or falls back; both must yield correct rows.
  EXPECT_EQ(Canon(*r), Canon(*host_ref));
}

TEST_F(FaultE2ETest, EnvSpecSmoke) {
  // CI's fault-smoke matrix runs this binary with HNDP_FAULTS armed; this
  // test proves the armed spec parses and a real query survives it (clean
  // or degraded). Without the variable it just checks the disarmed default.
  const char* spec = std::getenv("HNDP_FAULTS");
  auto plan = MakePlan();
  ASSERT_TRUE(plan.ok());
  auto executor = MakeExecutor();
  auto clean = executor.Run(*plan, {Strategy::kHostNative, 0});
  ASSERT_TRUE(clean.ok());

  if (spec == nullptr || *spec == '\0') {
    EXPECT_FALSE(FaultInjector::Enabled());
    return;
  }
  auto cfg = FaultConfig::Parse(spec);
  ASSERT_TRUE(cfg.ok()) << "HNDP_FAULTS=" << spec << ": "
                        << cfg.status().ToString();
  ScopedFaultInjection arm(*cfg);
  auto r = executor.Run(*plan, {Strategy::kHybrid, 1});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canon(*r), Canon(*clean));
}

}  // namespace
}  // namespace hybridndp
