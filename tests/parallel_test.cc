// Tests for the parallel run harness: the thread pool, the lock-striped
// block cache under concurrent hammering, the reused-buffer key extraction,
// and the core determinism contract — HybridExecutor::RunAll over a worker
// pool must produce bit-identical simulated results to serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "hybrid/coop.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "obs/trace.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp {
namespace {

using exec::CmpOp;
using exec::Expr;
using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using sim::HwParams;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  common::ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SizeClampedToOneAndSerialFallback) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  // With one worker ParallelFor degrades to a serial loop on the caller.
  pool.ParallelFor(5, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// -------------------------------------------------------------- KeyBytes

TEST(KeyBytesTest, ReusedBufferMatchesAllocatingVariant) {
  rel::Schema schema({IntCol("a"), CharCol("s", 12), IntCol("b"),
                      CharCol("t", 5)});
  Rng rng(42);
  std::vector<std::string> rows;
  for (int i = 0; i < 64; ++i) {
    RowBuilder rb(&schema);
    rb.SetInt(0, static_cast<int32_t>(rng.Uniform(1'000'000)))
        .SetString(1, "str" + std::to_string(rng.Uniform(1000)))
        .SetInt(2, static_cast<int32_t>(rng.Uniform(7)) - 3)
        .SetString(3, std::string(rng.Uniform(6), 'x'));
    rows.push_back(rb.row());
  }

  const std::vector<std::vector<int>> col_sets = {
      {0}, {1}, {0, 2}, {1, 3}, {3, 1, 0}, {0, 1, 2, 3}, {}};
  std::string reused;  // deliberately carries content across iterations
  for (const auto& cols : col_sets) {
    for (const auto& row : rows) {
      const std::string allocated = exec::KeyBytes(schema, cols, row.data());
      exec::KeyBytesInto(schema, cols, row.data(), &reused);
      EXPECT_EQ(reused, allocated);
      // The transparent hash must agree between string and string_view
      // probes of the same bytes.
      EXPECT_EQ(exec::TransparentStringHash()(std::string_view(reused)),
                exec::TransparentStringHash()(std::string_view(allocated)));
    }
  }
}

// ------------------------------------------------------ sharded BlockCache

TEST(ShardedBlockCacheTest, ConcurrentHammerKeepsAccountingConsistent) {
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 200;
  lsm::BlockCache cache(/*capacity_bytes=*/64ull << 20, /*num_shards=*/16);
  EXPECT_EQ(cache.num_shards(), 16);

  common::ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&cache](size_t t) {
    const lsm::FileId file = static_cast<lsm::FileId>(t + 1);
    for (int i = 0; i < kKeysPerThread; ++i) {
      const uint64_t off = static_cast<uint64_t>(i) * 4096;
      EXPECT_FALSE(cache.Lookup(file, off));  // miss
      cache.Insert(file, off, 4096);
      EXPECT_TRUE(cache.Lookup(file, off));  // hit
    }
  });

  // Capacity is large enough that nothing evicts: every (file, off) is
  // missed exactly once and hit exactly once.
  EXPECT_EQ(cache.misses(), static_cast<uint64_t>(kThreads) * kKeysPerThread);
  EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads) * kKeysPerThread);
  EXPECT_EQ(cache.used_bytes(),
            static_cast<uint64_t>(kThreads) * kKeysPerThread * 4096);

  // EraseFile drops exactly one thread's entries.
  cache.EraseFile(1);
  EXPECT_EQ(cache.used_bytes(),
            static_cast<uint64_t>(kThreads - 1) * kKeysPerThread * 4096);
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(2, 0));
}

TEST(ShardedBlockCacheTest, SmallCacheDefaultsToOneShardAndGlobalLru) {
  // Small caches auto-select a single shard, preserving strict global LRU
  // (the seed's eviction-order tests rely on it).
  lsm::BlockCache cache(100);
  EXPECT_EQ(cache.num_shards(), 1);
  cache.Insert(1, 0, 60);
  cache.Insert(1, 100, 60);  // evicts (1, 0)
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(1, 100));
}

// ------------------------------------------- BatchSchedule lock discipline

// Consumer fetches on one thread while another poisons the tail and a third
// hammers the const accessors — the cross-thread shape the executor's
// device-death path produces. Regression for the unguarded-state bug the
// GUARDED_BY annotation pass surfaced: all assertions run post-join and are
// deterministic because the poison lands at a barrier, not mid-race.
TEST(BatchScheduleTest, ConcurrentFetchPoisonAndAccessorsStayCoherent) {
  sim::HwParams hw = HwParams::PaperDefaults();
  constexpr size_t kBatches = 8;
  constexpr size_t kPoisonAfter = 4;
  std::vector<ndp::DeviceBatch> batches;
  for (size_t j = 0; j < kBatches; ++j) {
    batches.push_back({/*stream=*/0, /*rows=*/10, /*bytes=*/1000,
                       /*work_ns=*/50'000.0});
  }
  hybrid::BatchSchedule sched(batches, /*shared_slots=*/2, &hw,
                              /*start_time=*/0, /*eager=*/false);

  std::atomic<bool> first_half_done{false};
  std::atomic<bool> poison_done{false};
  std::atomic<bool> stop_readers{false};

  std::thread poisoner([&] {
    while (!first_half_done.load()) std::this_thread::yield();
    sched.Poison(/*when=*/1'000'000'000.0, Status::IOError("device died"),
                 kPoisonAfter);
    poison_done.store(true);
  });
  std::thread reader([&] {
    while (!stop_readers.load()) {
      (void)sched.poisoned();
      (void)sched.device_stall();
      (void)sched.poison_status();
    }
  });

  // Consumer: first half must arrive normally, second half must surface the
  // producer's death instead of stalling forever.
  hybrid::StageTimes st;
  SimNanos now = 0;
  Status err;
  for (size_t j = 0; j < kPoisonAfter; ++j) {
    now = sched.Fetch(j, now, &st, &err);
    EXPECT_TRUE(err.ok()) << err.ToString();
  }
  const SimNanos delivered_through = now;
  first_half_done.store(true);
  while (!poison_done.load()) std::this_thread::yield();
  for (size_t j = kPoisonAfter; j < kBatches; ++j) {
    now = sched.Fetch(j, now, &st, &err);
    EXPECT_TRUE(err.IsIOError()) << "batch " << j;
  }
  stop_readers.store(true);
  poisoner.join();
  reader.join();

  EXPECT_GT(delivered_through, 0);
  EXPECT_TRUE(sched.poisoned());
  EXPECT_TRUE(sched.poison_status().IsIOError());
  // Woken at the death notification, never earlier.
  EXPECT_GE(now, 1'000'000'000.0);
}

// ----------------------------------------------- RunAll determinism contract

/// Star-schema fixture mirroring hybrid_test.cc: orders -> customer, product.
class RunAllTest : public ::testing::Test {
 protected:
  RunAllTest()
      : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
        catalog_(&db_) {
    rel::TableDef cust;
    cust.name = "customer";
    cust.schema = rel::Schema(
        {IntCol("id"), CharCol("name", 16), CharCol("city", 12)});
    cust.pk_col = 0;
    cust_ = catalog_.CreateTable(std::move(cust));

    rel::TableDef prod;
    prod.name = "product";
    prod.schema =
        rel::Schema({IntCol("id"), IntCol("price"), CharCol("category", 12)});
    prod.pk_col = 0;
    prod_ = catalog_.CreateTable(std::move(prod));

    rel::TableDef orders;
    orders.name = "orders";
    orders.schema = rel::Schema({IntCol("id"), IntCol("customer_id"),
                                 IntCol("product_id"), IntCol("quantity")});
    orders.pk_col = 0;
    orders.indexes.push_back({"customer_id", 1});
    orders.indexes.push_back({"product_id", 2});
    orders_ = catalog_.CreateTable(std::move(orders));

    Rng rng(7);
    for (int i = 1; i <= 200; ++i) {
      RowBuilder rb(&cust_->schema());
      rb.SetInt(0, i)
          .SetString(1, "cust" + std::to_string(i))
          .SetString(2, i % 5 == 0 ? "berlin" : "city" + std::to_string(i % 9));
      EXPECT_TRUE(cust_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 100; ++i) {
      RowBuilder rb(&prod_->schema());
      rb.SetInt(0, i)
          .SetInt(1, 10 + (i * 13) % 500)
          .SetString(2, i % 4 == 0 ? "book" : "tool");
      EXPECT_TRUE(prod_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 5000; ++i) {
      RowBuilder rb(&orders_->schema());
      rb.SetInt(0, i)
          .SetInt(1, static_cast<int32_t>(rng.Zipf(200, 0.5) + 1))
          .SetInt(2, static_cast<int32_t>(rng.Zipf(100, 0.5) + 1))
          .SetInt(3, static_cast<int32_t>(1 + rng.Uniform(20)));
      EXPECT_TRUE(orders_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
    for (auto* t : catalog_.tables()) {
      EXPECT_TRUE(t->AnalyzeStats().ok());
    }
  }

  static HwParams MakeHw() {
    HwParams hw = HwParams::PaperDefaults();
    hw.mem.device_selection_bytes = 64 << 10;
    hw.mem.device_join_bytes = 32 << 10;
    hw.mem.device_ndp_budget_bytes = 4 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }
  hybrid::PlannerConfig MakePlannerConfig() {
    hybrid::PlannerConfig cfg;
    cfg.buffers.selection_buffer_bytes = 64 << 10;
    cfg.buffers.join_buffer_bytes = 32 << 10;
    cfg.buffers.shared_slot_bytes = 4 << 10;
    cfg.buffers.shared_slots = 4;
    return cfg;
  }

  hybrid::Query MakeQuery() {
    hybrid::Query q;
    q.name = "orders_join";
    q.tables.push_back({"orders", "o", nullptr});
    q.tables.push_back(
        {"customer", "c", Expr::CmpStr("c.city", CmpOp::kEq, "berlin")});
    q.tables.push_back(
        {"product", "p", Expr::CmpInt("p.price", CmpOp::kGe, 400)});
    q.joins.push_back({"o", "customer_id", "c", "id"});
    q.joins.push_back({"o", "product_id", "p", "id"});
    q.select_columns = {"o.id", "c.name", "p.price"};
    return q;
  }

  /// Assert every simulated metric of two runs is bit-identical.
  static void ExpectIdentical(const hybrid::RunResult& a,
                              const hybrid::RunResult& b) {
    EXPECT_EQ(a.rows, b.rows);  // exact vector equality, including order
    EXPECT_EQ(a.total_ns, b.total_ns);
    EXPECT_EQ(a.host_counters.units, b.host_counters.units);
    EXPECT_EQ(a.host_counters.time_ps, b.host_counters.time_ps);
    EXPECT_EQ(a.device_counters.units, b.device_counters.units);
    EXPECT_EQ(a.device_counters.time_ps, b.device_counters.time_ps);
    EXPECT_EQ(a.host_stages.ndp_setup, b.host_stages.ndp_setup);
    EXPECT_EQ(a.host_stages.initial_wait, b.host_stages.initial_wait);
    EXPECT_EQ(a.host_stages.later_waits, b.host_stages.later_waits);
    EXPECT_EQ(a.host_stages.result_transfer, b.host_stages.result_transfer);
    EXPECT_EQ(a.host_stages.processing, b.host_stages.processing);
    EXPECT_EQ(a.device_busy_ns, b.device_busy_ns);
    EXPECT_EQ(a.device_stall_ns, b.device_stall_ns);
    EXPECT_EQ(a.device_rows, b.device_rows);
    EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
    EXPECT_EQ(a.num_batches, b.num_batches);
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  rel::Table* cust_ = nullptr;
  rel::Table* prod_ = nullptr;
  rel::Table* orders_ = nullptr;
};

TEST_F(RunAllTest, ParallelMatchesSerialBitForBit) {
  const auto cfg = MakePlannerConfig();
  hybrid::Planner planner(&catalog_, &hw_, cfg);
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_, cfg);
  const auto choices = hybrid::HybridExecutor::AllChoices(*plan);
  ASSERT_GE(choices.size(), 4u);  // BLK, NATIVE, H0, H1, NDP for 3 tables

  const uint64_t cache_bytes = 1 << 20;
  auto factory = [cache_bytes] {
    return std::make_unique<lsm::BlockCache>(cache_bytes);
  };

  // Serial baseline: one-by-one Run() calls with fresh caches. Pre-open the
  // readers so the serial sweep starts from the same shared-immutable state
  // RunAll establishes.
  db_.OpenAllReaders();
  std::vector<hybrid::RunResult> serial;
  for (const auto& choice : choices) {
    auto cache = factory();
    auto r = executor.Run(*plan, choice, cache.get());
    ASSERT_TRUE(r.ok()) << choice.ToString() << ": "
                        << r.status().ToString();
    serial.push_back(std::move(*r));
  }

  // Parallel fan-out over 4 workers must reproduce every simulated metric.
  common::ThreadPool pool(4);
  auto parallel = executor.RunAll(*plan, choices, &pool, factory);
  ASSERT_EQ(parallel.size(), choices.size());
  for (size_t i = 0; i < choices.size(); ++i) {
    ASSERT_TRUE(parallel[i].ok()) << choices[i].ToString() << ": "
                                  << parallel[i].status().ToString();
    SCOPED_TRACE(choices[i].ToString());
    ExpectIdentical(serial[i], *parallel[i]);
  }

  // Repeat the parallel fan-out: results are stable across schedules.
  auto again = executor.RunAll(*plan, choices, &pool, factory);
  for (size_t i = 0; i < choices.size(); ++i) {
    ASSERT_TRUE(again[i].ok());
    SCOPED_TRACE(choices[i].ToString());
    ExpectIdentical(serial[i], *again[i]);
  }
}

// ISSUE PR3 acceptance: the batch-vectorized pipeline must be simulated-
// metric bit-identical to row-at-a-time execution for every strategy,
// across batch sizes that exercise ragged tails (1, 7) and the default.
TEST_F(RunAllTest, BatchedExecutionMatchesRowExecutionBitForBit) {
  auto cfg = MakePlannerConfig();
  hybrid::Planner planner(&catalog_, &hw_, cfg);
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  db_.OpenAllReaders();

  const uint64_t cache_bytes = 1 << 20;
  auto run_with_batch = [&](size_t batch_rows) {
    auto run_cfg = cfg;
    run_cfg.exec_batch_rows = batch_rows;
    hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_, run_cfg);
    std::vector<hybrid::RunResult> results;
    for (const auto& choice : hybrid::HybridExecutor::AllChoices(*plan)) {
      lsm::BlockCache cache(cache_bytes);
      auto r = executor.Run(*plan, choice, &cache);
      EXPECT_TRUE(r.ok()) << choice.ToString() << ": "
                          << r.status().ToString();
      results.push_back(std::move(*r));
    }
    return results;
  };

  const auto row_mode = run_with_batch(0);
  ASSERT_GE(row_mode.size(), 4u);
  for (size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
    const auto batched = run_with_batch(batch_rows);
    ASSERT_EQ(batched.size(), row_mode.size());
    for (size_t i = 0; i < row_mode.size(); ++i) {
      SCOPED_TRACE("batch_rows=" + std::to_string(batch_rows) + " choice#" +
                   std::to_string(i));
      ExpectIdentical(row_mode[i], batched[i]);
    }
  }
}

TEST_F(RunAllTest, TracedRunAllMatchesUntracedSerialBitForBit) {
  // The null-recorder fast path and the attached-recorder path must be the
  // same simulation: a serial sweep with tracing off is bit-identical to a
  // parallel RunAll recording into a shared TraceRecorder.
  const auto cfg = MakePlannerConfig();
  hybrid::Planner planner(&catalog_, &hw_, cfg);
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());

  hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_, cfg);
  const auto choices = hybrid::HybridExecutor::AllChoices(*plan);
  auto factory = [] { return std::make_unique<lsm::BlockCache>(1 << 20); };

  db_.OpenAllReaders();
  std::vector<hybrid::RunResult> serial;
  for (const auto& choice : choices) {
    auto cache = factory();
    auto r = executor.Run(*plan, choice, cache.get(), /*rec=*/nullptr);
    ASSERT_TRUE(r.ok()) << choice.ToString();
    EXPECT_EQ(r->trace_host_track, -1);  // tracing off: no tracks assigned
    serial.push_back(std::move(*r));
  }

  obs::TraceRecorder rec;
  common::ThreadPool pool(4);
  auto traced = executor.RunAll(*plan, choices, &pool, factory, &rec);
  ASSERT_EQ(traced.size(), choices.size());
  for (size_t i = 0; i < choices.size(); ++i) {
    ASSERT_TRUE(traced[i].ok()) << choices[i].ToString();
    SCOPED_TRACE(choices[i].ToString());
    ExpectIdentical(serial[i], *traced[i]);
    // Every traced run got its own host track (ids depend on scheduling
    // order, so only their validity is asserted).
    EXPECT_GE(traced[i]->trace_host_track, 0);
  }
  EXPECT_GE(rec.num_tracks(), choices.size());
  EXPECT_GT(rec.num_spans(), 0u);
}

TEST_F(RunAllTest, NullPoolRunsSerially) {
  const auto cfg = MakePlannerConfig();
  hybrid::Planner planner(&catalog_, &hw_, cfg);
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());

  hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_, cfg);
  const auto choices = hybrid::HybridExecutor::AllChoices(*plan);
  auto results = executor.RunAll(*plan, choices, /*pool=*/nullptr,
                                 [] { return std::make_unique<lsm::BlockCache>(
                                          1 << 20); });
  ASSERT_EQ(results.size(), choices.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << choices[i].ToString();
    EXPECT_EQ(results[i]->choice.strategy, choices[i].strategy);
    EXPECT_EQ(results[i]->choice.split_joins, choices[i].split_joins);
  }
  // All strategies agree on the result multiset (existing cross-strategy
  // guarantee, now exercised through RunAll).
  std::multiset<std::string> expected(results[0]->rows.begin(),
                                      results[0]->rows.end());
  for (const auto& r : results) {
    EXPECT_EQ(std::multiset<std::string>(r->rows.begin(), r->rows.end()),
              expected);
  }
}

}  // namespace
}  // namespace hybridndp
