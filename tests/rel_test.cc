// Tests for the relational layer: schema/row codec, secondary index
// encoding, and the statistics collector.

#include <gtest/gtest.h>

#include "common/random.h"
#include "lsm/db.h"
#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp::rel {
namespace {

TEST(SchemaTest, OffsetsAndRowSize) {
  Schema s({IntCol("id"), CharCol("name", 10), IntCol("age")});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  // CHAR(10) is 4-byte aligned to 12.
  EXPECT_EQ(s.column(1).size, 12u);
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.row_size(), 20u);
}

TEST(SchemaTest, FindAndProject) {
  Schema s({IntCol("a"), IntCol("b"), CharCol("c", 8)});
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("missing"), -1);
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.row_size(), 12u);
}

TEST(SchemaTest, ConcatPreservesColumns) {
  Schema a({IntCol("x")});
  Schema b({IntCol("y"), CharCol("z", 4)});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 3u);
  EXPECT_EQ(c.row_size(), a.row_size() + b.row_size());
  EXPECT_EQ(c.Find("z"), 2);
}

TEST(RowCodecTest, IntAndStringRoundTrip) {
  Schema s({IntCol("id"), CharCol("name", 8), IntCol("neg")});
  RowBuilder rb(&s);
  rb.SetInt(0, 42).SetString(1, "hello").SetInt(2, -7);
  RowView v = rb.view();
  EXPECT_EQ(v.GetInt(0), 42);
  EXPECT_EQ(v.GetString(1).ToString(), "hello");
  EXPECT_EQ(v.GetInt(2), -7);
  // Raw view keeps padding.
  EXPECT_EQ(v.GetRaw(1).size(), 8u);
}

TEST(RowCodecTest, LongStringsTrimmedToColumnWidth) {
  Schema s({CharCol("name", 4)});
  RowBuilder rb(&s);
  rb.SetString(0, "a longer string");
  EXPECT_EQ(rb.view().GetString(0).ToString(), "a lo");
}

TEST(IndexEncodingTest, OrderPreservingComposite) {
  // Secondary-index keys must sort by (value, pk).
  std::string a = EncodeIndexPrefixInt(-5) + EncodeIndexPrefixInt(10);
  std::string b = EncodeIndexPrefixInt(-5) + EncodeIndexPrefixInt(11);
  std::string c = EncodeIndexPrefixInt(3) + EncodeIndexPrefixInt(1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(StatsTest, MinMaxNdvOnSmallDomain) {
  Schema s({IntCol("v")});
  StatsCollector collector(&s);
  for (int i = 0; i < 1000; ++i) {
    RowBuilder rb(&s);
    rb.SetInt(0, i % 10);
    collector.AddRow(rb.view());
  }
  TableStats stats = collector.Finish();
  EXPECT_EQ(stats.row_count, 1000u);
  EXPECT_EQ(stats.col(0).min_int, 0);
  EXPECT_EQ(stats.col(0).max_int, 9);
  EXPECT_EQ(stats.col(0).ndv, 10u);
  EXPECT_NEAR(stats.col(0).EqSelectivity(5), 0.1, 0.05);
}

TEST(StatsTest, KmvEstimatesLargeNdv) {
  Schema s({IntCol("v")});
  StatsCollector collector(&s);
  Rng rng(11);
  for (int i = 0; i < 60000; ++i) {
    RowBuilder rb(&s);
    // 30000 distinct values, each appearing ~2 times.
    rb.SetInt(0, static_cast<int32_t>(rng.Uniform(30000)));
    collector.AddRow(rb.view());
  }
  TableStats stats = collector.Finish();
  const double ndv = static_cast<double>(stats.col(0).ndv);
  EXPECT_GT(ndv, 30000 * 0.7);
  EXPECT_LT(ndv, 30000 * 1.3);
}

TEST(StatsTest, HistogramRangeSelectivity) {
  Schema s({IntCol("year")});
  StatsCollector collector(&s);
  for (int i = 0; i < 10000; ++i) {
    RowBuilder rb(&s);
    rb.SetInt(0, 1900 + i % 100);  // uniform 1900..1999
    collector.AddRow(rb.view());
  }
  TableStats stats = collector.Finish();
  EXPECT_NEAR(stats.col(0).RangeSelectivity(1950, 1999), 0.5, 0.08);
  EXPECT_NEAR(stats.col(0).LeSelectivity(1999), 1.0, 0.01);
  EXPECT_NEAR(stats.col(0).LeSelectivity(1899), 0.0, 0.01);
  EXPECT_NEAR(stats.col(0).RangeSelectivity(2500, 2600), 0.0, 0.01);
}

TEST(StatsTest, NullFractionTracked) {
  Schema s({CharCol("name", 8)});
  StatsCollector collector(&s);
  for (int i = 0; i < 100; ++i) {
    RowBuilder rb(&s);
    rb.SetString(0, i % 4 == 0 ? "" : "x");
    collector.AddRow(rb.view());
  }
  TableStats stats = collector.Finish();
  EXPECT_NEAR(stats.col(0).null_fraction, 0.25, 0.01);
}

TEST(TableTest, SecondaryIndexMaintainedOnInsert) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  lsm::VirtualStorage storage(&hw);
  lsm::DB db(&storage, lsm::DBOptions{});
  rel::Catalog catalog(&db);

  TableDef def;
  def.name = "t";
  def.schema = Schema({IntCol("id"), IntCol("grp")});
  def.pk_col = 0;
  def.indexes.push_back({"grp", 1});
  Table* t = catalog.CreateTable(std::move(def));

  for (int i = 1; i <= 100; ++i) {
    RowBuilder rb(&t->schema());
    rb.SetInt(0, i).SetInt(1, i % 10);
    ASSERT_TRUE(t->Insert(rb.row()).ok());
  }
  // Index scan for grp == 3 returns exactly the matching pks.
  auto iter = t->NewIndexIterator(lsm::ReadOptions{}, 0);
  std::string start = EncodeIndexPrefixInt(3);
  iter->Seek(Slice(start));
  int count = 0;
  while (iter->Valid() && memcmp(iter->key().data(), start.data(), 4) == 0) {
    const int32_t pk = GetOrderedInt32(iter->key().data() + 4);
    EXPECT_EQ(pk % 10, 3);
    ++count;
    iter->Next();
  }
  EXPECT_EQ(count, 10);
}

TEST(TableTest, RejectsWrongRowSize) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  lsm::VirtualStorage storage(&hw);
  lsm::DB db(&storage, lsm::DBOptions{});
  rel::Catalog catalog(&db);
  TableDef def;
  def.name = "t";
  def.schema = Schema({IntCol("id")});
  Table* t = catalog.CreateTable(std::move(def));
  EXPECT_FALSE(t->Insert("too long for one int").ok());
}

TEST(TableTest, StoredBytesReflectsPhysicalSize) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  lsm::VirtualStorage storage(&hw);
  lsm::DB db(&storage, lsm::DBOptions{});
  rel::Catalog catalog(&db);
  TableDef def;
  def.name = "t";
  def.schema = Schema({IntCol("id"), CharCol("pad", 32)});
  Table* t = catalog.CreateTable(std::move(def));
  for (int i = 1; i <= 5000; ++i) {
    RowBuilder rb(&t->schema());
    rb.SetInt(0, i).SetString(1, "x");
    ASSERT_TRUE(t->Insert(rb.row()).ok());
  }
  ASSERT_TRUE(db.FlushAll().ok());
  // Physical SSTs carry internal keys + index blocks: more than logical.
  EXPECT_GT(t->stored_bytes(), t->data_bytes());
  EXPECT_LT(t->stored_bytes(), t->data_bytes() * 3);
}

}  // namespace
}  // namespace hybridndp::rel
