// Unit + integration tests for the LSM substrate: memtable, blocks, SSTs,
// compaction, column families, iterators, snapshots, and cost charging.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "lsm/memtable.h"
#include "lsm/merge_iterator.h"
#include "lsm/sst.h"
#include "lsm/storage.h"
#include "sim/hw_model.h"

namespace hybridndp::lsm {
namespace {

using sim::AccessContext;
using sim::Actor;
using sim::CostKind;
using sim::HwParams;
using sim::IoPath;

std::string IKey(const std::string& user, SequenceNumber seq,
                 ValueType t = ValueType::kValue) {
  std::string k;
  AppendInternalKey(&k, user, seq, t);
  return k;
}

TEST(InternalKeyTest, ParseRoundTrip) {
  std::string k = IKey("hello", 42, ValueType::kValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(Slice(k), &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "hello");
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, ValueType::kValue);
}

TEST(InternalKeyTest, OrderingUserAscSeqDesc) {
  // Same user key: higher sequence sorts first.
  EXPECT_LT(CompareInternalKey(IKey("a", 5), IKey("a", 3)), 0);
  // Different user keys dominate.
  EXPECT_LT(CompareInternalKey(IKey("a", 1), IKey("b", 100)), 0);
  // Deletion vs value at same seq boundary.
  EXPECT_GT(CompareInternalKey(IKey("b", 1), IKey("a", 1)), 0);
}

TEST(MemTableTest, AddGetNewestVersionWins) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(2, ValueType::kValue, "k", "v2");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("k", kMaxSequenceNumber, &value, &deleted, nullptr));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v2");
}

TEST(MemTableTest, SnapshotVisibility) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(5, ValueType::kValue, "k", "v5");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("k", 3, &value, &deleted, nullptr));
  EXPECT_EQ(value, "v1");  // seq 5 invisible at snapshot 3
}

TEST(MemTableTest, DeletionVisible) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem.Get("k", kMaxSequenceNumber, &value, &deleted, nullptr));
  EXPECT_TRUE(deleted);
}

TEST(MemTableTest, MissingKey) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "a", "v");
  std::string value;
  bool deleted = false;
  EXPECT_FALSE(mem.Get("b", kMaxSequenceNumber, &value, &deleted, nullptr));
}

TEST(MemTableTest, IteratorSortedOrder) {
  MemTable mem;
  Rng rng(42);
  std::set<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    std::string k = rng.NextString(8);
    keys.insert(k);
    mem.Add(i + 1, ValueType::kValue, k, "v");
  }
  auto iter = mem.NewIterator();
  std::string prev;
  size_t count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string uk = ExtractUserKey(iter->key()).ToString();
    if (!prev.empty()) {
      EXPECT_LE(prev, uk);
    }
    prev = uk;
    ++count;
  }
  EXPECT_EQ(count, 500u);  // all entries, duplicates included
}

TEST(MemTableTest, IteratorSeek) {
  MemTable mem;
  for (int i = 0; i < 100; i += 2) {
    char buf[8];
    snprintf(buf, sizeof(buf), "k%03d", i);
    mem.Add(i + 1, ValueType::kValue, buf, "v");
  }
  auto iter = mem.NewIterator();
  iter->Seek(Slice(IKey("k005", kMaxSequenceNumber)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "k006");
}

TEST(BlockTest, BuildAndScan) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    entries.push_back({IKey(buf, 1), "value" + std::to_string(i)});
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  std::string data = builder.Finish();

  BlockReader reader((Slice(data)));
  auto iter = reader.NewIterator();
  size_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(iter->key().ToString(), entries[i].first);
    EXPECT_EQ(iter->value().ToString(), entries[i].second);
  }
  EXPECT_EQ(i, entries.size());
}

TEST(BlockTest, SeekFindsFirstGreaterOrEqual) {
  BlockBuilder builder(4);
  for (int i = 0; i < 100; i += 2) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%04d", i);
    builder.Add(IKey(buf, 1), "v");
  }
  std::string data = builder.Finish();
  BlockReader reader((Slice(data)));
  auto iter = reader.NewIterator();

  iter->Seek(Slice(IKey("key0013", kMaxSequenceNumber)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "key0014");

  iter->Seek(Slice(IKey("key0000", kMaxSequenceNumber)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "key0000");

  iter->Seek(Slice(IKey("key9999", kMaxSequenceNumber)));
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, EmptyAndCorruptBlocksAreSafe) {
  BlockReader empty(Slice("", 0));
  auto it = empty.NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());

  BlockReader garbage(Slice("ab", 2));
  auto it2 = garbage.NewIterator();
  it2->SeekToFirst();
  EXPECT_FALSE(it2->Valid());
}

class SstTest : public ::testing::Test {
 protected:
  SstTest() : hw_(HwParams::PaperDefaults()), storage_(&hw_) {}

  FileMetaData BuildFile(int num_keys, int start = 0, int step = 1) {
    SstBuilder builder(&storage_, SstOptions{});
    for (int i = 0; i < num_keys; ++i) {
      char buf[16];
      snprintf(buf, sizeof(buf), "key%06d", start + i * step);
      builder.Add(IKey(buf, 1), "value" + std::to_string(start + i * step));
    }
    auto meta = builder.Finish();
    EXPECT_TRUE(meta.ok());
    return *meta;
  }

  HwParams hw_;
  VirtualStorage storage_;
};

TEST_F(SstTest, PointLookupHitAndMiss) {
  FileMetaData meta = BuildFile(1000);
  SstReader reader(&storage_, meta);
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(reader.Get(nullptr, nullptr, "key000500", kMaxSequenceNumber,
                         &value, &deleted).ok());
  EXPECT_EQ(value, "value500");
  EXPECT_TRUE(reader.Get(nullptr, nullptr, "nokey", kMaxSequenceNumber,
                         &value, &deleted).IsNotFound());
}

TEST_F(SstTest, FencePointersPruneOutOfRange) {
  FileMetaData meta = BuildFile(100, 1000);
  SstReader reader(&storage_, meta);
  EXPECT_TRUE(reader.OutsideKeyRange("key000001"));
  EXPECT_TRUE(reader.OutsideKeyRange("key999999"));
  EXPECT_FALSE(reader.OutsideKeyRange("key001050"));
}

TEST_F(SstTest, FullScanReturnsAllInOrder) {
  FileMetaData meta = BuildFile(5000);
  SstReader reader(&storage_, meta);
  auto iter = reader.NewIterator(nullptr, nullptr);
  int count = 0;
  std::string prev;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string uk = ExtractUserKey(iter->key()).ToString();
    if (!prev.empty()) {
      EXPECT_LT(prev, uk);
    }
    prev = uk;
    ++count;
  }
  EXPECT_EQ(count, 5000);
  EXPECT_EQ(meta.num_entries, 5000u);
}

TEST_F(SstTest, IteratorSeekMidFile) {
  FileMetaData meta = BuildFile(1000, 0, 2);  // even keys
  SstReader reader(&storage_, meta);
  auto iter = reader.NewIterator(nullptr, nullptr);
  iter->Seek(Slice(IKey("key000101", kMaxSequenceNumber)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "key000102");
}

TEST_F(SstTest, ReadsChargeFlashCosts) {
  FileMetaData meta = BuildFile(2000);
  SstReader reader(&storage_, meta);
  AccessContext ctx(&hw_, Actor::kDevice, IoPath::kInternal);
  auto iter = reader.NewIterator(&ctx, nullptr);
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
  }
  EXPECT_GT(ctx.counters().Units(CostKind::kFlashLoad), 0u);
  EXPECT_GT(ctx.now(), 0.0);
}

TEST_F(SstTest, HostPathCostsMoreThanDevicePath) {
  FileMetaData meta = BuildFile(5000);
  SstReader r1(&storage_, meta);
  SstReader r2(&storage_, meta);
  AccessContext dev(&hw_, Actor::kDevice, IoPath::kInternal);
  AccessContext host(&hw_, Actor::kHost, IoPath::kBlk);
  {
    auto iter = r1.NewIterator(&dev, nullptr);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  {
    auto iter = r2.NewIterator(&host, nullptr);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  // Device-internal flash access is faster than host via BLK stack
  // (flash-only time; CPU costs differ the other way).
  EXPECT_LT(dev.counters().Time(CostKind::kFlashLoad),
            host.counters().Time(CostKind::kFlashLoad));
}

TEST_F(SstTest, BlockCacheAbsorbsRepeatedReads) {
  FileMetaData meta = BuildFile(2000);
  SstReader reader(&storage_, meta);
  BlockCache cache(64 << 20);
  AccessContext ctx(&hw_, Actor::kHost, IoPath::kNative);
  {
    auto iter = reader.NewIterator(&ctx, &cache);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  const auto cold_flash = ctx.counters().Units(CostKind::kFlashLoad);
  {
    auto iter = reader.NewIterator(&ctx, &cache);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  const auto warm_flash = ctx.counters().Units(CostKind::kFlashLoad);
  EXPECT_EQ(cold_flash, warm_flash);  // second scan fully cached
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(SstTest, OversizedEntriesEachGetTheirOwnBlock) {
  // Regression: an entry bigger than the whole block-size target must still
  // be emitted (one-entry block), and it must not drag the preceding or
  // following small entries into a mis-sized block.
  SstOptions opts;
  opts.block_size = 64;
  SstBuilder builder(&storage_, opts);
  const std::string big_value(200, 'x');  // > block_size on its own
  builder.Add(IKey("a_small", 1), "v1");
  builder.Add(IKey("b_big", 1), big_value);
  builder.Add(IKey("c_big", 1), big_value);
  builder.Add(IKey("d_small", 1), "v2");
  auto meta = builder.Finish();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_entries, 4u);

  SstReader reader(&storage_, *meta);
  std::string value;
  bool deleted = false;
  for (const auto& [k, v] :
       std::map<std::string, std::string>{{"a_small", "v1"},
                                          {"b_big", big_value},
                                          {"c_big", big_value},
                                          {"d_small", "v2"}}) {
    ASSERT_TRUE(reader.Get(nullptr, nullptr, k, kMaxSequenceNumber, &value,
                           &deleted)
                    .ok())
        << k;
    EXPECT_EQ(value, v) << k;
    EXPECT_FALSE(deleted);
  }
  auto iter = reader.NewIterator(nullptr, nullptr);
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
  EXPECT_EQ(count, 4);
}

TEST_F(SstTest, FirstAddOversizedStillEmitsOneEntryBlock) {
  SstOptions opts;
  opts.block_size = 64;
  SstBuilder builder(&storage_, opts);
  builder.Add(IKey("only", 1), std::string(500, 'y'));
  auto meta = builder.Finish();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_entries, 1u);
  SstReader reader(&storage_, *meta);
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(reader.Get(nullptr, nullptr, "only", kMaxSequenceNumber, &value,
                         &deleted)
                  .ok());
  EXPECT_EQ(value, std::string(500, 'y'));
}

TEST_F(SstTest, PinnedIndexServesSeeksAfterSingleLoad) {
  FileMetaData meta = BuildFile(2000);
  SstReader reader(&storage_, meta);
  std::string value;
  bool deleted = false;
  for (int i = 0; i < 50; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i * 37);
    ASSERT_TRUE(reader.Get(nullptr, nullptr, buf, kMaxSequenceNumber, &value,
                           &deleted)
                    .ok());
  }
  // The serialized index was decoded exactly once; every Get's index seek
  // was answered from the pinned decoded form.
  EXPECT_EQ(reader.read_stats().index_loads.load(), 1u);
  EXPECT_EQ(reader.read_stats().pinned_index_seeks.load(), 50u);
}

TEST(BlockCacheTest, EvictsLruBeyondCapacity) {
  BlockCache cache(100);
  cache.Insert(1, 0, 60);
  cache.Insert(1, 60, 60);  // evicts (1,0)
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(1, 60));
  EXPECT_LE(cache.used_bytes(), 100u);
}

TEST(BlockCacheTest, LookupRefreshesRecency) {
  BlockCache cache(100);
  cache.Insert(1, 0, 40);
  cache.Insert(1, 40, 40);
  EXPECT_TRUE(cache.Lookup(1, 0));  // refresh
  cache.Insert(1, 80, 40);          // evicts (1,40), not (1,0)
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_FALSE(cache.Lookup(1, 40));
}

TEST(BlockCacheTest, EraseFileDropsAllItsBlocks) {
  BlockCache cache(1000);
  cache.Insert(1, 0, 10);
  cache.Insert(2, 0, 10);
  cache.EraseFile(1);
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(2, 0));
}

TEST_F(SstTest, CorruptFooterRejected) {
  FileMetaData meta = BuildFile(100);
  // Clobber the magic number in a copied file.
  const std::string* contents = storage_.FileContents(meta.file_id);
  ASSERT_NE(contents, nullptr);
  std::string corrupted = *contents;
  corrupted[corrupted.size() - 1] ^= 0x5a;
  FileMetaData bad = meta;
  bad.file_id = storage_.AddFile(std::move(corrupted));
  SstReader reader(&storage_, bad);
  std::string value;
  bool deleted = false;
  Status s = reader.Get(nullptr, nullptr, "key000050", kMaxSequenceNumber,
                        &value, &deleted);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  auto iter = reader.NewIterator(nullptr, nullptr);
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(SstTest, TruncatedFileRejected) {
  FileMetaData meta = BuildFile(100);
  const std::string* contents = storage_.FileContents(meta.file_id);
  FileMetaData bad = meta;
  bad.file_id = storage_.AddFile(contents->substr(0, 16));  // far too short
  SstReader reader(&storage_, bad);
  std::string value;
  bool deleted = false;
  Status s = reader.Get(nullptr, nullptr, "key000050", kMaxSequenceNumber,
                        &value, &deleted);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(SstTest, MissingFileSurfacesNotFound) {
  FileMetaData meta = BuildFile(100);
  storage_.RemoveFile(meta.file_id);
  SstReader reader(&storage_, meta);
  std::string value;
  bool deleted = false;
  Status s = reader.Get(nullptr, nullptr, "key000050", kMaxSequenceNumber,
                        &value, &deleted);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

class DBTest : public ::testing::Test {
 protected:
  DBTest() : hw_(HwParams::PaperDefaults()), storage_(&hw_) {
    DBOptions opts;
    opts.memtable_bytes = 32 << 10;  // small, to force flushes
    opts.l1_target_bytes = 64 << 10;
    db_ = std::make_unique<DB>(&storage_, opts);
    cf_ = db_->CreateColumnFamily("default");
  }

  HwParams hw_;
  VirtualStorage storage_;
  std::unique_ptr<DB> db_;
  ColumnFamilyId cf_ = 0;
};

TEST_F(DBTest, PutGetRoundTrip) {
  ASSERT_TRUE(db_->Put(cf_, "alpha", "1").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions{}, cf_, "alpha", &value).ok());
  EXPECT_EQ(value, "1");
}

TEST_F(DBTest, GetMissingReturnsNotFound) {
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions{}, cf_, "nothing", &value).IsNotFound());
}

TEST_F(DBTest, DeleteHidesKeyAcrossFlush) {
  ASSERT_TRUE(db_->Put(cf_, "k", "v").ok());
  ASSERT_TRUE(db_->Flush(cf_).ok());
  ASSERT_TRUE(db_->Delete(cf_, "k").ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions{}, cf_, "k", &value).IsNotFound());
  ASSERT_TRUE(db_->Flush(cf_).ok());
  EXPECT_TRUE(db_->Get(ReadOptions{}, cf_, "k", &value).IsNotFound());
}

TEST_F(DBTest, ManyKeysSurviveFlushesAndCompactions) {
  std::map<std::string, std::string> model;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    std::string k = "key" + std::to_string(rng.Uniform(5000));
    std::string v = "val" + std::to_string(i);
    model[k] = v;
    ASSERT_TRUE(db_->Put(cf_, k, v).ok());
  }
  ASSERT_TRUE(db_->Flush(cf_).ok());
  EXPECT_GT(db_->stats().flushes, 0u);
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions{}, cf_, k, &got).ok()) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST_F(DBTest, IteratorMatchesModelAfterMixedWorkload) {
  std::map<std::string, std::string> model;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    std::string k = "k" + std::to_string(rng.Uniform(2000));
    if (rng.Bernoulli(0.2)) {
      model.erase(k);
      ASSERT_TRUE(db_->Delete(cf_, k).ok());
    } else {
      std::string v = "v" + std::to_string(i);
      model[k] = v;
      ASSERT_TRUE(db_->Put(cf_, k, v).ok());
    }
  }
  auto iter = db_->NewIterator(ReadOptions{}, cf_);
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(iter->key().ToString(), mit->first);
    EXPECT_EQ(iter->value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

TEST_F(DBTest, IteratorSeekLandsOnLowerBound) {
  for (int i = 0; i < 100; i += 5) {
    char buf[8];
    snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(db_->Put(cf_, buf, "v").ok());
  }
  ASSERT_TRUE(db_->Flush(cf_).ok());
  auto iter = db_->NewIterator(ReadOptions{}, cf_);
  iter->Seek("k012");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k015");
}

TEST_F(DBTest, SnapshotIsolatesLaterWrites) {
  ASSERT_TRUE(db_->Put(cf_, "k", "old").ok());
  SequenceNumber snap = db_->LatestSequence();
  ASSERT_TRUE(db_->Put(cf_, "k", "new").ok());
  ASSERT_TRUE(db_->Put(cf_, "extra", "x").ok());

  ReadOptions opts;
  opts.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(opts, cf_, "k", &value).ok());
  EXPECT_EQ(value, "old");
  EXPECT_TRUE(db_->Get(opts, cf_, "extra", &value).IsNotFound());
}

TEST_F(DBTest, ColumnFamiliesAreIsolated) {
  ColumnFamilyId other = db_->CreateColumnFamily("secondary");
  ASSERT_TRUE(db_->Put(cf_, "k", "main").ok());
  ASSERT_TRUE(db_->Put(other, "k", "idx").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions{}, other, "k", &value).ok());
  EXPECT_EQ(value, "idx");
  ASSERT_TRUE(db_->Get(ReadOptions{}, cf_, "k", &value).ok());
  EXPECT_EQ(value, "main");
}

TEST_F(DBTest, CreateColumnFamilyIsIdempotent) {
  EXPECT_EQ(db_->CreateColumnFamily("x"), db_->CreateColumnFamily("x"));
  auto found = db_->FindColumnFamily("x");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(db_->FindColumnFamily("missing").status().IsNotFound());
}

TEST_F(DBTest, CompactAllReducesToStableShape) {
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        db_->Put(cf_, "key" + std::to_string(i % 4000), "v" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll(cf_).ok());
  const Version& v = db_->GetVersion(cf_);
  EXPECT_TRUE(v.levels[0].empty());  // C1 fully pushed down
  // Non-overlap invariant below C1.
  for (size_t level = 1; level < v.levels.size(); ++level) {
    for (size_t i = 1; i < v.levels[level].size(); ++i) {
      EXPECT_LT(v.levels[level][i - 1].LargestUserKey().compare(
                    v.levels[level][i].SmallestUserKey()),
                0);
    }
  }
  // Data still correct.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions{}, cf_, "key123", &value).ok());
}

TEST_F(DBTest, CfSnapshotCarriesPlacementInfo) {
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(cf_, "key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush(cf_).ok());
  CfSnapshot snap = db_->GetCfSnapshot(cf_);
  EXPECT_EQ(snap.sequence, db_->LatestSequence());
  uint64_t files = 0;
  for (const auto& level : snap.version.levels) files += level.size();
  EXPECT_GT(files, 0u);
  // Each file has physical placement in storage.
  for (const auto& level : snap.version.levels) {
    for (const auto& f : level) {
      auto placement = storage_.Placement(f.file_id);
      ASSERT_TRUE(placement.ok());
      EXPECT_GT(placement->num_pages, 0u);
    }
  }
}

TEST_F(DBTest, SharedStateSnapshotSeesUnflushedWrites) {
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db_->Put(cf_, "key" + std::to_string(i), "cold").ok());
  }
  ASSERT_TRUE(db_->Flush(cf_).ok());
  // Hot, unflushed update lives only in C0.
  ASSERT_TRUE(db_->Put(cf_, "key42", "hot").ok());

  CfSnapshot snap = db_->GetCfSnapshot(cf_);
  auto internal = NewSnapshotInternalIterator(
      snap, nullptr, nullptr, [&](const FileMetaData& meta) {
        return db_->GetReader(meta.file_id, meta);
      });
  auto iter = NewUserKeyIterator(std::move(internal), snap.sequence, nullptr);
  iter->Seek("key42");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "key42");
  EXPECT_EQ(iter->value().ToString(), "hot");  // update-aware snapshot
}

TEST(MergeIteratorTest, InterleavesSortedChildren) {
  MemTable a, b;
  for (int i = 0; i < 100; i += 2) {
    a.Add(i + 1, ValueType::kValue, "k" + std::to_string(1000 + i), "a");
  }
  for (int i = 1; i < 100; i += 2) {
    b.Add(i + 1000, ValueType::kValue, "k" + std::to_string(1000 + i), "b");
  }
  std::vector<IteratorPtr> children;
  children.push_back(a.NewIterator());
  children.push_back(b.NewIterator());
  MergingIterator merged(std::move(children), nullptr);
  int count = 0;
  std::string prev;
  for (merged.SeekToFirst(); merged.Valid(); merged.Next()) {
    std::string uk = ExtractUserKey(merged.key()).ToString();
    if (!prev.empty()) {
      EXPECT_LT(prev, uk);
    }
    prev = uk;
    ++count;
  }
  EXPECT_EQ(count, 100);
}

// Property sweep: DB contents match a std::map model across block sizes and
// value sizes.
struct DbParam {
  uint32_t block_size;
  int value_len;
};

class DBPropertyTest : public ::testing::TestWithParam<DbParam> {};

TEST_P(DBPropertyTest, MatchesModel) {
  HwParams hw = HwParams::PaperDefaults();
  VirtualStorage storage(&hw);
  DBOptions opts;
  opts.memtable_bytes = 16 << 10;
  opts.l1_target_bytes = 32 << 10;
  opts.sst.block_size = GetParam().block_size;
  DB db(&storage, opts);
  auto cf = db.CreateColumnFamily("t");

  std::map<std::string, std::string> model;
  Rng rng(GetParam().block_size * 131 + GetParam().value_len);
  for (int i = 0; i < 5000; ++i) {
    std::string k = "key" + std::to_string(rng.Uniform(1500));
    if (rng.Bernoulli(0.15)) {
      model.erase(k);
      ASSERT_TRUE(db.Delete(cf, k).ok());
    } else {
      std::string v = rng.NextString(GetParam().value_len);
      model[k] = v;
      ASSERT_TRUE(db.Put(cf, k, v).ok());
    }
  }
  // Half the time, flush at the end too.
  if (rng.Bernoulli(0.5)) {
    ASSERT_TRUE(db.Flush(cf).ok());
  }

  // Point lookups.
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(db.Get(ReadOptions{}, cf, k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  // Full scan matches model exactly.
  auto iter = db.NewIterator(ReadOptions{}, cf);
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(iter->key().ToString(), mit->first);
    EXPECT_EQ(iter->value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    BlockAndValueSizes, DBPropertyTest,
    ::testing::Values(DbParam{512, 16}, DbParam{1024, 64}, DbParam{4096, 16},
                      DbParam{4096, 200}, DbParam{16384, 64},
                      DbParam{65536, 500}));

}  // namespace
}  // namespace hybridndp::lsm
