// Tests for the hybridNDP planner (cost model, split points) and the
// cooperative executor: every strategy must produce identical results, and
// the simulated timelines must respect the paper's structural properties
// (device slower at compute, waits accounted, slots bound run-ahead).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "lsm/db.h"
#include "ndp/device_executor.h"
#include "nkv/ndp_command.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp::hybrid {
namespace {

using exec::CmpOp;
using exec::Expr;
using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using rel::RowView;
using sim::HwParams;

/// Shared fixture: a small star schema (orders -> customer, product).
class HybridTest : public ::testing::Test {
 protected:
  HybridTest()
      : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
        catalog_(&db_) {
    rel::TableDef cust;
    cust.name = "customer";
    cust.schema = rel::Schema(
        {IntCol("id"), CharCol("name", 16), CharCol("city", 12)});
    cust.pk_col = 0;
    cust_ = catalog_.CreateTable(std::move(cust));

    rel::TableDef prod;
    prod.name = "product";
    prod.schema =
        rel::Schema({IntCol("id"), IntCol("price"), CharCol("category", 12)});
    prod.pk_col = 0;
    prod_ = catalog_.CreateTable(std::move(prod));

    rel::TableDef orders;
    orders.name = "orders";
    orders.schema = rel::Schema({IntCol("id"), IntCol("customer_id"),
                                 IntCol("product_id"), IntCol("quantity")});
    orders.pk_col = 0;
    orders.indexes.push_back({"customer_id", 1});
    orders.indexes.push_back({"product_id", 2});
    orders_ = catalog_.CreateTable(std::move(orders));

    Rng rng(7);
    for (int i = 1; i <= 200; ++i) {
      RowBuilder rb(&cust_->schema());
      rb.SetInt(0, i)
          .SetString(1, "cust" + std::to_string(i))
          .SetString(2, i % 5 == 0 ? "berlin" : "city" + std::to_string(i % 9));
      EXPECT_TRUE(cust_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 100; ++i) {
      RowBuilder rb(&prod_->schema());
      rb.SetInt(0, i)
          .SetInt(1, 10 + (i * 13) % 500)
          .SetString(2, i % 4 == 0 ? "book" : "tool");
      EXPECT_TRUE(prod_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= 5000; ++i) {
      RowBuilder rb(&orders_->schema());
      rb.SetInt(0, i)
          .SetInt(1, static_cast<int32_t>(rng.Zipf(200, 0.5) + 1))
          .SetInt(2, static_cast<int32_t>(rng.Zipf(100, 0.5) + 1))
          .SetInt(3, static_cast<int32_t>(1 + rng.Uniform(20)));
      EXPECT_TRUE(orders_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
    for (auto* t : catalog_.tables()) {
      EXPECT_TRUE(t->AnalyzeStats().ok());
    }
  }

  static HwParams MakeHw() {
    HwParams hw = HwParams::PaperDefaults();
    // Scale device memory knobs down to the test data volume.
    hw.mem.device_selection_bytes = 64 << 10;
    hw.mem.device_join_bytes = 32 << 10;
    hw.mem.device_ndp_budget_bytes = 4 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }

  PlannerConfig MakePlannerConfig() {
    PlannerConfig cfg;
    cfg.buffers.selection_buffer_bytes = 64 << 10;
    cfg.buffers.join_buffer_bytes = 32 << 10;
    cfg.buffers.shared_slot_bytes = 4 << 10;
    cfg.buffers.shared_slots = 4;
    return cfg;
  }

  /// Three-table join query with selections on two tables.
  Query MakeQuery(int min_price = 400) {
    Query q;
    q.name = "orders_join";
    q.tables.push_back({"orders", "o", nullptr});
    q.tables.push_back(
        {"customer", "c", Expr::CmpStr("c.city", CmpOp::kEq, "berlin")});
    q.tables.push_back(
        {"product", "p", Expr::CmpInt("p.price", CmpOp::kGe, min_price)});
    q.joins.push_back({"o", "customer_id", "c", "id"});
    q.joins.push_back({"o", "product_id", "p", "id"});
    q.select_columns = {"o.id", "c.name", "p.price"};
    return q;
  }

  /// Canonical multiset of result rows for comparison across strategies.
  static std::multiset<std::string> Canon(const RunResult& r) {
    return std::multiset<std::string>(r.rows.begin(), r.rows.end());
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  rel::Table* cust_ = nullptr;
  rel::Table* prod_ = nullptr;
  rel::Table* orders_ = nullptr;
};

TEST_F(HybridTest, SelectivityEstimationTracksReality) {
  auto pred = Expr::CmpStr("c.city", CmpOp::kEq, "berlin");
  const double sel = EstimateSelectivity(pred.get(), cust_->stats(),
                                         cust_->schema(), "c");
  // True selectivity is 40/200 = 0.2; the NDV estimator should be in range.
  EXPECT_GT(sel, 0.02);
  EXPECT_LT(sel, 0.6);

  auto range = Expr::Between("p.price", 10, 509);
  const double rsel = EstimateSelectivity(range.get(), prod_->stats(),
                                          prod_->schema(), "p");
  EXPECT_GT(rsel, 0.9);  // covers the whole domain
}

TEST_F(HybridTest, PlannerBuildsConnectedLeftDeepOrder) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_tables(), 3);
  // Every non-first table must join the prefix with keys or an index edge.
  for (size_t i = 1; i < plan->order.size(); ++i) {
    const auto& pt = plan->order[i];
    EXPECT_TRUE(!pt.keys.empty() || !pt.outer_key_col.empty())
        << "position " << i;
  }
  // Cumulative device costs are monotone (Fig. 5).
  for (size_t i = 1; i < plan->order.size(); ++i) {
    EXPECT_GE(plan->order[i].cum_dev, plan->order[i - 1].cum_dev);
  }
  EXPECT_GT(plan->c_target, 0);
  EXPECT_FALSE(plan->Explain().empty());
}

TEST_F(HybridTest, JoinAlgorithmChoiceIsCostBased) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  // All tables here are a handful of flash pages: streaming them (BNLJ)
  // beats per-row random index lookups, and the cost model must say so.
  // Every join still records its equi-keys for the hash path.
  for (size_t i = 1; i < plan->order.size(); ++i) {
    EXPECT_EQ(plan->order[i].algo, nkv::JoinAlgo::kBNLJ) << i;
    EXPECT_FALSE(plan->order[i].keys.empty()) << i;
    // The BNLJI candidacy was detected (pk join columns).
    EXPECT_FALSE(plan->order[i].outer_key_col.empty()) << i;
  }
}

// BNLJ-vs-BNLJI crossover: index lookups win once streaming the inner table
// costs more than the expected random misses (the regime the paper's Exp. 5
// exploits on-device). Built with a large inner table and a tiny outer.
TEST(JoinAlgoCrossoverTest, IndexJoinWinsForLargeInnerTables) {
  HwParams hw = HwParams::PaperDefaults();
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 4 << 20;
  lsm::VirtualStorage storage(&hw);
  lsm::DB db(&storage, db_opts);
  rel::Catalog catalog(&db);

  rel::TableDef tiny;
  tiny.name = "tiny";
  tiny.schema = rel::Schema({IntCol("id"), IntCol("big_ref")});
  tiny.pk_col = 0;
  rel::Table* tiny_t = catalog.CreateTable(std::move(tiny));

  rel::TableDef big;
  big.name = "big";
  big.schema = rel::Schema({IntCol("id"), IntCol("grp"), CharCol("pad", 64)});
  big.pk_col = 0;
  big.indexes.push_back({"grp", 1});
  rel::Table* big_t = catalog.CreateTable(std::move(big));

  for (int i = 1; i <= 10; ++i) {
    RowBuilder rb(&tiny_t->schema());
    rb.SetInt(0, i).SetInt(1, i * 1000);
    ASSERT_TRUE(tiny_t->Insert(rb.row()).ok());
  }
  Rng rng(3);
  for (int i = 1; i <= 250000; ++i) {
    RowBuilder rb(&big_t->schema());
    rb.SetInt(0, i).SetInt(1, i % 50000).SetString(2, rng.NextString(20));
    ASSERT_TRUE(big_t->Insert(rb.row()).ok());
  }
  ASSERT_TRUE(db.FlushAll().ok());
  ASSERT_TRUE(tiny_t->AnalyzeStats().ok());
  ASSERT_TRUE(big_t->AnalyzeStats().ok());

  Query q;
  q.name = "crossover";
  q.tables.push_back({"tiny", "s", nullptr});
  q.tables.push_back({"big", "b", nullptr});
  q.joins.push_back({"s", "big_ref", "b", "grp"});
  q.select_columns = {"s.id", "b.id"};

  Planner planner(&catalog, &hw, PlannerConfig{});
  auto plan = planner.PlanQuery(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->order.size(), 2u);
  EXPECT_EQ(plan->order[0].table->name(), "tiny");  // smallest first
  EXPECT_EQ(plan->order[1].algo, nkv::JoinAlgo::kBNLJI)
      << "a few dozen seeks must beat streaming a ~1000-page table\n"
      << plan->Explain();
}

TEST_F(HybridTest, AllStrategiesProduceIdenticalResults) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());

  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  std::multiset<std::string> reference;
  bool have_reference = false;
  for (const auto& choice : HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache cache(64 << 20);
    auto result = executor.Run(*plan, choice, &cache);
    ASSERT_TRUE(result.ok()) << choice.ToString() << ": "
                             << result.status().ToString();
    EXPECT_GT(result->total_ns, 0) << choice.ToString();
    if (!have_reference) {
      reference = Canon(*result);
      have_reference = true;
      EXPECT_GT(reference.size(), 0u);
    } else {
      EXPECT_EQ(Canon(*result), reference) << choice.ToString();
    }
  }
}

TEST_F(HybridTest, AggregationQueryConsistentAcrossStrategies) {
  Query q = MakeQuery();
  q.select_columns.clear();
  q.has_agg = true;
  q.group_cols = {"p.category"};
  q.aggs = {{exec::AggFn::kCount, "", "cnt"},
            {exec::AggFn::kSum, "o.quantity", "total_qty"},
            {exec::AggFn::kMin, "c.name", "min_name"}};
  // Aggregation needs these columns available upstream.
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(q);
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());

  std::multiset<std::string> reference;
  bool have_reference = false;
  for (const auto& choice : HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache cache(64 << 20);
    auto result = executor.Run(*plan, choice, &cache);
    ASSERT_TRUE(result.ok()) << choice.ToString();
    if (!have_reference) {
      reference = Canon(*result);
      have_reference = true;
    } else {
      EXPECT_EQ(Canon(*result), reference) << choice.ToString();
    }
  }
}

TEST_F(HybridTest, BlkStackIsSlowerThanNative) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  lsm::BlockCache c1(64 << 20), c2(64 << 20);
  auto blk = executor.Run(*plan, {Strategy::kHostBlk, 0}, &c1);
  auto native = executor.Run(*plan, {Strategy::kHostNative, 0}, &c2);
  ASSERT_TRUE(blk.ok());
  ASSERT_TRUE(native.ok());
  EXPECT_GT(blk->total_ns, native->total_ns);
}

TEST_F(HybridTest, HybridStagesAreAccounted) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  lsm::BlockCache cache(64 << 20);
  auto result = executor.Run(*plan, {Strategy::kHybrid, 1}, &cache);
  ASSERT_TRUE(result.ok());
  const StageTimes& st = result->host_stages;
  EXPECT_GT(st.ndp_setup, 0);
  EXPECT_GT(st.initial_wait, 0);       // host waits for the first batch
  EXPECT_GT(st.result_transfer, 0);
  EXPECT_GT(st.processing, 0);
  EXPECT_GT(result->device_busy_ns, 0);
  EXPECT_GT(result->num_batches, 0);
  EXPECT_FALSE(st.ToString().empty());
  // Device Table-4 breakdown carries flash + compare work.
  EXPECT_GT(result->device_counters.Units(sim::CostKind::kFlashLoad), 0u);
}

TEST_F(HybridTest, DeviceComputeSlowerHostTransfersMore) {
  // Structural sanity of the cost asymmetry: full NDP does more device
  // compute-time per record; host-only moves more bytes over the PCIe path.
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  lsm::BlockCache c1(64 << 20), c2(64 << 20);
  auto ndp = executor.Run(*plan, {Strategy::kFullNdp, 0}, &c1);
  auto host = executor.Run(*plan, {Strategy::kHostNative, 0}, &c2);
  ASSERT_TRUE(ndp.ok());
  ASSERT_TRUE(host.ok());
  // NDP ships only the final (small) result.
  EXPECT_LT(ndp->transferred_bytes,
            host->host_counters.Units(sim::CostKind::kFlashLoad));
}

TEST_F(HybridTest, SharedSlotsBoundDeviceRunAhead) {
  // With one slot the device must stall more than with many slots.
  PlannerConfig few = MakePlannerConfig();
  few.buffers.shared_slots = 1;
  few.buffers.shared_slot_bytes = 512;
  PlannerConfig many = MakePlannerConfig();
  many.buffers.shared_slots = 64;
  many.buffers.shared_slot_bytes = 512;

  Planner planner(&catalog_, &hw_, few);
  auto plan = planner.PlanQuery(MakeQuery(0));  // unselective: many rows
  ASSERT_TRUE(plan.ok());

  HybridExecutor exec_few(&catalog_, &storage_, &hw_, few);
  HybridExecutor exec_many(&catalog_, &storage_, &hw_, many);
  lsm::BlockCache c1(64 << 20), c2(64 << 20);
  auto r_few = exec_few.Run(*plan, {Strategy::kHybrid, 1}, &c1);
  auto r_many = exec_many.Run(*plan, {Strategy::kHybrid, 1}, &c2);
  ASSERT_TRUE(r_few.ok());
  ASSERT_TRUE(r_many.ok());
  EXPECT_GE(r_few->device_stall_ns, r_many->device_stall_ns);
  EXPECT_EQ(Canon(*r_few), Canon(*r_many));
}

TEST_F(HybridTest, DeviceMemoryBudgetRejectsOversizedPipelines) {
  HwParams tiny = hw_;
  tiny.mem.device_ndp_budget_bytes = 1 << 10;  // 1 KiB: nothing fits
  Planner planner(&catalog_, &tiny, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &tiny, MakePlannerConfig());
  auto result = executor.Run(*plan, {Strategy::kFullNdp, 0}, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(HybridTest, PointerCacheKicksInBeyondTwoTables) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  lsm::BlockCache cache(64 << 20);
  auto full = executor.Run(*plan, {Strategy::kFullNdp, 0}, &cache);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->pointer_cache);  // 3 tables > 2 (paper Sect. 4.2)
  auto h1 = executor.Run(*plan, {Strategy::kHybrid, 1}, &cache);
  ASSERT_TRUE(h1.ok());
  EXPECT_FALSE(h1->pointer_cache);  // 2 tables on-device -> row cache
}

TEST_F(HybridTest, RecommendedChoiceIsExecutable) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  lsm::BlockCache cache(64 << 20);
  auto result = executor.Run(*plan, plan->recommended, &cache);
  ASSERT_TRUE(result.ok()) << plan->recommended.ToString();
  EXPECT_GT(result->total_ns, 0);
}

TEST_F(HybridTest, SplitDistanceSelectsFeasibleSplit) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->recommended.split_joins, 0);
  EXPECT_LE(plan->recommended.split_joins, plan->max_feasible_split);
}

// ----------------------- BatchSchedule accounting regressions

TEST(BatchScheduleTest, RewindReplayDoesNotDoubleChargeStages) {
  HwParams hw = HwParams::PaperDefaults();
  std::vector<ndp::DeviceBatch> batches;
  for (int j = 0; j < 3; ++j) {
    batches.push_back({/*stream=*/0, /*rows=*/10, /*bytes=*/1000,
                       /*work_ns=*/50'000.0});
  }
  BatchSchedule sched(batches, /*shared_slots=*/4, &hw, /*start_time=*/0,
                      /*eager=*/false);
  StageTimes st;
  SimNanos now = 0;
  std::vector<SimNanos> arrivals;
  for (size_t j = 0; j < batches.size(); ++j) {
    now = sched.Fetch(j, now, &st);
    arrivals.push_back(now);
  }
  const StageTimes first = st;
  EXPECT_GT(first.initial_wait, 0);
  EXPECT_GT(first.result_transfer, 0);

  // Replay from host memory (join-inner Rewind): no new wait/transfer, and
  // the host clock is untouched.
  for (size_t j = 0; j < batches.size(); ++j) {
    EXPECT_EQ(sched.Fetch(j, now, &st), now) << "batch " << j;
  }
  EXPECT_EQ(st.initial_wait, first.initial_wait);
  EXPECT_EQ(st.later_waits, first.later_waits);
  EXPECT_EQ(st.result_transfer, first.result_transfer);

  // A rewound consumer must never observe a batch before it first arrived,
  // even if it presents a stale clock.
  for (size_t j = 0; j < batches.size(); ++j) {
    EXPECT_EQ(sched.Fetch(j, /*host_now=*/0, &st), arrivals[j])
        << "batch " << j;
  }
  EXPECT_EQ(st.initial_wait, first.initial_wait);
  EXPECT_EQ(st.later_waits, first.later_waits);
  EXPECT_EQ(st.result_transfer, first.result_transfer);
}

TEST(BatchScheduleTest, SingleSlotStallsDeviceEagerDoesNot) {
  HwParams hw = HwParams::PaperDefaults();
  std::vector<ndp::DeviceBatch> batches;
  for (int j = 0; j < 4; ++j) {
    batches.push_back({0, 10, 1000, /*work_ns=*/100'000.0});
  }
  BatchSchedule strict(batches, /*shared_slots=*/1, &hw, 0, /*eager=*/false);
  BatchSchedule eager(batches, /*shared_slots=*/1, &hw, 0, /*eager=*/true);

  // A slow host fetches each batch 1 ms apart: with one shared slot the
  // device cannot start batch j+1 until batch j left the buffer.
  StageTimes st1, st2;
  for (size_t j = 0; j < batches.size(); ++j) {
    strict.Fetch(j, (j + 1) * 1'000'000.0, &st1);
    eager.Fetch(j, (j + 1) * 1'000'000.0, &st2);
  }
  EXPECT_GT(strict.device_stall(), 0);
  EXPECT_EQ(eager.device_stall(), 0);
  EXPECT_GT(strict.device_finish(), eager.device_finish());
  // Eager (H0 leaf shipping) finishes back-to-back: start + sum(work).
  EXPECT_DOUBLE_EQ(eager.device_finish(), 400'000.0);
}

TEST(BatchScheduleTest, EmptyBatchListFinishesAtStart) {
  HwParams hw = HwParams::PaperDefaults();
  const SimNanos start = 121'000.0;
  BatchSchedule sched({}, /*shared_slots=*/4, &hw, start, /*eager=*/false);
  EXPECT_EQ(sched.num_batches(), 0u);
  EXPECT_DOUBLE_EQ(sched.device_finish(), start);
  EXPECT_EQ(sched.device_stall(), 0);
  // Out-of-range fetches are no-ops on the clock and the stages.
  StageTimes st;
  EXPECT_DOUBLE_EQ(sched.Fetch(0, 500'000.0, &st), 500'000.0);
  EXPECT_EQ(st.initial_wait, 0);
  EXPECT_EQ(st.result_transfer, 0);
}

// --------------------------------- simulated-timeline tracing

TEST_F(HybridTest, TraceStageSpansTileHybridTimeline) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  obs::TraceRecorder rec;
  lsm::BlockCache cache(64 << 20);
  auto r = executor.Run(*plan, {Strategy::kHybrid, 1}, &cache, &rec);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->trace_host_track, 0);
  ASSERT_GE(r->trace_device_track, 0);

  const StageTimes& st = r->host_stages;
  auto near = [](SimNanos got, SimNanos want) {
    EXPECT_NEAR(got, want, 1e-6 * std::max(1.0, std::abs(want)));
  };
  const SimNanos setup = rec.CategoryTotal(r->trace_host_track, "setup");
  const SimNanos wait = rec.CategoryTotal(r->trace_host_track, "wait");
  const SimNanos transfer = rec.CategoryTotal(r->trace_host_track, "transfer");
  const SimNanos processing =
      rec.CategoryTotal(r->trace_host_track, "processing");
  near(setup, st.ndp_setup);
  near(wait, st.initial_wait + st.later_waits);
  near(transfer, st.result_transfer);
  near(processing, st.processing);
  // The four Table-4 categories tile [0, total_ns] exactly.
  near(setup + wait + transfer + processing, r->total_ns);
  near(st.total(), r->total_ns);

  // Device batch-production spans cover the produced batches' work.
  const SimNanos produce =
      rec.CategoryTotal(r->trace_device_track, "produce");
  EXPECT_GT(produce, 0);
  EXPECT_LE(produce, r->device_busy_ns * (1 + 1e-9));
}

TEST_F(HybridTest, TraceHostOnlyRunIsAllProcessing) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  obs::TraceRecorder rec;
  lsm::BlockCache cache(64 << 20);
  auto r = executor.Run(*plan, {Strategy::kHostNative, 0}, &cache, &rec);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->trace_host_track, 0);
  EXPECT_EQ(r->trace_device_track, -1);
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(r->trace_host_track, "processing"),
                   r->total_ns);
  // Per-operator row gauges and host-cache tallies were exported.
  const obs::MetricsRegistry* m = rec.metrics();
  EXPECT_GT(m->CounterValue("NATIVE.op_rows.0 Project(3 cols)"), 0u);
  EXPECT_GT(m->num_counters(), 0u);
}

TEST_F(HybridTest, TracingDoesNotPerturbSimulatedMetrics) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(MakeQuery());
  ASSERT_TRUE(plan.ok());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  for (const auto& choice : HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache c1(64 << 20), c2(64 << 20);
    obs::TraceRecorder rec;
    auto plain = executor.Run(*plan, choice, &c1, /*rec=*/nullptr);
    auto traced = executor.Run(*plan, choice, &c2, &rec);
    ASSERT_TRUE(plain.ok()) << choice.ToString();
    ASSERT_TRUE(traced.ok()) << choice.ToString();
    SCOPED_TRACE(choice.ToString());
    EXPECT_EQ(plain->rows, traced->rows);
    EXPECT_EQ(plain->total_ns, traced->total_ns);  // bit-identical
    EXPECT_EQ(plain->host_counters.units, traced->host_counters.units);
    EXPECT_EQ(plain->host_counters.time_ps, traced->host_counters.time_ps);
    EXPECT_EQ(plain->device_counters.units, traced->device_counters.units);
    EXPECT_EQ(plain->device_stall_ns, traced->device_stall_ns);
    EXPECT_EQ(plain->trace_host_track, -1);
    EXPECT_GT(rec.num_spans(), 0u);
  }
}

}  // namespace
}  // namespace hybridndp::hybrid
