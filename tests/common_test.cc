// Unit tests for src/common: status, slice, coding, hash, bloom, arena, rng.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/arena.h"
#include "common/bloom.h"
#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace hybridndp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::IOError("y").code(), Code::kIOError);
  EXPECT_EQ(Status::Aborted().code(), Code::kAborted);
  EXPECT_EQ(Status::Internal().code(), Code::kInternal);
  EXPECT_EQ(Status::NotSupported().code(), Code::kNotSupported);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, EqualityAndPrefix) {
  Slice s("hello world");
  EXPECT_TRUE(s.starts_with("hello"));
  EXPECT_FALSE(s.starts_with("world"));
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 12345);
  PutFixed32(&buf, 0xffffffffu);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 12345u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), 0xffffffffu);
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1 << 20, (1ull << 40) + 7,
                             ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice input(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&input, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 1ull << 21, 1ull << 63}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(CodingTest, Varint32RejectsTruncated) {
  std::string buf;
  PutVarint32(&buf, 1 << 20);
  Slice truncated(buf.data(), buf.size() - 1);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&truncated, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "hello");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, "world");
  Slice input(buf), out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "world");
}

TEST(CodingTest, OrderedInt32PreservesOrder) {
  const int32_t values[] = {INT32_MIN, -100, -1, 0, 1, 42, INT32_MAX};
  std::string prev;
  for (int32_t v : values) {
    std::string cur;
    PutOrderedInt32(&cur, v);
    ASSERT_EQ(cur.size(), 4u);
    EXPECT_EQ(GetOrderedInt32(cur.data()), v);
    if (!prev.empty()) {
      EXPECT_LT(Slice(prev).compare(Slice(cur)), 0)
          << "ordering broken at " << v;
    }
    prev = cur;
  }
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
}

TEST(HashTest, CoversAllTailLengths) {
  std::set<uint64_t> seen;
  std::string s = "0123456789abcdef0123";
  for (size_t n = 0; n <= s.size(); ++n) {
    seen.insert(Hash64(s.data(), n));
  }
  EXPECT_EQ(seen.size(), s.size() + 1);  // no trivial collisions
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) builder.AddKey(k);
  std::string data = builder.Finish();
  BloomFilter filter((Slice(data)));
  for (const auto& k : keys) {
    EXPECT_TRUE(filter.MayContain(k)) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) builder.AddKey("key" + std::to_string(i));
  std::string data = builder.Finish();
  BloomFilter filter((Slice(data)));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (filter.MayContain("other" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(fp, 300);  // ~1% expected at 10 bits/key; allow 3%
}

TEST(BloomTest, CorruptFilterFailsOpen) {
  BloomFilter filter(Slice("x"));  // too short
  EXPECT_TRUE(filter.MayContain("anything"));
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<char*> ptrs;
  for (int i = 1; i <= 200; ++i) {
    char* p = arena.Allocate(i);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(void*), 0u);
    memset(p, i & 0xff, i);  // would crash/corrupt if overlapping
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena;
  char* small = arena.Allocate(8);
  char* big = arena.Allocate(100000);
  char* small2 = arena.Allocate(8);
  memset(big, 0xab, 100000);
  EXPECT_NE(small, big);
  EXPECT_NE(small2, big);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(7);
  int low = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Zipf(1000, 0.9) < 100) ++low;  // first decile of ranks
  }
  // Under uniform we would expect ~10%; zipf(0.9) must be far above that.
  EXPECT_GT(low, kSamples / 4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace hybridndp
