// Property tests: randomized select-project-join-aggregate queries are
// executed under EVERY strategy (BLK, NATIVE, H0..Hk, full NDP) and checked
// against a brute-force in-memory reference evaluator. This pins down the
// end-to-end correctness of the planner, both executors, the cooperative
// plumbing, and the device snapshot path in one sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "lsm/db.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp {
namespace {

using exec::CmpOp;
using exec::Expr;
using hybrid::ExecChoice;
using hybrid::Query;
using hybrid::Strategy;
using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using rel::RowView;
using sim::HwParams;

/// In-memory copy of the generated data for the reference evaluator.
struct RefData {
  // fact(id, a_ref, b_ref, v, tag) ; dim_a(id, grade, label) ; dim_b(id, w)
  struct FactRow {
    int id, a_ref, b_ref, v;
    std::string tag;
  };
  struct ARow {
    int id, grade;
    std::string label;
  };
  struct BRow {
    int id, w;
  };
  std::vector<FactRow> fact;
  std::vector<ARow> dim_a;
  std::vector<BRow> dim_b;
};

class PropertyTest : public ::testing::TestWithParam<int> {
 protected:
  PropertyTest()
      : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
        catalog_(&db_) {
    rel::TableDef fact;
    fact.name = "fact";
    fact.schema = rel::Schema({IntCol("id"), IntCol("a_ref"), IntCol("b_ref"),
                               IntCol("v"), CharCol("tag", 8)});
    fact.pk_col = 0;
    fact.indexes.push_back({"a_ref", 1});
    fact.indexes.push_back({"b_ref", 2});
    fact_ = catalog_.CreateTable(std::move(fact));

    rel::TableDef dim_a;
    dim_a.name = "dim_a";
    dim_a.schema =
        rel::Schema({IntCol("id"), IntCol("grade"), CharCol("label", 8)});
    dim_a.pk_col = 0;
    dim_a_ = catalog_.CreateTable(std::move(dim_a));

    rel::TableDef dim_b;
    dim_b.name = "dim_b";
    dim_b.schema = rel::Schema({IntCol("id"), IntCol("w")});
    dim_b.pk_col = 0;
    dim_b_ = catalog_.CreateTable(std::move(dim_b));

    Rng rng(GetParam() * 7919 + 13);
    const int n_a = 40 + static_cast<int>(rng.Uniform(60));
    const int n_b = 10 + static_cast<int>(rng.Uniform(30));
    const int n_fact = 1500 + static_cast<int>(rng.Uniform(2500));

    for (int i = 1; i <= n_a; ++i) {
      RefData::ARow row{i, static_cast<int>(rng.Uniform(5)),
                        "l" + std::to_string(rng.Uniform(7))};
      ref_.dim_a.push_back(row);
      RowBuilder rb(&dim_a_->schema());
      rb.SetInt(0, row.id).SetInt(1, row.grade).SetString(2, row.label);
      EXPECT_TRUE(dim_a_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= n_b; ++i) {
      RefData::BRow row{i, static_cast<int>(rng.Uniform(1000))};
      ref_.dim_b.push_back(row);
      RowBuilder rb(&dim_b_->schema());
      rb.SetInt(0, row.id).SetInt(1, row.w);
      EXPECT_TRUE(dim_b_->Insert(rb.row()).ok());
    }
    for (int i = 1; i <= n_fact; ++i) {
      RefData::FactRow row{i,
                           1 + static_cast<int>(rng.Zipf(n_a, 0.4)),
                           1 + static_cast<int>(rng.Uniform(n_b)),
                           static_cast<int>(rng.Uniform(100)),
                           rng.Bernoulli(0.3) ? "hot" : "cold"};
      ref_.fact.push_back(row);
      RowBuilder rb(&fact_->schema());
      rb.SetInt(0, row.id)
          .SetInt(1, row.a_ref)
          .SetInt(2, row.b_ref)
          .SetInt(3, row.v)
          .SetString(4, row.tag);
      EXPECT_TRUE(fact_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
    for (auto* t : catalog_.tables()) EXPECT_TRUE(t->AnalyzeStats().ok());
  }

  static HwParams MakeHw() {
    HwParams hw = HwParams::PaperDefaults();
    hw.mem.device_ndp_budget_bytes = 2 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }
  hybrid::PlannerConfig MakePlannerConfig() {
    hybrid::PlannerConfig cfg;
    cfg.buffers.selection_buffer_bytes = 48 << 10;
    cfg.buffers.join_buffer_bytes = 16 << 10;
    cfg.buffers.shared_slot_bytes = 4 << 10;
    cfg.buffers.shared_slots = 4;
    return cfg;
  }

  /// Randomized query: fact joins one or both dimensions, random predicates,
  /// COUNT + SUM(v) + MIN(a.label) aggregate (deterministic per seed).
  Query MakeRandomQuery(Rng* rng, bool* uses_b) {
    Query q;
    q.name = "prop";
    const int v_cut = static_cast<int>(rng->Uniform(100));
    const int grade_cut = static_cast<int>(rng->Uniform(5));
    Expr::Ptr fact_pred = nullptr;
    if (rng->Bernoulli(0.7)) {
      fact_pred = Expr::CmpInt("f.v", CmpOp::kGe, v_cut);
      if (rng->Bernoulli(0.4)) {
        fact_pred = Expr::And(
            {fact_pred, Expr::CmpStr("f.tag", CmpOp::kEq, "hot")});
      }
    }
    q.tables.push_back({"fact", "f", fact_pred});
    q.tables.push_back(
        {"dim_a", "a", Expr::CmpInt("a.grade", CmpOp::kLe, grade_cut)});
    q.joins.push_back({"f", "a_ref", "a", "id"});
    *uses_b = rng->Bernoulli(0.6);
    if (*uses_b) {
      q.tables.push_back({"dim_b", "b", nullptr});
      q.joins.push_back({"f", "b_ref", "b", "id"});
    }
    q.has_agg = true;
    q.aggs = {{exec::AggFn::kCount, "", "cnt"},
              {exec::AggFn::kSum, "f.v", "sum_v"},
              {exec::AggFn::kMin, "a.label", "min_label"}};
    params_ = {v_cut, grade_cut, fact_pred != nullptr,
               fact_pred != nullptr && fact_pred->kind == exec::ExprKind::kAnd};
    return q;
  }

  struct QueryParams {
    int v_cut = 0;
    int grade_cut = 0;
    bool has_fact_pred = false;
    bool has_tag_pred = false;
  };

  /// Brute-force reference: returns (count, sum_v, min_label).
  std::tuple<int64_t, int64_t, std::string> Reference(bool uses_b) {
    int64_t count = 0, sum = 0;
    std::string min_label;
    std::map<int, const RefData::ARow*> a_by_id;
    for (const auto& a : ref_.dim_a) a_by_id[a.id] = &a;
    std::set<int> b_ids;
    for (const auto& b : ref_.dim_b) b_ids.insert(b.id);

    for (const auto& f : ref_.fact) {
      if (params_.has_fact_pred && f.v < params_.v_cut) continue;
      if (params_.has_tag_pred && f.tag != "hot") continue;
      auto it = a_by_id.find(f.a_ref);
      if (it == a_by_id.end()) continue;
      if (it->second->grade > params_.grade_cut) continue;
      if (uses_b && !b_ids.count(f.b_ref)) continue;
      ++count;
      sum += f.v;
      if (min_label.empty() || it->second->label < min_label) {
        min_label = it->second->label;
      }
    }
    return {count, sum, min_label};
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  rel::Table* fact_ = nullptr;
  rel::Table* dim_a_ = nullptr;
  rel::Table* dim_b_ = nullptr;
  RefData ref_;
  QueryParams params_;
};

TEST_P(PropertyTest, EveryStrategyMatchesBruteForceReference) {
  Rng rng(GetParam() * 104729 + 1);
  bool uses_b = false;
  Query q = MakeRandomQuery(&rng, &uses_b);

  hybrid::Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto [ref_count, ref_sum, ref_min] = Reference(uses_b);

  hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_,
                                  MakePlannerConfig());
  int executed = 0;
  for (const auto& choice : hybrid::HybridExecutor::AllChoices(*plan)) {
    lsm::BlockCache cache(16 << 20);
    auto r = executor.Run(*plan, choice, &cache);
    if (!r.ok() && r.status().IsResourceExhausted()) continue;
    ASSERT_TRUE(r.ok()) << choice.ToString() << ": "
                        << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u) << choice.ToString();
    RowView row(r->rows[0].data(), &r->schema);
    const int cnt_col = r->schema.Find("cnt");
    const int sum_col = r->schema.Find("sum_v");
    const int min_col = r->schema.Find("min_label");
    ASSERT_GE(cnt_col, 0);
    EXPECT_EQ(row.GetInt(cnt_col), ref_count) << choice.ToString();
    EXPECT_EQ(row.GetInt(sum_col), ref_sum) << choice.ToString();
    if (ref_count > 0) {
      EXPECT_EQ(row.GetString(min_col).ToString(), ref_min)
          << choice.ToString();
    }
    ++executed;
  }
  EXPECT_GE(executed, 3);  // at least BLK, NATIVE and one offload variant
}

// PR3 batch execution: for the same random operator tree, the batched
// pipeline must produce the same rows AND the same simulated metrics as the
// row-at-a-time pipeline, for every strategy, at a random batch capacity.
TEST_P(PropertyTest, BatchedExecutionMatchesRowExecutionOnRandomTrees) {
  Rng rng(GetParam() * 31337 + 7);
  bool uses_b = false;
  Query q = MakeRandomQuery(&rng, &uses_b);

  hybrid::Planner planner(&catalog_, &hw_, MakePlannerConfig());
  auto plan = planner.PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto run_all = [&](size_t batch_rows) {
    hybrid::PlannerConfig cfg = MakePlannerConfig();
    cfg.exec_batch_rows = batch_rows;
    hybrid::HybridExecutor executor(&catalog_, &storage_, &hw_, cfg);
    std::vector<Result<hybrid::RunResult>> out;
    for (const auto& choice : hybrid::HybridExecutor::AllChoices(*plan)) {
      lsm::BlockCache cache(16 << 20);
      out.push_back(executor.Run(*plan, choice, &cache));
    }
    return out;
  };

  auto row_mode = run_all(0);
  const size_t batch_rows = 1 + rng.Uniform(200);
  auto batch_mode = run_all(batch_rows);
  ASSERT_EQ(row_mode.size(), batch_mode.size());
  for (size_t i = 0; i < row_mode.size(); ++i) {
    SCOPED_TRACE("choice " + std::to_string(i) + " batch_rows=" +
                 std::to_string(batch_rows));
    ASSERT_EQ(row_mode[i].ok(), batch_mode[i].ok());
    if (!row_mode[i].ok()) continue;
    const auto& a = *row_mode[i];
    const auto& b = *batch_mode[i];
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.total_ns, b.total_ns);
    EXPECT_EQ(a.host_counters.units, b.host_counters.units);
    EXPECT_EQ(a.host_counters.time_ps, b.host_counters.time_ps);
    EXPECT_EQ(a.device_counters.units, b.device_counters.units);
    EXPECT_EQ(a.device_counters.time_ps, b.device_counters.time_ps);
    EXPECT_EQ(a.device_rows, b.device_rows);
    EXPECT_EQ(a.transferred_bytes, b.transferred_bytes);
    EXPECT_EQ(a.num_batches, b.num_batches);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace hybridndp
