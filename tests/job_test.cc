// JOB workload tests: schema integrity, generator determinism and FK
// validity, the 113-query catalog, and end-to-end execution consistency
// across all strategies on a small scale.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"
#include "job/schema.h"
#include "sim/hw_model.h"

namespace hybridndp::job {
namespace {

using hybrid::ExecChoice;
using hybrid::HybridExecutor;
using hybrid::Planner;
using hybrid::PlannerConfig;
using hybrid::Strategy;
using sim::HwParams;

TEST(JobSchemaTest, TwentyOneTablesSummingToPaperTotal) {
  const auto& tables = JobTables();
  EXPECT_EQ(tables.size(), 21u);
  uint64_t total = 0;
  for (const auto& t : tables) total += t.base_rows;
  // Paper Sect. 5: ~74 million records.
  EXPECT_GT(total, 70'000'000u);
  EXPECT_LT(total, 78'000'000u);
}

TEST(JobSchemaTest, EveryTableHasValidDef) {
  for (const auto& spec : JobTables()) {
    rel::TableDef def = MakeJobTableDef(spec.name);
    ASSERT_GT(def.schema.num_columns(), 0u) << spec.name;
    EXPECT_EQ(def.schema.column(0).name, "id") << spec.name;
    EXPECT_EQ(def.schema.row_size() % 4, 0u) << spec.name;  // 4B alignment
    for (const auto& idx : def.indexes) {
      ASSERT_GE(idx.col, 0) << spec.name;
      ASSERT_LT(idx.col, static_cast<int>(def.schema.num_columns()))
          << spec.name;
    }
  }
}

TEST(JobQueriesTest, CatalogHas113QueriesIn33Groups) {
  const auto all = AllJobQueries();
  EXPECT_EQ(all.size(), 113u);
  std::set<int> groups;
  for (const auto& id : all) groups.insert(id.group);
  EXPECT_EQ(groups.size(), 33u);
}

TEST(JobQueriesTest, EveryQueryIsWellFormed) {
  for (const auto& id : AllJobQueries()) {
    auto q = MakeJobQuery(id);
    ASSERT_TRUE(q.ok()) << id.ToString();
    EXPECT_GE(q->tables.size(), 4u) << id.ToString();
    EXPECT_GE(q->joins.size(), q->tables.size() - 1) << id.ToString();
    EXPECT_TRUE(q->has_agg) << id.ToString();
    // Each join edge references declared aliases.
    for (const auto& e : q->joins) {
      EXPECT_GE(q->FindTable(e.left_alias), 0)
          << id.ToString() << " " << e.left_alias;
      EXPECT_GE(q->FindTable(e.right_alias), 0)
          << id.ToString() << " " << e.right_alias;
    }
  }
}

TEST(JobQueriesTest, UnknownQueriesRejected) {
  EXPECT_FALSE(MakeJobQuery({99, 'a'}).ok());
  EXPECT_FALSE(MakeJobQuery({1, 'z'}).ok());
}

TEST(JobQueriesTest, PaperListingsMatch) {
  // Listing 1 (Q1a): 5 tables, company_type + info_type filters.
  auto q1 = MakeJobQuery({1, 'a'});
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->tables.size(), 5u);
  EXPECT_EQ(q1->tables[0].alias, "ct");
  EXPECT_EQ(q1->tables[0].predicate->ToString(),
            "ct.kind = 'production companies'");
  // Listing 3 (Q8c): 7 tables, rt.role = 'writer'; Q8d: 'costume designer'.
  auto q8c = MakeJobQuery({8, 'c'});
  ASSERT_TRUE(q8c.ok());
  EXPECT_EQ(q8c->tables.size(), 7u);
  bool found_writer = false;
  for (const auto& t : q8c->tables) {
    if (t.alias == "rt") {
      EXPECT_EQ(t.predicate->ToString(), "rt.role = 'writer'");
      found_writer = true;
    }
  }
  EXPECT_TRUE(found_writer);
  auto q8d = MakeJobQuery({8, 'd'});
  ASSERT_TRUE(q8d.ok());
  for (const auto& t : q8d->tables) {
    if (t.alias == "rt") {
      EXPECT_EQ(t.predicate->ToString(), "rt.role = 'costume designer'");
    }
  }
}

class JobDatabaseTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.0002;  // ~15k rows

  JobDatabaseTest()
      : hw_(MakeHw()), storage_(&hw_), db_(&storage_, MakeDbOptions()),
        catalog_(&db_) {
    JobDataOptions opts;
    opts.scale = kScale;
    Status s = BuildJobDatabase(&catalog_, opts);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  static HwParams MakeHw() {
    HwParams hw = HwParams::PaperDefaults();
    hw.mem.device_selection_bytes = 64 << 10;
    hw.mem.device_join_bytes = 32 << 10;
    hw.mem.device_ndp_budget_bytes = 16 << 20;
    return hw;
  }
  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 256 << 10;
    return o;
  }
  PlannerConfig MakePlannerConfig() {
    PlannerConfig cfg;
    cfg.buffers.selection_buffer_bytes = 64 << 10;
    cfg.buffers.join_buffer_bytes = 32 << 10;
    cfg.buffers.shared_slot_bytes = 8 << 10;
    cfg.buffers.shared_slots = 4;
    return cfg;
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
};

TEST_F(JobDatabaseTest, GeneratorProducesScaledCardinalities) {
  for (const auto& spec : JobTables()) {
    rel::Table* t = catalog_.Get(spec.name);
    ASSERT_NE(t, nullptr) << spec.name;
    EXPECT_EQ(t->row_count(), ScaledRows(spec, kScale)) << spec.name;
  }
  // Dimensions keep their exact sizes.
  EXPECT_EQ(catalog_.Get("info_type")->row_count(), 113u);
  EXPECT_EQ(catalog_.Get("company_type")->row_count(), 4u);
  EXPECT_EQ(catalog_.Get("role_type")->row_count(), 12u);
}

TEST_F(JobDatabaseTest, ForeignKeysResolve) {
  // Every movie_companies.movie_id must exist in title.
  rel::Table* mc = catalog_.Get("movie_companies");
  rel::Table* title = catalog_.Get("title");
  auto iter = mc->NewScanIterator(lsm::ReadOptions{});
  int checked = 0;
  for (iter->SeekToFirst(); iter->Valid() && checked < 200;
       iter->Next(), ++checked) {
    rel::RowView row(iter->value().data(), &mc->schema());
    std::string out;
    EXPECT_TRUE(title->GetByPk(lsm::ReadOptions{}, row.GetInt(1), &out).ok())
        << "movie_id " << row.GetInt(1);
  }
  EXPECT_GT(checked, 0);
}

TEST_F(JobDatabaseTest, StatsCollected) {
  rel::Table* t = catalog_.Get("title");
  ASSERT_FALSE(t->stats().empty());
  EXPECT_EQ(t->stats().row_count, t->row_count());
  const auto& year = t->stats().col(3);
  EXPECT_GE(year.min_int, 1880);
  EXPECT_LE(year.max_int, 2019);
  EXPECT_GT(year.ndv, 10u);
}

TEST_F(JobDatabaseTest, GeneratorIsDeterministic) {
  lsm::VirtualStorage storage2(&hw_);
  lsm::DB db2(&storage2, MakeDbOptions());
  rel::Catalog catalog2(&db2);
  JobDataOptions opts;
  opts.scale = kScale;
  ASSERT_TRUE(BuildJobDatabase(&catalog2, opts).ok());

  rel::Table* a = catalog_.Get("title");
  rel::Table* b = catalog2.Get("title");
  auto ia = a->NewScanIterator(lsm::ReadOptions{});
  auto ib = b->NewScanIterator(lsm::ReadOptions{});
  ia->SeekToFirst();
  ib->SeekToFirst();
  int rows = 0;
  while (ia->Valid() && ib->Valid()) {
    ASSERT_EQ(ia->value().ToString(), ib->value().ToString());
    ia->Next();
    ib->Next();
    ++rows;
  }
  EXPECT_EQ(ia->Valid(), ib->Valid());
  EXPECT_GT(rows, 100);
}

TEST_F(JobDatabaseTest, All113QueriesPlan) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  for (const auto& id : AllJobQueries()) {
    auto q = MakeJobQuery(id);
    ASSERT_TRUE(q.ok()) << id.ToString();
    auto plan = planner.PlanQuery(*q);
    ASSERT_TRUE(plan.ok()) << id.ToString() << ": "
                           << plan.status().ToString();
    EXPECT_EQ(plan->order.size(), q->tables.size()) << id.ToString();
    EXPECT_GT(plan->c_total_host, 0) << id.ToString();
    EXPECT_GT(plan->c_total_dev, 0) << id.ToString();
  }
}

TEST_F(JobDatabaseTest, All113QueriesExecuteUnderRecommendedStrategy) {
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());
  for (const auto& id : AllJobQueries()) {
    auto q = MakeJobQuery(id);
    ASSERT_TRUE(q.ok()) << id.ToString();
    auto plan = planner.PlanQuery(*q);
    ASSERT_TRUE(plan.ok()) << id.ToString();
    lsm::BlockCache cache(64 << 20);
    auto r = executor.Run(*plan, plan->recommended, &cache);
    if (!r.ok() && r.status().IsResourceExhausted()) {
      // Legal planner outcome at tiny scale; host-only must still work.
      r = executor.Run(*plan, {Strategy::kHostBlk, 0}, &cache);
    }
    ASSERT_TRUE(r.ok()) << id.ToString() << ": " << r.status().ToString();
    // Every JOB query is a global aggregate: exactly one result row.
    EXPECT_EQ(r->rows.size(), 1u) << id.ToString();
    EXPECT_GT(r->total_ns, 0) << id.ToString();
  }
}

TEST_F(JobDatabaseTest, SampleQueriesConsistentAcrossStrategies) {
  // Paper detail queries + a couple of structurally different groups.
  const std::vector<JobQueryId> sample = {
      {1, 'a'}, {3, 'b'}, {8, 'c'}, {8, 'd'}, {17, 'b'}, {32, 'b'}};
  Planner planner(&catalog_, &hw_, MakePlannerConfig());
  HybridExecutor executor(&catalog_, &storage_, &hw_, MakePlannerConfig());

  for (const auto& id : sample) {
    auto q = MakeJobQuery(id);
    ASSERT_TRUE(q.ok());
    auto plan = planner.PlanQuery(*q);
    ASSERT_TRUE(plan.ok()) << id.ToString();

    std::multiset<std::string> reference;
    bool have_reference = false;
    for (const auto& choice : HybridExecutor::AllChoices(*plan)) {
      lsm::BlockCache cache(256 << 20);
      auto result = executor.Run(*plan, choice, &cache);
      if (!result.ok() && result.status().IsResourceExhausted()) {
        continue;  // split too deep for the device budget: legal outcome
      }
      ASSERT_TRUE(result.ok())
          << id.ToString() << " " << choice.ToString() << ": "
          << result.status().ToString();
      auto canon =
          std::multiset<std::string>(result->rows.begin(), result->rows.end());
      if (!have_reference) {
        reference = canon;
        have_reference = true;
      } else {
        EXPECT_EQ(canon, reference)
            << id.ToString() << " " << choice.ToString();
      }
    }
    EXPECT_TRUE(have_reference) << id.ToString();
    // Aggregate queries always emit one row.
    EXPECT_EQ(reference.size(), 1u) << id.ToString();
  }
}

}  // namespace
}  // namespace hybridndp::job
