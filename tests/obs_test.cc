// Tests for the observability layer: metrics registry (counters +
// histograms, thread-safety, deterministic JSON export) and the
// simulated-timeline trace recorder (tracks, spans, gap-filling, category
// aggregation, Chrome trace_event export).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hybridndp::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(JsonEscapeTest, EscapesControlQuoteBackslash) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(CounterTest, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(HistogramTest, StatsAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(0.25);  // bucket 0 (< 1)
  h.Record(3);     // [2, 4)
  h.Record(4);     // [4, 8)
  h.Record(1000);  // [512, 1024)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1007.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1007.25 / 4);
  const std::string j = h.ToJson();
  EXPECT_NE(j.find("\"count\":4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"1024\":1"), std::string::npos) << j;
}

TEST(MetricsRegistryTest, CreateOnFirstUseStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(reg.CounterValue("x"), 3u);
  EXPECT_EQ(reg.CounterValue("never-created"), 0u);
  reg.histogram("h")->Record(2);
  EXPECT_EQ(reg.num_counters(), 1u);
  EXPECT_EQ(reg.num_histograms(), 1u);
}

TEST(MetricsRegistryTest, JsonIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.counter("zeta")->Add(1);
  reg.counter("alpha")->Add(2);
  const std::string j = reg.ToJson();
  const size_t alpha = j.find("\"alpha\"");
  const size_t zeta = j.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);  // std::map iteration order
  EXPECT_EQ(j, reg.ToJson());
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.counter("shared");
      Histogram* h = reg.histogram("sizes");
      for (int i = 0; i < kIters; ++i) {
        c->Add();
        h->Record(static_cast<double>(i % 97));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("sizes")->count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

// ------------------------------------------------------------------ trace

TEST(TraceRecorderTest, SpansAndCategoryTotals) {
  TraceRecorder rec;
  const int t0 = rec.NewTrack("host");
  const int t1 = rec.NewTrack("device");
  EXPECT_NE(t0, t1);
  rec.Span(t0, "setup", "setup", 0, 100);
  rec.Span(t0, "wait", "wait", 100, 250);
  rec.Span(t1, "batch 0", "produce", 10, 60,
           {TraceArg::Num("rows", uint64_t{5})});
  EXPECT_EQ(rec.num_tracks(), 2u);
  EXPECT_EQ(rec.num_spans(), 3u);
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t0, "setup"), 100.0);
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t0, "wait"), 150.0);
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t0, "produce"), 0.0);  // other track
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t1, "produce"), 50.0);
  EXPECT_EQ(rec.TrackSpans(t0).size(), 2u);
  EXPECT_EQ(rec.TrackSpans(t1).size(), 1u);
}

TEST(TraceRecorderTest, GapFillCoversOnlyUncoveredIntervals) {
  TraceRecorder rec;
  const int t = rec.NewTrack("host");
  rec.Span(t, "a", "wait", 10, 20);
  rec.Span(t, "b", "transfer", 30, 40);
  rec.GapFill(t, 0, 50, "processing", "processing");
  // Gaps: [0,10), [20,30), [40,50) -> 30 ns of processing.
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t, "processing"), 30.0);
  // All categories together tile [0, 50].
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t, "processing") +
                       rec.CategoryTotal(t, "wait") +
                       rec.CategoryTotal(t, "transfer"),
                   50.0);
}

TEST(TraceRecorderTest, GapFillWithNoSpansFillsWholeRange) {
  TraceRecorder rec;
  const int t = rec.NewTrack("host");
  rec.GapFill(t, 0, 123, "processing", "processing");
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t, "processing"), 123.0);
  ASSERT_EQ(rec.TrackSpans(t).size(), 1u);
  EXPECT_DOUBLE_EQ(rec.TrackSpans(t)[0].start_ns, 0.0);
  EXPECT_DOUBLE_EQ(rec.TrackSpans(t)[0].end_ns, 123.0);
}

TEST(TraceRecorderTest, GapFillIgnoresOtherTracks) {
  TraceRecorder rec;
  const int t0 = rec.NewTrack("host");
  const int t1 = rec.NewTrack("device");
  rec.Span(t1, "busy", "produce", 0, 100);
  rec.GapFill(t0, 0, 100, "processing", "processing");
  EXPECT_DOUBLE_EQ(rec.CategoryTotal(t0, "processing"), 100.0);
}

TEST(TraceRecorderTest, ChromeJsonShape) {
  TraceRecorder rec;
  const int t = rec.NewTrack("NATIVE [host]", /*sort_index=*/3);
  rec.Span(t, "processing", "processing", 0, 2'000'000,
           {TraceArg::Num("rows", uint64_t{12}),
            TraceArg::Str("note", "a\"b")});
  const std::string j = rec.ToChromeJson();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(j.find("NATIVE [host]"), std::string::npos);
  // 2 ms = 2000 us.
  EXPECT_NE(j.find("\"dur\":2000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"rows\":12"), std::string::npos) << j;
  EXPECT_NE(j.find("a\\\"b"), std::string::npos) << j;
}

TEST(TraceRecorderTest, ConcurrentSpanRecording) {
  TraceRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kSpans = 1000;
  std::vector<int> tracks;
  for (int t = 0; t < kThreads; ++t) {
    tracks.push_back(rec.NewTrack("track " + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &tracks, t] {
      for (int i = 0; i < kSpans; ++i) {
        rec.Span(tracks[t], "s", "work", i, i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.num_spans(), static_cast<size_t>(kThreads) * kSpans);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(rec.CategoryTotal(tracks[t], "work"),
                     static_cast<double>(kSpans));
  }
}

// ------------------------------------------------- canonical export bytes

// Two registries fed the same metrics in different insertion orders must
// export identical bytes: ToJson iterates sorted maps, never hash/insertion
// order (the determinism contract hndp-lint's unordered-serialize rule and
// DESIGN.md §13 pin down).
TEST(CanonicalJsonTest, MetricsBytesIndependentOfInsertionOrder) {
  MetricsRegistry a;
  a.counter("zeta")->Add(7);
  a.counter("alpha")->Add(3);
  a.histogram("lat")->Record(5);
  a.histogram("bytes")->Record(9);

  MetricsRegistry b;
  b.histogram("bytes")->Record(9);
  b.counter("alpha")->Add(3);
  b.histogram("lat")->Record(5);
  b.counter("zeta")->Add(7);

  EXPECT_EQ(a.ToJson(), b.ToJson());
}

// Two recorders holding the same per-track spans must export identical
// bytes regardless of how concurrent appends interleaved across tracks:
// ToChromeJson groups by track, and within one track the recording order is
// single-writer deterministic.
TEST(CanonicalJsonTest, TraceBytesIndependentOfAppendInterleaving) {
  TraceRecorder a;
  TraceRecorder b;
  const int host_a = a.NewTrack("host");
  const int dev_a = a.NewTrack("device");
  const int host_b = b.NewTrack("host");
  const int dev_b = b.NewTrack("device");

  // Recorder a: strictly alternating interleaving.
  for (int i = 0; i < 16; ++i) {
    a.Span(host_a, "h" + std::to_string(i), "work", i, i + 1);
    a.Span(dev_a, "d" + std::to_string(i), "work", i, i + 1);
  }
  // Recorder b: one track fully first — the other extreme interleaving.
  for (int i = 0; i < 16; ++i) {
    b.Span(dev_b, "d" + std::to_string(i), "work", i, i + 1);
  }
  for (int i = 0; i < 16; ++i) {
    b.Span(host_b, "h" + std::to_string(i), "work", i, i + 1);
  }

  EXPECT_EQ(a.ToChromeJson(), b.ToChromeJson());
}

TEST(WriteFileTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/obs_write_test.json";
  ASSERT_TRUE(WriteFile(path, "{\"ok\": true}\n"));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"ok\": true}\n");
  EXPECT_FALSE(WriteFile("/nonexistent-dir-zz/x.json", "x"));
}

}  // namespace
}  // namespace hybridndp::obs
