// Tests for the expression system and the volcano operators, validated
// against brute-force reference implementations on small synthetic tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <set>

#include "exec/operator.h"
#include "lsm/db.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp::exec {
namespace {

using rel::CharCol;
using rel::IntCol;
using rel::RowBuilder;
using rel::RowView;
using rel::TableDef;
using sim::AccessContext;
using sim::Actor;
using sim::HwParams;
using sim::IoPath;

TEST(LikeMatchTest, BasicPatterns) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "world"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("a(co-production)b", "%(co-production)%"));
  EXPECT_FALSE(LikeMatch("a(coproduction)b", "%(co-production)%"));
}

TEST(LikeMatchTest, BacktrackingCases) {
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%iss%xppi"));
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest()
      : hw_(HwParams::PaperDefaults()),
        storage_(&hw_),
        db_(&storage_, MakeDbOptions()),
        catalog_(&db_),
        ctx_(&hw_, Actor::kHost, IoPath::kNative) {
    // Table "emp": id, dept_id (indexed), salary, name.
    TableDef emp;
    emp.name = "emp";
    emp.schema = rel::Schema({IntCol("id"), IntCol("dept_id"),
                              IntCol("salary"), CharCol("name", 12)});
    emp.pk_col = 0;
    emp.indexes.push_back({"dept_id", 1});
    emp_ = catalog_.CreateTable(std::move(emp));

    // Table "dept": id, budget, dname.
    TableDef dept;
    dept.name = "dept";
    dept.schema =
        rel::Schema({IntCol("id"), IntCol("budget"), CharCol("dname", 8)});
    dept.pk_col = 0;
    dept_ = catalog_.CreateTable(std::move(dept));

    for (int i = 0; i < 500; ++i) {
      RowBuilder rb(&emp_->schema());
      rb.SetInt(0, i)
          .SetInt(1, i % 20)
          .SetInt(2, 1000 + (i * 37) % 5000)
          .SetString(3, "emp" + std::to_string(i));
      EXPECT_TRUE(emp_->Insert(rb.row()).ok());
    }
    for (int i = 0; i < 20; ++i) {
      RowBuilder rb(&dept_->schema());
      rb.SetInt(0, i).SetInt(1, 10000 * i).SetString(2, "d" + std::to_string(i));
      EXPECT_TRUE(dept_->Insert(rb.row()).ok());
    }
    EXPECT_TRUE(db_.FlushAll().ok());
  }

  static lsm::DBOptions MakeDbOptions() {
    lsm::DBOptions o;
    o.memtable_bytes = 64 << 10;
    return o;
  }

  lsm::ReadOptions ReadOpts() {
    lsm::ReadOptions o;
    o.ctx = &ctx_;
    return o;
  }

  OperatorPtr ScanEmp(Expr::Ptr pred = nullptr,
                      std::vector<std::string> proj = {}) {
    return std::make_unique<TableScanOp>(emp_, "e", ReadOpts(),
                                         std::move(pred), std::move(proj));
  }
  OperatorPtr ScanDept(Expr::Ptr pred = nullptr,
                       std::vector<std::string> proj = {}) {
    return std::make_unique<TableScanOp>(dept_, "d", ReadOpts(),
                                         std::move(pred), std::move(proj));
  }

  /// Runs the tree produced by `build(ctx)` row-at-a-time once and batched
  /// at each capacity in `batch_sizes`, asserting identical output rows and
  /// bit-identical simulated charges (units and picoseconds per cost kind).
  void ExpectBatchMatchesRow(
      const std::function<OperatorPtr(AccessContext*)>& build,
      const std::vector<size_t>& batch_sizes) {
    // Warm-up run: SST readers decode their index lazily and charge that
    // load to whichever context touches them first. Readers are shared
    // across runs, so absorb the one-time opens here to keep every measured
    // context's charge stream identical.
    {
      AccessContext warm(&hw_, Actor::kHost, IoPath::kNative);
      auto op = build(&warm);
      ASSERT_TRUE(CollectAll(op.get()).ok());
    }
    AccessContext row_ctx(&hw_, Actor::kHost, IoPath::kNative);
    auto row_op = build(&row_ctx);
    auto row_rows = CollectAll(row_op.get());
    ASSERT_TRUE(row_rows.ok());
    for (size_t n : batch_sizes) {
      AccessContext ctx(&hw_, Actor::kHost, IoPath::kNative);
      auto op = build(&ctx);
      auto rows = CollectAllBatched(op.get(), n);
      ASSERT_TRUE(rows.ok()) << "batch_rows=" << n;
      EXPECT_EQ(*rows, *row_rows) << "batch_rows=" << n;
      EXPECT_EQ(ctx.counters().units, row_ctx.counters().units)
          << "batch_rows=" << n;
      EXPECT_EQ(ctx.counters().time_ps, row_ctx.counters().time_ps)
          << "batch_rows=" << n;
    }
  }

  HwParams hw_;
  lsm::VirtualStorage storage_;
  lsm::DB db_;
  rel::Catalog catalog_;
  AccessContext ctx_;
  rel::Table* emp_ = nullptr;
  rel::Table* dept_ = nullptr;
};

TEST_F(ExecTest, TableScanAllRows) {
  auto scan = ScanEmp();
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 500u);
}

TEST_F(ExecTest, TableScanWithEarlySelection) {
  auto scan = ScanEmp(Expr::CmpInt("e.salary", CmpOp::kGe, 5000));
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  int expected = 0;
  for (int i = 0; i < 500; ++i) {
    if (1000 + (i * 37) % 5000 >= 5000) ++expected;
  }
  EXPECT_EQ(static_cast<int>(rows->size()), expected);
  EXPECT_GT(expected, 0);
}

TEST_F(ExecTest, TableScanEarlyProjectionShrinksRows) {
  auto scan = ScanEmp(nullptr, {"e.id", "e.salary"});
  ASSERT_TRUE(scan->Open().ok());
  EXPECT_EQ(scan->output_schema().row_size(), 8u);
  std::string row;
  ASSERT_TRUE(scan->Next(&row));
  EXPECT_EQ(row.size(), 8u);
}

TEST_F(ExecTest, TableScanUnknownProjectionFailsOpen) {
  auto scan = ScanEmp(nullptr, {"e.bogus"});
  EXPECT_FALSE(scan->Open().ok());
}

TEST_F(ExecTest, PredicateUnknownColumnFailsBind) {
  auto scan = ScanEmp(Expr::CmpInt("e.nope", CmpOp::kEq, 1));
  EXPECT_FALSE(scan->Open().ok());
}

TEST_F(ExecTest, StringPredicates) {
  auto scan = ScanEmp(Expr::Like("e.name", "emp1%"));
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  // emp1, emp10..emp19, emp100..emp199: 1 + 10 + 100 = 111.
  EXPECT_EQ(rows->size(), 111u);

  auto scan2 = ScanEmp(Expr::InStr("e.name", {"emp7", "emp8", "nobody"}));
  auto rows2 = CollectAll(scan2.get());
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows2->size(), 2u);
}

TEST_F(ExecTest, BetweenAndOrPredicates) {
  auto pred = Expr::Or({Expr::Between("e.id", 10, 19),
                        Expr::CmpInt("e.id", CmpOp::kEq, 400)});
  auto scan = ScanEmp(pred);
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 11u);
}

TEST_F(ExecTest, NotAndIsNotNull) {
  auto scan = ScanEmp(Expr::Not(Expr::Between("e.id", 0, 489)));
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);

  auto scan2 = ScanEmp(Expr::IsNotNull("e.id"));
  auto rows2 = CollectAll(scan2.get());
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows2->size(), 499u);  // id 0 counts as null-ish zero
}

TEST_F(ExecTest, IndexScanEquality) {
  auto scan = std::make_unique<IndexScanOp>(emp_, "e", 0, ReadOpts(), 7, 7,
                                            nullptr, std::vector<std::string>{});
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);  // 500 employees / 20 depts
  for (const auto& r : *rows) {
    RowView v(r.data(), &scan->output_schema());
    EXPECT_EQ(v.GetInt(1), 7);
  }
}

TEST_F(ExecTest, IndexScanRangeWithResidual) {
  auto scan = std::make_unique<IndexScanOp>(
      emp_, "e", 0, ReadOpts(), 5, 8,
      Expr::CmpInt("e.salary", CmpOp::kLt, 2000), std::vector<std::string>{});
  auto rows = CollectAll(scan.get());
  ASSERT_TRUE(rows.ok());
  int expected = 0;
  for (int i = 0; i < 500; ++i) {
    if (i % 20 >= 5 && i % 20 <= 8 && 1000 + (i * 37) % 5000 < 2000) ++expected;
  }
  EXPECT_EQ(static_cast<int>(rows->size()), expected);
}

TEST_F(ExecTest, FilterAndProjectCompose) {
  OperatorPtr plan = ScanEmp();
  plan = std::make_unique<FilterOp>(
      std::move(plan), Expr::CmpInt("e.dept_id", CmpOp::kEq, 3), &ctx_);
  plan = std::make_unique<ProjectOp>(std::move(plan),
                                     std::vector<std::string>{"e.name"}, &ctx_);
  auto rows = CollectAll(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 25u);
  EXPECT_EQ(plan->output_schema().row_size(), 12u);
}

// Reference join for validation.
std::multiset<std::pair<int, int>> ReferenceJoin() {
  std::multiset<std::pair<int, int>> expected;
  for (int i = 0; i < 500; ++i) expected.insert({i, i % 20});
  return expected;
}

std::multiset<std::pair<int, int>> ExtractJoin(
    const std::vector<std::string>& rows, const rel::Schema& schema,
    const std::string& emp_id_col, const std::string& dept_id_col) {
  std::multiset<std::pair<int, int>> out;
  const int e = schema.Find(emp_id_col);
  const int d = schema.Find(dept_id_col);
  EXPECT_GE(e, 0);
  EXPECT_GE(d, 0);
  for (const auto& r : rows) {
    RowView v(r.data(), &schema);
    out.insert({v.GetInt(e), v.GetInt(d)});
  }
  return out;
}

TEST_F(ExecTest, NestedLoopJoinMatchesReference) {
  auto join = std::make_unique<NestedLoopJoinOp>(
      ScanDept(), ScanEmp(), std::vector<JoinKey>{{"d.id", "e.dept_id"}},
      nullptr, &ctx_);
  auto rows = CollectAll(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 500u);
  EXPECT_EQ(ExtractJoin(*rows, join->output_schema(), "e.id", "d.id"),
            ReferenceJoin());
}

TEST_F(ExecTest, BlockNLJoinMatchesReferenceAcrossBufferSizes) {
  for (uint64_t buffer : {64u, 512u, 1u << 20}) {
    auto join = std::make_unique<BlockNLJoinOp>(
        ScanEmp(), ScanDept(), std::vector<JoinKey>{{"e.dept_id", "d.id"}},
        nullptr, buffer, &ctx_);
    auto rows = CollectAll(join.get());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 500u) << "buffer=" << buffer;
    EXPECT_EQ(ExtractJoin(*rows, join->output_schema(), "e.id", "d.id"),
              ReferenceJoin());
    if (buffer <= 512u) {
      EXPECT_GT(static_cast<BlockNLJoinOp*>(join.get())->blocks_used(), 1u);
    }
  }
}

TEST_F(ExecTest, BlockNLJoinWithResidual) {
  auto join = std::make_unique<BlockNLJoinOp>(
      ScanEmp(), ScanDept(), std::vector<JoinKey>{{"e.dept_id", "d.id"}},
      Expr::CmpInt("d.budget", CmpOp::kGe, 100000), 1 << 20, &ctx_);
  auto rows = CollectAll(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 250u);  // depts 10..19
}

TEST_F(ExecTest, IndexedJoinViaPrimaryKey) {
  // emp.dept_id -> dept.id (pk): BNLJI through primary key seeks.
  auto join = std::make_unique<BlockNLIndexJoinOp>(
      ScanEmp(), "e.dept_id", dept_, "d", "id", ReadOpts(), nullptr,
      std::vector<std::string>{}, 1 << 16, &ctx_);
  auto rows = CollectAll(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 500u);
  EXPECT_EQ(ExtractJoin(*rows, join->output_schema(), "e.id", "d.id"),
            ReferenceJoin());
}

TEST_F(ExecTest, IndexedJoinViaSecondaryIndex) {
  // dept.id -> emp.dept_id (secondary index on emp).
  auto join = std::make_unique<BlockNLIndexJoinOp>(
      ScanDept(), "d.id", emp_, "e", "dept_id", ReadOpts(), nullptr,
      std::vector<std::string>{}, 1 << 16, &ctx_);
  auto rows = CollectAll(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 500u);
  EXPECT_EQ(ExtractJoin(*rows, join->output_schema(), "e.id", "d.id"),
            ReferenceJoin());
  EXPECT_EQ(static_cast<BlockNLIndexJoinOp*>(join.get())->index_lookups(), 20u);
}

TEST_F(ExecTest, IndexedJoinRequiresIndex) {
  auto join = std::make_unique<BlockNLIndexJoinOp>(
      ScanDept(), "d.id", emp_, "e", "salary", ReadOpts(), nullptr,
      std::vector<std::string>{}, 1 << 16, &ctx_);
  EXPECT_FALSE(join->Open().ok());
}

TEST_F(ExecTest, GraceHashJoinMatchesReference) {
  for (int parts : {1, 4, 16}) {
    auto join = std::make_unique<GraceHashJoinOp>(
        ScanDept(), ScanEmp(), std::vector<JoinKey>{{"d.id", "e.dept_id"}},
        nullptr, parts, &ctx_);
    auto rows = CollectAll(join.get());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 500u) << "parts=" << parts;
    EXPECT_EQ(ExtractJoin(*rows, join->output_schema(), "e.id", "d.id"),
              ReferenceJoin());
  }
}

TEST_F(ExecTest, JoinKeyWidthMismatchIsRejected) {
  auto join = std::make_unique<BlockNLJoinOp>(
      ScanEmp(), ScanDept(), std::vector<JoinKey>{{"e.name", "d.id"}}, nullptr,
      1 << 20, &ctx_);
  EXPECT_FALSE(join->Open().ok());
}

TEST_F(ExecTest, GroupByAggregates) {
  auto agg = std::make_unique<GroupByAggOp>(
      ScanEmp(), std::vector<std::string>{"e.dept_id"},
      std::vector<AggSpec>{{AggFn::kCount, "", "cnt"},
                           {AggFn::kSum, "e.salary", "total"},
                           {AggFn::kMin, "e.salary", "lo"},
                           {AggFn::kMax, "e.salary", "hi"},
                           {AggFn::kAvg, "e.salary", "avg"}},
      &ctx_);
  auto rows = CollectAll(agg.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 20u);

  // Reference aggregation.
  std::map<int, std::vector<int>> ref;
  for (int i = 0; i < 500; ++i) ref[i % 20].push_back(1000 + (i * 37) % 5000);
  const auto& schema = agg->output_schema();
  for (const auto& r : *rows) {
    RowView v(r.data(), &schema);
    const int dept = v.GetInt(0);
    auto& salaries = ref[dept];
    EXPECT_EQ(v.GetInt(schema.Find("cnt")), 25);
    int64_t sum = 0;
    int lo = salaries[0], hi = salaries[0];
    for (int s : salaries) {
      sum += s;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    EXPECT_EQ(v.GetInt(schema.Find("total")), sum);
    EXPECT_EQ(v.GetInt(schema.Find("lo")), lo);
    EXPECT_EQ(v.GetInt(schema.Find("hi")), hi);
    EXPECT_EQ(v.GetInt(schema.Find("avg")), sum / 25);
  }
}

TEST_F(ExecTest, GlobalAggregateWithStringMin) {
  auto agg = std::make_unique<GroupByAggOp>(
      ScanEmp(Expr::CmpInt("e.id", CmpOp::kLt, 3)), std::vector<std::string>{},
      std::vector<AggSpec>{{AggFn::kMin, "e.name", "min_name"},
                           {AggFn::kCount, "", "cnt"}},
      &ctx_);
  auto rows = CollectAll(agg.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  RowView v((*rows)[0].data(), &agg->output_schema());
  EXPECT_EQ(v.GetString(0).ToString(), "emp0");
  EXPECT_EQ(v.GetInt(1), 3);
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInputEmitsOneRow) {
  auto agg = std::make_unique<GroupByAggOp>(
      ScanEmp(Expr::CmpInt("e.id", CmpOp::kLt, -5)), std::vector<std::string>{},
      std::vector<AggSpec>{{AggFn::kCount, "", "cnt"}}, &ctx_);
  auto rows = CollectAll(agg.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  RowView v((*rows)[0].data(), &agg->output_schema());
  EXPECT_EQ(v.GetInt(0), 0);
}

TEST_F(ExecTest, OperatorsChargeCosts) {
  ctx_.ResetCosts();
  auto join = std::make_unique<BlockNLJoinOp>(
      ScanEmp(), ScanDept(), std::vector<JoinKey>{{"e.dept_id", "d.id"}},
      nullptr, 1 << 20, &ctx_);
  auto rows = CollectAll(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(ctx_.counters().Units(sim::CostKind::kHashBuild), 0u);
  EXPECT_GT(ctx_.counters().Units(sim::CostKind::kHashProbe), 0u);
  EXPECT_GT(ctx_.counters().Units(sim::CostKind::kFlashLoad), 0u);
  EXPECT_GT(ctx_.now(), 0.0);
}

// --- Batch execution (DESIGN.md §10) ---------------------------------------

TEST(RowBatchTest, SelectionNarrowsInPlace) {
  rel::Schema schema({IntCol("a"), CharCol("s", 4)});
  RowBatch b;
  b.Reset(&schema, 4);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.full());

  // PeekRow without CommitRow leaves the slot uncommitted: a join that
  // writes the concatenation first and then fails the residual discards by
  // simply not committing.
  memset(b.PeekRow(), 0xab, schema.row_size());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.num_active(), 0u);

  for (int i = 0; i < 4; ++i) {
    RowBuilder rb(&schema);
    rb.SetInt(0, i).SetString(1, std::string(1, static_cast<char>('a' + i)));
    b.AppendCopy(rb.row().data());
  }
  EXPECT_TRUE(b.full());
  ASSERT_EQ(b.num_active(), 4u);
  for (uint32_t k = 0; k < 4; ++k) EXPECT_EQ(b.sel(k), k);  // identity

  // Filters narrow by rewriting a prefix of the selection vector; the
  // physical rows stay put.
  uint32_t* sel = b.mutable_sel();
  sel[0] = 1;
  sel[1] = 3;
  b.SetNumActive(2);
  EXPECT_EQ(b.size(), 4u);
  ASSERT_EQ(b.num_active(), 2u);
  EXPECT_EQ(RowView(b.active_row(0), &schema).GetInt(0), 1);
  EXPECT_EQ(RowView(b.active_row(1), &schema).GetInt(0), 3);
  EXPECT_EQ(RowView(b.row(0), &schema).GetInt(0), 0);  // still addressable
}

TEST(RowBatchTest, ResetReusesStorageAndRegrows) {
  rel::Schema narrow({IntCol("a")});
  rel::Schema wide({IntCol("a"), CharCol("pad", 60)});
  RowBatch b;
  b.Reset(&narrow, 8);
  for (int i = 0; i < 8; ++i) {
    RowBuilder rb(&narrow);
    rb.SetInt(0, i);
    b.AppendCopy(rb.row().data());
  }
  EXPECT_TRUE(b.full());

  // Shrinking reuses the existing storage and empties the batch.
  b.Reset(&narrow, 2);
  EXPECT_EQ(b.capacity(), 2u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.num_active(), 0u);
  RowBuilder rb(&narrow);
  rb.SetInt(0, 42);
  b.AppendCopy(rb.row().data());
  EXPECT_EQ(RowView(b.row(0), &narrow).GetInt(0), 42);

  // Regrowing to a wider schema and a larger capacity.
  b.Reset(&wide, 1000);
  EXPECT_EQ(b.capacity(), 1000u);
  EXPECT_EQ(b.row_size(), wide.row_size());
  for (int i = 0; i < 1000; ++i) {
    RowBuilder rw(&wide);
    rw.SetInt(0, i).SetString(1, "x");
    b.AppendCopy(rw.row().data());
  }
  EXPECT_TRUE(b.full());
  EXPECT_EQ(RowView(b.row(999), &wide).GetInt(0), 999);
}

TEST_F(ExecTest, FilterNextBatchCompactsSelection) {
  // FilterOp::NextBatch narrows the child batch's selection in place: the
  // surviving indexes form a strictly increasing prefix and all survivors
  // satisfy the predicate.
  auto scan = ScanEmp();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), Expr::CmpInt("e.salary", CmpOp::kGe, 4000), &ctx_);
  ASSERT_TRUE(filter->Open().ok());
  const auto& schema = filter->output_schema();
  const int salary_col = schema.Find("e.salary");
  ASSERT_GE(salary_col, 0);
  size_t survivors = 0;
  while (RowBatch* b = filter->NextBatch(64)) {
    EXPECT_LE(b->num_active(), b->size());
    uint32_t prev = 0;
    for (size_t k = 0; k < b->num_active(); ++k) {
      if (k > 0) {
        EXPECT_GT(b->sel(k), prev);
      }
      prev = b->sel(k);
      EXPECT_GE(RowView(b->active_row(k), &schema).GetInt(salary_col), 4000);
      ++survivors;
    }
  }
  filter->Close();
  // Reference count.
  size_t expected = 0;
  for (int i = 0; i < 500; ++i) {
    if (1000 + (i * 37) % 5000 >= 4000) ++expected;
  }
  EXPECT_EQ(survivors, expected);
}

TEST_F(ExecTest, BatchedScanFilterProjectJoinMatchesRowExecution) {
  // Covers the capacity boundaries: batch size 1, an exact multiple of the
  // 500-row scan (100), a ragged tail (137), and larger-than-input (1024).
  auto build = [this](AccessContext* ctx) -> OperatorPtr {
    lsm::ReadOptions o;
    o.ctx = ctx;
    auto scan_e = std::make_unique<TableScanOp>(
        emp_, "e", o, Expr::CmpInt("e.salary", CmpOp::kGe, 2000),
        std::vector<std::string>{});
    auto scan_d = std::make_unique<TableScanOp>(
        dept_, "d", o, nullptr, std::vector<std::string>{});
    auto join = std::make_unique<BlockNLJoinOp>(
        std::move(scan_e), std::move(scan_d),
        std::vector<JoinKey>{{"e.dept_id", "d.id"}}, nullptr, 4 << 10, ctx);
    auto filter = std::make_unique<FilterOp>(
        std::move(join), Expr::CmpInt("d.budget", CmpOp::kGe, 30000), ctx);
    return std::make_unique<ProjectOp>(
        std::move(filter), std::vector<std::string>{"e.name", "d.dname"}, ctx);
  };
  ExpectBatchMatchesRow(build, {1, 100, 137, 1024});
}

TEST_F(ExecTest, BatchedIndexedJoinAndAggMatchRowExecution) {
  auto build = [this](AccessContext* ctx) -> OperatorPtr {
    lsm::ReadOptions o;
    o.ctx = ctx;
    auto scan_d = std::make_unique<TableScanOp>(
        dept_, "d", o, nullptr, std::vector<std::string>{});
    auto join = std::make_unique<BlockNLIndexJoinOp>(
        std::move(scan_d), "d.id", emp_, "e", "dept_id", o, nullptr,
        std::vector<std::string>{}, 1 << 10, ctx);
    return std::make_unique<GroupByAggOp>(
        std::move(join), std::vector<std::string>{"d.dname"},
        std::vector<AggSpec>{{AggFn::kCount, "", "cnt"},
                             {AggFn::kSum, "e.salary", "total"},
                             {AggFn::kMin, "e.salary", "lo"}},
        ctx);
  };
  ExpectBatchMatchesRow(build, {1, 5, 20, 64});
}

TEST_F(ExecTest, BatchedGraceHashJoinMatchesRowExecution) {
  auto build = [this](AccessContext* ctx) -> OperatorPtr {
    lsm::ReadOptions o;
    o.ctx = ctx;
    auto scan_d = std::make_unique<TableScanOp>(
        dept_, "d", o, nullptr, std::vector<std::string>{});
    auto scan_e = std::make_unique<TableScanOp>(
        emp_, "e", o, nullptr, std::vector<std::string>{});
    return std::make_unique<GraceHashJoinOp>(
        std::move(scan_d), std::move(scan_e),
        std::vector<JoinKey>{{"d.id", "e.dept_id"}}, nullptr, 4, ctx);
  };
  ExpectBatchMatchesRow(build, {1, 100, 137, 1024});
}

TEST_F(ExecTest, ExprSplitConjuncts) {
  auto e = Expr::And({Expr::CmpInt("a", CmpOp::kEq, 1),
                      Expr::And({Expr::CmpInt("b", CmpOp::kEq, 2),
                                 Expr::CmpInt("c", CmpOp::kEq, 3)})});
  std::vector<Expr::Ptr> conjuncts;
  Expr::SplitConjuncts(e, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST_F(ExecTest, ExprToStringRendersSql) {
  auto e = Expr::And({Expr::CmpStr("ct.kind", CmpOp::kEq, "production companies"),
                      Expr::Like("mc.note", "%(presents)%", true)});
  EXPECT_EQ(e->ToString(),
            "(ct.kind = 'production companies' AND mc.note NOT LIKE "
            "'%(presents)%')");
}

}  // namespace
}  // namespace hybridndp::exec
