// E6 / Fig. 17 + Table 4: cooperative-execution timeline of JOB Q8d
// (structurally identical to 8c; rt.role targets 'costume designer').
// Reports the host-side stage breakdown (Table 4 left: NDP setup, initial
// wait, later waits, result transfer, processing) and the device-side
// operation breakdown (Table 4 right: memcmp, compare internal keys, seek
// index block, selection processing, seek data block, flash load, other)
// for the best overlapping split.
// Expected shape: after the initial device execution, host and device work
// in parallel with near-zero further host waits; memcmp dominates the
// device profile.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();
  auto plan = PlanJob(env.get(), 8, 'd');
  if (!plan.ok()) {
    fprintf(stderr, "plan failed\n");
    return 1;
  }

  // Sweep the pipelined hybrid splits (k >= 1) and keep the fastest — the
  // paper examines the optimal overlap split (H2/H3 for Q8d), where the
  // device PQEP streams intermediate results into the running host PQEP.
  hybrid::RunResult best;
  double best_t = -1;
  for (int k = 1; k <= plan->num_tables() - 2; ++k) {
    auto r = RunChoice(env.get(), *plan, {Strategy::kHybrid, k});
    if (!r.ok()) continue;
    if (best_t < 0 || r->total_ms() < best_t) {
      best_t = r->total_ms();
      best = std::move(*r);
    }
  }
  if (best_t < 0) {
    fprintf(stderr, "no hybrid split executable\n");
    return 1;
  }

  printf("\n=== Fig. 17 / Table 4: Q8d cooperative timeline (%s) ===\n",
         best.choice.ToString().c_str());
  printf("total: %.2f ms, %d result batches, %llu intermediate rows, "
         "%.1f KiB transferred\n\n",
         best.total_ms(), best.num_batches,
         static_cast<unsigned long long>(best.device_rows),
         best.transferred_bytes / 1024.0);

  printf("--- Host processing distribution (Table 4, left) ---\n%s\n",
         best.host_stages.ToString().c_str());

  printf("--- Device processing distribution (Table 4, right) ---\n%s\n",
         best.device_counters.BreakdownString().c_str());

  printf("--- Overlap ---\n");
  printf("device busy:  %.2f ms\n", best.device_busy_ns / kNanosPerMilli);
  printf("device stall: %.2f ms (waiting for free result-buffer slots)\n",
         best.device_stall_ns / kNanosPerMilli);
  const double host_waits =
      (best.host_stages.initial_wait + best.host_stages.later_waits) /
      kNanosPerMilli;
  printf("host waits:   %.2f ms (%.1f%% of total; paper: initial wait\n"
         "              dominates, later waits ~0.01%%)\n",
         host_waits, 100.0 * host_waits / best.total_ms());
  return 0;
}
