// E6 / Fig. 17 + Table 4: cooperative-execution timeline of JOB Q8d
// (structurally identical to 8c; rt.role targets 'costume designer').
// Reports the host-side stage breakdown (Table 4 left: NDP setup, initial
// wait, later waits, result transfer, processing) and the device-side
// operation breakdown (Table 4 right: memcmp, compare internal keys, seek
// index block, selection processing, seek data block, flash load, other)
// for the best overlapping split.
// Expected shape: after the initial device execution, host and device work
// in parallel with near-zero further host waits; memcmp dominates the
// device profile.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

namespace {

/// Check that the recorded host-track spans tile the simulated timeline:
/// per-category span totals must match the Table-4 stage accounting, and
/// the categories together must sum to total_ns. Returns false (and prints
/// the offending category) on mismatch beyond FP-reassociation noise.
bool CheckStageSpans(const obs::TraceRecorder& rec,
                     const hybrid::RunResult& r) {
  const int track = r.trace_host_track;
  const hybrid::StageTimes& st = r.host_stages;
  const struct {
    const char* cat;
    SimNanos want;
  } cats[] = {
      {"setup", st.ndp_setup},
      {"wait", st.initial_wait + st.later_waits},
      {"transfer", st.result_transfer},
      {"processing", st.processing},
  };
  bool ok = true;
  SimNanos sum = 0;
  for (const auto& c : cats) {
    const SimNanos got = rec.CategoryTotal(track, c.cat);
    sum += got;
    const double tol = 1e-9 * std::max(1.0, std::abs(c.want));
    if (std::abs(got - c.want) > tol) {
      fprintf(stderr, "trace check FAILED: category '%s' spans sum to %.3f "
              "ns, stage accounting says %.3f ns\n", c.cat, got, c.want);
      ok = false;
    }
  }
  const double tol = 1e-9 * std::max(1.0, std::abs(r.total_ns));
  if (std::abs(sum - r.total_ns) > tol) {
    fprintf(stderr, "trace check FAILED: stage spans sum to %.3f ns, run "
            "total is %.3f ns\n", sum, r.total_ns);
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  auto env = MakeJobEnv();
  auto plan = PlanJob(env.get(), 8, 'd');
  if (!plan.ok()) {
    fprintf(stderr, "plan failed\n");
    return 1;
  }

  // Sweep the pipelined hybrid splits (k >= 1) and keep the fastest — the
  // paper examines the optimal overlap split (H2/H3 for Q8d), where the
  // device PQEP streams intermediate results into the running host PQEP.
  hybrid::RunResult best;
  double best_t = -1;
  std::string splits_json;
  for (int k = 1; k <= plan->num_tables() - 2; ++k) {
    auto r = RunChoice(env.get(), *plan, {Strategy::kHybrid, k});
    if (!r.ok()) continue;
    if (!splits_json.empty()) splits_json += ", ";
    splits_json += "{\"choice\": \"" + r->choice.ToString() + "\", ";
    AppendJsonNum(&splits_json, "total_ms", r->total_ms());
    splits_json += "}";
    if (best_t < 0 || r->total_ms() < best_t) {
      best_t = r->total_ms();
      best = std::move(*r);
    }
  }
  if (best_t < 0) {
    fprintf(stderr, "no hybrid split executable\n");
    return 1;
  }

  printf("\n=== Fig. 17 / Table 4: Q8d cooperative timeline (%s) ===\n",
         best.choice.ToString().c_str());
  printf("total: %.2f ms, %d result batches, %llu intermediate rows, "
         "%.1f KiB transferred\n\n",
         best.total_ms(), best.num_batches,
         static_cast<unsigned long long>(best.device_rows),
         best.transferred_bytes / 1024.0);

  printf("--- Host processing distribution (Table 4, left) ---\n%s\n",
         best.host_stages.ToString().c_str());

  printf("--- Device processing distribution (Table 4, right) ---\n%s\n",
         best.device_counters.BreakdownString().c_str());

  printf("--- Overlap ---\n");
  printf("device busy:  %.2f ms\n", best.device_busy_ns / kNanosPerMilli);
  printf("device stall: %.2f ms (waiting for free result-buffer slots)\n",
         best.device_stall_ns / kNanosPerMilli);
  const double host_waits =
      (best.host_stages.initial_wait + best.host_stages.later_waits) /
      kNanosPerMilli;
  printf("host waits:   %.2f ms (%.1f%% of total; paper: initial wait\n"
         "              dominates, later waits ~0.01%%)\n",
         host_waits, 100.0 * host_waits / best.total_ms());

  // With HNDP_TRACE set, verify the recorded spans against the stage
  // accounting (the PR's acceptance invariant).
  bool trace_ok = true;
  if (env->trace != nullptr && best.trace_host_track >= 0) {
    trace_ok = CheckStageSpans(*env->trace, best);
    printf("\ntrace check (%s): stage spans tile [0, total] %s\n",
           best.choice.ToString().c_str(), trace_ok ? "OK" : "FAILED");
  }

  if (const std::string path = BenchJsonPath(); !path.empty()) {
    std::string j = "{\n  \"bench\": \"fig17_timeline\", \"query\": \"8d\",\n";
    j += "  \"best\": {\"choice\": \"" + best.choice.ToString() + "\", ";
    AppendJsonNum(&j, "total_ms", best.total_ms());
    j += ", ";
    AppendJsonNum(&j, "num_batches", best.num_batches);
    j += ", ";
    AppendJsonNum(&j, "device_rows", static_cast<double>(best.device_rows));
    j += ", ";
    AppendJsonNum(&j, "transferred_bytes",
                  static_cast<double>(best.transferred_bytes));
    j += ",\n    \"stages_ms\": {";
    AppendJsonNum(&j, "ndp_setup", best.host_stages.ndp_setup / kNanosPerMilli);
    j += ", ";
    AppendJsonNum(&j, "initial_wait",
                  best.host_stages.initial_wait / kNanosPerMilli);
    j += ", ";
    AppendJsonNum(&j, "later_waits",
                  best.host_stages.later_waits / kNanosPerMilli);
    j += ", ";
    AppendJsonNum(&j, "result_transfer",
                  best.host_stages.result_transfer / kNanosPerMilli);
    j += ", ";
    AppendJsonNum(&j, "processing",
                  best.host_stages.processing / kNanosPerMilli);
    j += "},\n    ";
    AppendJsonNum(&j, "device_busy_ms", best.device_busy_ns / kNanosPerMilli);
    j += ", ";
    AppendJsonNum(&j, "device_stall_ms",
                  best.device_stall_ns / kNanosPerMilli);
    j += "},\n  \"splits\": [" + splits_json + "],\n";
    j += "  \"trace_check\": " +
         std::string(env->trace == nullptr
                         ? "null"
                         : trace_ok ? "\"ok\"" : "\"failed\"") +
         "\n}\n";
    if (!obs::WriteFile(path, j)) {
      fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    fprintf(stderr, "# bench json: %s\n", path.c_str());
  }
  return trace_ok ? 0 : 1;
}
