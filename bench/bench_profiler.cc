// E0: the hardware profiling micro-benchmark (paper Sect. 3.1) and the
// CoreMark-style compute comparison (paper Sect. 5, Experimental Setup:
// host 92343 it/s vs single ARM core 2964 it/s).

#include <cstdio>

#include "sim/profiler.h"

using namespace hybridndp;

int main() {
  sim::HwParams platform = sim::HwParams::PaperDefaults();
  printf("=== Hardware model (paper Table 2 parameters) ===\n%s\n\n",
         platform.ToString().c_str());

  sim::HardwareProfiler profiler(platform);
  sim::ProfileReport report = profiler.Run();
  printf("=== Profiler micro-benchmark (run before DBMS startup) ===\n%s\n\n",
         report.ToString().c_str());

  sim::HwParams derived = profiler.DeriveParams(report);
  printf("=== Derived parameter set ===\n");
  printf("ndp_hw_FCF  = %.3f\n", derived.ndp_flash_clock);
  printf("host_hw_FCF = %.3f\n", derived.host_flash_clock);
  printf("hw_CME host = %.2f GB/s, device = %.2f GB/s\n",
         derived.host_cpu.memcpy_bytes_per_sec / 1e9,
         derived.device_cpu.memcpy_bytes_per_sec / 1e9);
  printf("compute ratio host:device = %.1fx (paper: 92343/2964 = %.1fx)\n",
         derived.ComputeRatio(), 92343.0 / 2964.0);
  return 0;
}
