// A2: intermediate-cache format ablation (paper Sect. 4.2, "Cache structure
// optimization"): row-cache format copies complete records between pipeline
// stages; pointer-cache format stores addresses only. The engine switches
// to pointers beyond 2 tables. This ablation forces each format on
// full-NDP pipelines of increasing depth.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();

  // Queries of increasing table count (pipeline depth).
  const struct {
    int group;
    char variant;
    const char* label;
  } cases[] = {
      {3, 'a', "4 tables (Q3a)"},
      {1, 'a', "5 tables (Q1a)"},
      {8, 'c', "7 tables (Q8c)"},
      {16, 'a', "8 tables (Q16a)"},
  };

  printf("\n=== A2: row-cache vs pointer-cache on-device [sim ms] ===\n");
  printf("%-18s %14s %16s %10s\n", "pipeline", "row cache", "pointer cache",
         "auto");
  PrintRule();

  for (const auto& c : cases) {
    auto plan = PlanJob(env.get(), c.group, c.variant);
    if (!plan.ok()) continue;
    auto run = [&](int format) -> double {
      ExecChoice choice{Strategy::kFullNdp, 0, format};
      auto r = RunChoice(env.get(), *plan, choice);
      return r.ok() ? r->total_ms() : -1;
    };
    const double row = run(1);
    const double ptr = run(2);
    const double automatic = run(0);
    printf("%-18s %14.2f %16.2f %10.2f\n", c.label, row, ptr, automatic);
  }
  PrintRule();
  printf("paper shape: pointer format pays off as pipeline depth (and thus\n"
         "intermediate record width) grows; the automatic switch (>2 tables\n"
         "-> pointers) tracks the better format.\n");
  return 0;
}
