// Substrate micro-benchmarks (google-benchmark): wall-clock performance of
// the building blocks — skiplist memtable, block encode/decode, bloom
// probes, SST point reads and scans, LIKE matching. These measure the
// simulator's real execution speed, not simulated time.

#include <benchmark/benchmark.h>

#include "common/bloom.h"
#include "common/random.h"
#include "exec/expr.h"
#include "lsm/db.h"
#include "lsm/memtable.h"
#include "lsm/sst.h"
#include "sim/hw_model.h"

namespace hybridndp {
namespace {

void BM_MemTableAdd(benchmark::State& state) {
  lsm::MemTable mem;
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Next() % 100000);
    mem.Add(++i, lsm::ValueType::kValue, key, "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  lsm::MemTable mem;
  for (int i = 0; i < 10000; ++i) {
    mem.Add(i + 1, lsm::ValueType::kValue, "key" + std::to_string(i), "v");
  }
  Rng rng(2);
  std::string value;
  bool deleted;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Next() % 10000);
    benchmark::DoNotOptimize(
        mem.Get(key, lsm::kMaxSequenceNumber, &value, &deleted, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableGet);

void BM_BlockBuildAndScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lsm::BlockBuilder builder(16);
    for (int i = 0; i < n; ++i) {
      char buf[24];
      snprintf(buf, sizeof(buf), "key%08d", i);
      std::string ikey;
      lsm::AppendInternalKey(&ikey, buf, 1, lsm::ValueType::kValue);
      builder.Add(ikey, "value");
    }
    std::string data = builder.Finish();
    lsm::BlockReader reader((Slice(data)));
    auto iter = reader.NewIterator();
    int count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BlockBuildAndScan)->Arg(64)->Arg(512);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 100000; ++i) builder.AddKey("key" + std::to_string(i));
  std::string data = builder.Finish();
  BloomFilter filter((Slice(data)));
  Rng rng(3);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Next() % 200000);
    benchmark::DoNotOptimize(filter.MayContain(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_SstPointGet(benchmark::State& state) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  lsm::VirtualStorage storage(&hw);
  lsm::SstBuilder builder(&storage, lsm::SstOptions{});
  for (int i = 0; i < 100000; ++i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08d", i);
    std::string ikey;
    lsm::AppendInternalKey(&ikey, buf, 1, lsm::ValueType::kValue);
    builder.Add(ikey, "value" + std::to_string(i));
  }
  auto meta = builder.Finish();
  lsm::SstReader reader(&storage, *meta);
  Rng rng(4);
  std::string value;
  bool deleted;
  for (auto _ : state) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%08d",
             static_cast<int>(rng.Next() % 100000));
    benchmark::DoNotOptimize(reader.Get(nullptr, nullptr, buf,
                                        lsm::kMaxSequenceNumber, &value,
                                        &deleted));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SstPointGet);

void BM_DbScan(benchmark::State& state) {
  sim::HwParams hw = sim::HwParams::PaperDefaults();
  lsm::VirtualStorage storage(&hw);
  lsm::DBOptions opts;
  opts.memtable_bytes = 1 << 20;
  lsm::DB db(&storage, opts);
  auto cf = db.CreateColumnFamily("bench");
  for (int i = 0; i < 50000; ++i) {
    (void)db.Put(cf, "key" + std::to_string(i), "value" + std::to_string(i));
  }
  (void)db.Flush(cf);
  for (auto _ : state) {
    auto iter = db.NewIterator(lsm::ReadOptions{}, cf);
    int count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_DbScan);

void BM_LikeMatch(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.NextString(24) + "(co-production)" +
                     rng.NextString(8));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::LikeMatch(values[i++ % values.size()], "%(co-production)%"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LikeMatch);

}  // namespace
}  // namespace hybridndp

BENCHMARK_MAIN();
