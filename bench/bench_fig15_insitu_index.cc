// E5 / Fig. 15: impact of in-situ (on-device) secondary-index processing on
// NDP join performance. The Listing-2 query runs on-device once with a
// block-nested-loop join (NDP BNL, no index use) and once with an indexed
// block-nested-loop join through movie_keyword's secondary index on
// movie_id (NDP BNLI, the paper's Fig. 9 path), against host baselines,
// for (A) small projection and (B) full projection.
// Expected shape: BNL is the on-device bottleneck; BNLI is on par with or
// beats the host despite the host's ~31x compute advantage.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Query;
using hybrid::Strategy;

namespace {

Query MakeQuery(BenchEnv* env, bool full_projection) {
  const int64_t hi = static_cast<int64_t>(
      env->catalog->Get("movie_link")->row_count() / 3);
  Query q;
  q.name = "fig15";
  // movie_link (filtered, small) drives; movie_keyword is the inner side
  // with a secondary index on movie_id.
  q.tables.push_back({"movie_link", "ml",
                      exec::Expr::CmpInt("ml.id", exec::CmpOp::kLe, hi)});
  q.tables.push_back({"movie_keyword", "mk", nullptr});
  q.joins.push_back({"ml", "movie_id", "mk", "movie_id"});
  if (full_projection) {
    q.select_columns = {"ml.id", "ml.movie_id", "ml.linked_movie_id",
                        "ml.link_type_id", "mk.id", "mk.movie_id",
                        "mk.keyword_id"};
  } else {
    q.select_columns = {"ml.id", "mk.id"};
  }
  return q;
}

void ForceAlgo(hybrid::Plan* plan, nkv::JoinAlgo algo) {
  for (size_t i = 1; i < plan->order.size(); ++i) {
    plan->order[i].algo = algo;
  }
}

}  // namespace

int main() {
  auto env = MakeJobEnv();

  printf("\n=== Fig. 15: in-situ index processing (Listing 2) [sim ms] ===\n");
  printf("%-22s %10s %10s %12s %12s\n", "variant", "BLK", "NATIVE",
         "NDP BNL", "NDP BNLI");
  PrintRule();

  for (bool full : {false, true}) {
    Query q = MakeQuery(env.get(), full);
    auto plan = env->planner->PlanQuery(q);
    if (!plan.ok()) {
      fprintf(stderr, "plan failed: %s\n",
              plan.status().ToString().c_str());
      return 1;
    }
    // Make sure the driving table stays movie_link (the filtered one).
    auto run = [&](ExecChoice choice, nkv::JoinAlgo algo) -> double {
      hybrid::Plan p = *plan;
      ForceAlgo(&p, algo);
      auto r = RunChoice(env.get(), p, choice);
      return r.ok() ? r->total_ms() : -1;
    };
    const double blk = run({Strategy::kHostBlk, 0}, nkv::JoinAlgo::kBNLJI);
    const double native = run({Strategy::kHostNative, 0},
                              nkv::JoinAlgo::kBNLJI);
    const double ndp_bnl = run({Strategy::kFullNdp, 0}, nkv::JoinAlgo::kBNLJ);
    const double ndp_bnli =
        run({Strategy::kFullNdp, 0}, nkv::JoinAlgo::kBNLJI);
    printf("%-22s %10.3f %10.3f %12.3f %12.3f\n",
           full ? "(B) full projection" : "(A) small projection", blk, native,
           ndp_bnl, ndp_bnli);
  }
  PrintRule();
  printf("paper shape: without in-situ index use (NDP BNL) the device falls\n"
         "behind; with BNLI it competes with or outperforms the host.\n");
  return 0;
}
