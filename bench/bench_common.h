// Shared scaffolding for the experiment harness binaries: builds the scaled
// JOB database once, configures the hardware model and buffer budget with
// the paper's proportions, and provides run/print helpers.
//
// Scale note: the paper runs 74 M rows / 16 GB against a device with a
// 400 MB NDP buffer budget, 17 MB selection buffers and 7 MB join buffers.
// We default to 1/1000 scale (~74 k rows) and shrink all memory knobs by the
// same proportions, so buffer-pressure effects (pass counts, slot stalls,
// max pipeline depth of ~17 tables / ~12 with secondary index) carry over.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"
#include "lsm/db.h"
#include "sim/hw_model.h"

namespace hybridndp::bench {

struct BenchEnv {
  double scale = 0.001;
  sim::HwParams hw;
  std::unique_ptr<lsm::VirtualStorage> storage;
  std::unique_ptr<lsm::DB> db;
  std::unique_ptr<rel::Catalog> catalog;
  hybrid::PlannerConfig planner_config;

  std::unique_ptr<hybrid::Planner> planner;
  std::unique_ptr<hybrid::HybridExecutor> executor;
  /// Worker pool for fanning independent strategy runs (HNDP_THREADS).
  std::unique_ptr<common::ThreadPool> pool;
};

/// Paper-proportional hardware + buffer configuration for a given scale.
inline void ConfigureScaled(BenchEnv* env) {
  env->hw = sim::HwParams::PaperDefaults();
  // Device memory knobs scaled 1:1000 with the dataset: the paper's 400 MB
  // NDP budget, 17 MB selection buffers and 7 MB join buffers become
  // 400 KB / 17 KB / 7 KB, preserving the "at most 17 tables without /
  // 12 with secondary index" pipeline-depth limit and the buffer-refresh
  // behaviour of on-device BNL joins.
  env->hw.mem.device_ndp_budget_bytes = 440ull << 10;
  env->hw.mem.device_selection_bytes = 17ull << 10;
  env->hw.mem.device_join_bytes = 7ull << 10;

  env->planner_config.buffers.selection_buffer_bytes = 17ull << 10;
  env->planner_config.buffers.join_buffer_bytes = 7ull << 10;
  env->planner_config.buffers.shared_slot_bytes = 8ull << 10;
  env->planner_config.buffers.shared_slots = 4;
  env->planner_config.host_join_buffer_bytes = 8ull << 20;
}

/// Build the JOB database. Reads HNDP_SCALE (fraction of full IMDB) and
/// HNDP_SEED from the environment.
inline std::unique_ptr<BenchEnv> MakeJobEnv(double default_scale = 0.001) {
  auto env = std::make_unique<BenchEnv>();
  env->scale = default_scale;
  if (const char* s = std::getenv("HNDP_SCALE")) env->scale = atof(s);
  ConfigureScaled(env.get());

  env->storage = std::make_unique<lsm::VirtualStorage>(&env->hw);
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 512 << 10;
  db_opts.l1_target_bytes = 4ull << 20;
  env->db = std::make_unique<lsm::DB>(env->storage.get(), db_opts);
  env->catalog = std::make_unique<rel::Catalog>(env->db.get());

  job::JobDataOptions data_opts;
  data_opts.scale = env->scale;
  if (const char* s = std::getenv("HNDP_SEED")) data_opts.seed = atoll(s);
  Status st = job::BuildJobDatabase(env->catalog.get(), data_opts);
  if (!st.ok()) {
    fprintf(stderr, "failed to build JOB database: %s\n",
            st.ToString().c_str());
    exit(1);
  }
  env->planner = std::make_unique<hybrid::Planner>(
      env->catalog.get(), &env->hw, env->planner_config);
  env->executor = std::make_unique<hybrid::HybridExecutor>(
      env->catalog.get(), env->storage.get(), &env->hw, env->planner_config);

  int threads = common::ThreadPool::DefaultThreads();
  if (const char* s = std::getenv("HNDP_THREADS")) threads = atoi(s);
  env->pool = std::make_unique<common::ThreadPool>(threads);

  uint64_t rows = 0, bytes = 0;
  for (auto* t : env->catalog->tables()) {
    rows += t->row_count();
    bytes += t->data_bytes();
  }
  printf("# JOB database: scale=%g rows=%llu data=%.1f MiB (storage %.1f "
         "MiB incl. indexes)\n",
         env->scale, static_cast<unsigned long long>(rows),
         bytes / 1048576.0, env->storage->TotalBytes() / 1048576.0);
  return env;
}

/// Per-run host cache capacity. Paper proportions: the host's 4 GB RAM
/// holds ~1/4 of the raw data but, crucially, the hottest table + its index
/// (cast_info, ~2.4 GB) fits. Our scaled-down LSM has proportionally higher
/// index overhead, so 40% of stored bytes reproduces that fits-the-hot-set
/// property.
inline uint64_t HostCacheBytes(const BenchEnv* env) {
  return std::max<uint64_t>(1 << 20, env->storage->TotalBytes() * 2 / 5);
}

/// Run one query under one choice with a fresh host cache.
inline Result<hybrid::RunResult> RunChoice(BenchEnv* env,
                                           const hybrid::Plan& plan,
                                           const hybrid::ExecChoice& choice) {
  lsm::BlockCache cache(HostCacheBytes(env));
  return env->executor->Run(plan, choice, &cache);
}

/// Run one query under many choices, fanned over the env's worker pool.
/// Every run gets its own fresh host cache (cold-start semantics, same as
/// RunChoice); results come back in choice order.
inline std::vector<Result<hybrid::RunResult>> RunAllChoices(
    BenchEnv* env, const hybrid::Plan& plan,
    const std::vector<hybrid::ExecChoice>& choices) {
  const uint64_t cache_bytes = HostCacheBytes(env);
  return env->executor->RunAll(plan, choices, env->pool.get(), [cache_bytes] {
    return std::make_unique<lsm::BlockCache>(cache_bytes);
  });
}

/// Plan a JOB query by id string like "8c".
inline Result<hybrid::Plan> PlanJob(BenchEnv* env, int group, char variant) {
  HNDP_ASSIGN_OR_RETURN(hybrid::Query q,
                        job::MakeJobQuery({group, variant}));
  return env->planner->PlanQuery(q);
}

inline void PrintRule() {
  printf("------------------------------------------------------------\n");
}

}  // namespace hybridndp::bench
