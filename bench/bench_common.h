// Shared scaffolding for the experiment harness binaries: builds the scaled
// JOB database once, configures the hardware model and buffer budget with
// the paper's proportions, and provides run/print helpers.
//
// Scale note: the paper runs 74 M rows / 16 GB against a device with a
// 400 MB NDP buffer budget, 17 MB selection buffers and 7 MB join buffers.
// We default to 1/1000 scale (~74 k rows) and shrink all memory knobs by the
// same proportions, so buffer-pressure effects (pass counts, slot stalls,
// max pipeline depth of ~17 tables / ~12 with secondary index) carry over.

#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "hybrid/executor.h"
#include "hybrid/planner.h"
#include "job/generator.h"
#include "job/queries.h"
#include "lsm/db.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/hw_model.h"

namespace hybridndp::bench {

/// Strict environment parsing: the whole value must be a number (bare
/// atof/atoi turn "abc" — and "3x" — silently into 0/3, which then runs the
/// bench at a nonsense configuration). Rejected values keep the fallback
/// and say so on stderr.
inline double EnvDouble(const char* name, double fallback,
                        bool require_positive) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE ||
      (require_positive && !(v > 0))) {
    fprintf(stderr, "# ignoring %s=\"%s\": expected a %s number, using %g\n",
            name, s, require_positive ? "positive" : "finite", fallback);
    return fallback;
  }
  return v;
}

inline long long EnvInt64(const char* name, long long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    fprintf(stderr, "# ignoring %s=\"%s\": expected an integer, using %lld\n",
            name, s, fallback);
    return fallback;
  }
  return v;
}

/// Thread count: integers below 1 are clamped to 1 (with a note), anything
/// non-numeric keeps the fallback.
inline int EnvThreads(const char* name, int fallback) {
  long long v = EnvInt64(name, fallback);
  if (v < 1) {
    fprintf(stderr, "# clamping %s=%lld to 1 thread\n", name, v);
    v = 1;
  }
  if (v > 1024) {
    fprintf(stderr, "# clamping %s=%lld to 1024 threads\n", name, v);
    v = 1024;
  }
  return static_cast<int>(v);
}

struct BenchEnv {
  double scale = 0.001;
  sim::HwParams hw;
  std::unique_ptr<lsm::VirtualStorage> storage;
  std::unique_ptr<lsm::DB> db;
  std::unique_ptr<rel::Catalog> catalog;
  hybrid::PlannerConfig planner_config;

  std::unique_ptr<hybrid::Planner> planner;
  std::unique_ptr<hybrid::HybridExecutor> executor;
  /// Worker pool for fanning independent strategy runs (HNDP_THREADS).
  std::unique_ptr<common::ThreadPool> pool;

  /// Simulated-timeline recorder, created when HNDP_TRACE=<path> is set;
  /// null otherwise (the executor's zero-overhead path). The trace and
  /// metrics JSON are written when the env is destroyed (or earlier via
  /// ExportTrace).
  std::unique_ptr<obs::TraceRecorder> trace;
  std::string trace_path;

  ~BenchEnv();
};

/// Paper-proportional hardware + buffer configuration for a given scale.
inline void ConfigureScaled(BenchEnv* env) {
  env->hw = sim::HwParams::PaperDefaults();
  // Device memory knobs scaled 1:1000 with the dataset: the paper's 400 MB
  // NDP budget, 17 MB selection buffers and 7 MB join buffers become
  // 400 KB / 17 KB / 7 KB, preserving the "at most 17 tables without /
  // 12 with secondary index" pipeline-depth limit and the buffer-refresh
  // behaviour of on-device BNL joins.
  env->hw.mem.device_ndp_budget_bytes = 440ull << 10;
  env->hw.mem.device_selection_bytes = 17ull << 10;
  env->hw.mem.device_join_bytes = 7ull << 10;

  env->planner_config.buffers.selection_buffer_bytes = 17ull << 10;
  env->planner_config.buffers.join_buffer_bytes = 7ull << 10;
  env->planner_config.buffers.shared_slot_bytes = 8ull << 10;
  env->planner_config.buffers.shared_slots = 4;
  env->planner_config.host_join_buffer_bytes = 8ull << 20;
  // HNDP_BATCH_ROWS: rows per host-pipeline batch pull; 0 = row-at-a-time.
  // Simulated metrics are identical either way (DESIGN.md §10); the knob
  // only changes wall-clock.
  long long batch_rows =
      EnvInt64("HNDP_BATCH_ROWS",
               static_cast<long long>(env->planner_config.exec_batch_rows));
  if (batch_rows < 0) {
    fprintf(stderr, "# clamping HNDP_BATCH_ROWS=%lld to 0 (row-at-a-time)\n",
            batch_rows);
    batch_rows = 0;
  }
  env->planner_config.exec_batch_rows = static_cast<size_t>(batch_rows);
}

/// Build the JOB database. Reads HNDP_SCALE (fraction of full IMDB) and
/// HNDP_SEED from the environment.
inline std::unique_ptr<BenchEnv> MakeJobEnv(double default_scale = 0.001) {
  auto env = std::make_unique<BenchEnv>();
  env->scale = EnvDouble("HNDP_SCALE", default_scale, /*require_positive=*/true);
  if (const char* s = std::getenv("HNDP_TRACE"); s != nullptr && *s != '\0') {
    env->trace_path = s;
    env->trace = std::make_unique<obs::TraceRecorder>();
  }
  ConfigureScaled(env.get());

  env->storage = std::make_unique<lsm::VirtualStorage>(&env->hw);
  lsm::DBOptions db_opts;
  db_opts.memtable_bytes = 512 << 10;
  db_opts.l1_target_bytes = 4ull << 20;
  env->db = std::make_unique<lsm::DB>(env->storage.get(), db_opts);
  env->catalog = std::make_unique<rel::Catalog>(env->db.get());

  job::JobDataOptions data_opts;
  data_opts.scale = env->scale;
  data_opts.seed = EnvInt64("HNDP_SEED", data_opts.seed);
  Status st = job::BuildJobDatabase(env->catalog.get(), data_opts);
  if (!st.ok()) {
    fprintf(stderr, "failed to build JOB database: %s\n",
            st.ToString().c_str());
    exit(1);
  }
  // Arm fault injection (HNDP_FAULTS) only after the database is built:
  // the benches study query-time failures, not load-time ones, and a
  // storage.write fault during loading would abort the whole run. A
  // malformed spec is a hard error — silently running the fault matrix
  // without faults would green-light a broken CI configuration.
  if (const char* s = std::getenv("HNDP_FAULTS"); s != nullptr && *s != '\0') {
    Status fault_st = sim::FaultInjector::Global().InitFromEnv();
    if (!fault_st.ok()) {
      fprintf(stderr, "bad HNDP_FAULTS spec: %s\n",
              fault_st.ToString().c_str());
      exit(1);
    }
    fprintf(stderr, "# faults armed: %s\n", s);
  }
  env->planner = std::make_unique<hybrid::Planner>(
      env->catalog.get(), &env->hw, env->planner_config);
  env->executor = std::make_unique<hybrid::HybridExecutor>(
      env->catalog.get(), env->storage.get(), &env->hw, env->planner_config);

  env->pool = std::make_unique<common::ThreadPool>(
      EnvThreads("HNDP_THREADS", common::ThreadPool::DefaultThreads()));

  uint64_t rows = 0, bytes = 0;
  for (auto* t : env->catalog->tables()) {
    rows += t->row_count();
    bytes += t->data_bytes();
  }
  printf("# JOB database: scale=%g rows=%llu data=%.1f MiB (storage %.1f "
         "MiB incl. indexes)\n",
         env->scale, static_cast<unsigned long long>(rows),
         bytes / 1048576.0, env->storage->TotalBytes() / 1048576.0);
  return env;
}

/// Per-run host cache capacity. Paper proportions: the host's 4 GB RAM
/// holds ~1/4 of the raw data but, crucially, the hottest table + its index
/// (cast_info, ~2.4 GB) fits. Our scaled-down LSM has proportionally higher
/// index overhead, so 40% of stored bytes reproduces that fits-the-hot-set
/// property.
inline uint64_t HostCacheBytes(const BenchEnv* env) {
  return std::max<uint64_t>(1 << 20, env->storage->TotalBytes() * 2 / 5);
}

/// Run one query under one choice with a fresh host cache.
inline Result<hybrid::RunResult> RunChoice(BenchEnv* env,
                                           const hybrid::Plan& plan,
                                           const hybrid::ExecChoice& choice) {
  lsm::BlockCache cache(HostCacheBytes(env));
  return env->executor->Run(plan, choice, &cache, env->trace.get());
}

/// Run one query under many choices, fanned over the env's worker pool.
/// Every run gets its own fresh host cache (cold-start semantics, same as
/// RunChoice); results come back in choice order.
inline std::vector<Result<hybrid::RunResult>> RunAllChoices(
    BenchEnv* env, const hybrid::Plan& plan,
    const std::vector<hybrid::ExecChoice>& choices) {
  const uint64_t cache_bytes = HostCacheBytes(env);
  return env->executor->RunAll(
      plan, choices, env->pool.get(),
      [cache_bytes] { return std::make_unique<lsm::BlockCache>(cache_bytes); },
      env->trace.get());
}

/// Flush the HNDP_TRACE artifacts: the Chrome trace_event JSON at the
/// configured path plus a flat metrics dump at `<path>.metrics.json`.
/// No-op when tracing is off. Runs again at env destruction; the LSM/cache
/// tallies are gauge-style counters, so re-export never double-counts.
inline void ExportTrace(BenchEnv* env) {
  if (env->trace == nullptr || env->trace_path.empty()) return;
  if (env->db != nullptr) env->db->ExportMetrics(env->trace->metrics());
  // Gauge-style and a no-op while disarmed, so zero-fault exports are
  // byte-identical (and stall-only specs — which never fall back — still
  // surface their hndp.fault.* tallies).
  sim::FaultInjector::Global().ExportMetrics(env->trace->metrics());
  if (!obs::WriteFile(env->trace_path, env->trace->ToChromeJson())) {
    fprintf(stderr, "# failed to write trace to %s\n",
            env->trace_path.c_str());
    return;
  }
  const std::string metrics_path = env->trace_path + ".metrics.json";
  if (!obs::WriteFile(metrics_path, env->trace->MetricsJson())) {
    fprintf(stderr, "# failed to write metrics to %s\n", metrics_path.c_str());
    return;
  }
  fprintf(stderr, "# trace: %s  metrics: %s\n", env->trace_path.c_str(),
          metrics_path.c_str());
}

inline BenchEnv::~BenchEnv() { ExportTrace(this); }

/// Plan a JOB query by id string like "8c".
inline Result<hybrid::Plan> PlanJob(BenchEnv* env, int group, char variant) {
  HNDP_ASSIGN_OR_RETURN(hybrid::Query q,
                        job::MakeJobQuery({group, variant}));
  return env->planner->PlanQuery(q);
}

inline void PrintRule() {
  printf("------------------------------------------------------------\n");
}

/// Destination for a machine-readable bench summary (HNDP_BENCH_JSON=<path>);
/// empty = disabled.
inline std::string BenchJsonPath() {
  const char* s = std::getenv("HNDP_BENCH_JSON");
  return s != nullptr ? std::string(s) : std::string();
}

/// Append `"key": <num>` with enough digits to round-trip a double.
inline void AppendJsonNum(std::string* out, const char* key, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "\"%s\": %.17g", key, v);
  *out += buf;
}

}  // namespace hybridndp::bench
