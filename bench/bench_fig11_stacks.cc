// E1 / Fig. 11 (and the Fig. 2 intro experiment): JOB queries 8c, 17b, 32b
// executed on the BLK, NATIVE, NDP (full on-device) and hybridNDP stacks.
// Expected shape: hybridNDP outperforms all baselines; full NDP is
// sub-optimal for 8c/32b and closest to competitive for 17b.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();
  const struct {
    int group;
    char variant;
  } queries[] = {{8, 'c'}, {17, 'b'}, {32, 'b'}};

  printf("\n=== Fig. 11: execution time per stack [simulated ms] ===\n");
  printf("%-8s %12s %12s %12s %16s %8s\n", "query", "BLK", "NATIVE", "NDP",
         "hybridNDP", "split");
  PrintRule();

  for (const auto& q : queries) {
    auto plan = PlanJob(env.get(), q.group, q.variant);
    if (!plan.ok()) {
      fprintf(stderr, "plan failed: %s\n", plan.status().ToString().c_str());
      return 1;
    }

    auto run = [&](ExecChoice choice) -> double {
      auto r = RunChoice(env.get(), *plan, choice);
      if (!r.ok()) return -1;
      return r->total_ms();
    };
    const double blk = run({Strategy::kHostBlk, 0});
    const double native = run({Strategy::kHostNative, 0});
    const double ndp = run({Strategy::kFullNdp, 0});

    // hybridNDP = best hybrid split (the paper plots the chosen hybrid).
    double best_hybrid = -1;
    int best_k = -1;
    for (int k = 0; k <= plan->num_tables() - 2; ++k) {
      const double t = run({Strategy::kHybrid, k});
      if (t >= 0 && (best_hybrid < 0 || t < best_hybrid)) {
        best_hybrid = t;
        best_k = k;
      }
    }

    printf("%d%c %14.2f %12.2f %12.2f %16.2f %7sH%d\n", q.group, q.variant,
           blk, native, ndp, best_hybrid, "", best_k);
  }

  PrintRule();
  printf("paper shape: hybridNDP < NATIVE <= BLK for all three; NDP worst\n"
         "for 8c/32b (compute-heavy), near NATIVE for 17b (early high\n"
         "selectivity). Speedups up to ~4.2x over the host-only stack.\n");
  return 0;
}
