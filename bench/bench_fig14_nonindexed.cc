// E4 / Fig. 14 (paper Listing 2): a 2-table join on non-indexed columns —
//   SELECT * FROM movie_keyword, movie_link
//   WHERE movie_link.id <= K AND movie_keyword.movie_id = movie_link.movie_id
// executed on BLK, NATIVE and the NDP stack with an on-device BNL join,
// for (A) limited projection and (B) full projection.
// Expected shape: NDP outperforms both baselines in both cases thanks to
// early selection + early projection despite the non-size-reducing join.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Query;
using hybrid::Strategy;

namespace {

/// Listing 2, scaled: id <= 1/3 of movie_link (paper: 10000 of 30000).
Query MakeListing2(BenchEnv* env, bool full_projection) {
  const int64_t hi = static_cast<int64_t>(
      env->catalog->Get("movie_link")->row_count() / 3);
  Query q;
  q.name = full_projection ? "listing2_full" : "listing2_limited";
  q.tables.push_back({"movie_keyword", "mk", nullptr});
  q.tables.push_back({"movie_link", "ml",
                      exec::Expr::CmpInt("ml.id", exec::CmpOp::kLe, hi)});
  q.joins.push_back({"mk", "movie_id", "ml", "movie_id"});
  if (full_projection) {
    q.select_columns = {"mk.id", "mk.movie_id", "mk.keyword_id",
                        "ml.id", "ml.movie_id", "ml.linked_movie_id",
                        "ml.link_type_id"};
  } else {
    q.select_columns = {"mk.id", "ml.id"};
  }
  return q;
}

/// Force a non-indexed block-nested-loop join in the plan.
void ForceBnl(hybrid::Plan* plan) {
  for (size_t i = 1; i < plan->order.size(); ++i) {
    plan->order[i].algo = nkv::JoinAlgo::kBNLJ;
  }
}

}  // namespace

int main() {
  auto env = MakeJobEnv();

  printf("\n=== Fig. 14: non-indexed 2-table join (Listing 2) [sim ms] ===\n");
  printf("%-22s %10s %10s %10s %14s\n", "variant", "BLK", "NATIVE", "NDP",
         "result rows");
  PrintRule();

  for (bool full : {false, true}) {
    Query q = MakeListing2(env.get(), full);
    auto plan = env->planner->PlanQuery(q);
    if (!plan.ok()) {
      fprintf(stderr, "plan failed\n");
      return 1;
    }
    ForceBnl(&*plan);

    uint64_t rows = 0;
    auto run = [&](ExecChoice choice) -> double {
      auto r = RunChoice(env.get(), *plan, choice);
      if (!r.ok()) return -1;
      rows = r->result_rows();
      return r->total_ms();
    };
    const double blk = run({Strategy::kHostBlk, 0});
    const double native = run({Strategy::kHostNative, 0});
    const double ndp = run({Strategy::kFullNdp, 0});
    printf("%-22s %10.3f %10.3f %10.3f %14llu\n",
           full ? "(B) full projection" : "(A) limited projection", blk,
           native, ndp, static_cast<unsigned long long>(rows));
  }
  PrintRule();
  printf("paper shape: the NDP stack outperforms both baselines for limited\n"
         "and full projection; in-situ filtering avoids moving non-matching\n"
         "records across the interconnect.\n");
  return 0;
}
