// E2 / Fig. 12: all 113 JOB queries on the host-only (BLK) stack, leaf-node
// offloading (H0), every hybrid split H1..Hx, and full NDP. Reports the
// per-query winner and improvement over host-only, plus the aggregate
// fractions the paper states: hybridNDP outperforms or matches host-only in
// ~47% of queries; full NDP is best in ~1.7%; H0 alone in ~7%.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv(0.0005);

  int total = 0;
  int hybrid_wins = 0;     // some hybrid/NDP strictly better than host-only
  int hybrid_par = 0;      // within 5% of host-only
  int wins_native = 0;     // ... and better than the NATIVE stack too
  int h0_best = 0;         // H0 is the single best strategy
  int full_ndp_best = 0;   // full NDP is the single best strategy
  int host_best = 0;

  printf("\n=== Fig. 12: per-query best strategy vs host-only [sim ms] ===\n");
  printf("%-6s %10s %10s %10s %10s  %-10s %9s\n", "query", "host", "H0",
         "bestHk", "NDP", "winner", "gain");
  PrintRule();

  for (const auto& id : job::AllJobQueries()) {
    auto plan = PlanJob(env.get(), id.group, id.variant);
    if (!plan.ok()) {
      printf("%-6s plan error: %s\n", id.ToString().c_str(),
             plan.status().ToString().c_str());
      continue;
    }
    // All strategies of one query are independent cold-start runs: fan them
    // over the worker pool (choice order: BLK, NATIVE, H0..H(n-2), NDP).
    const std::vector<ExecChoice> choices =
        hybrid::HybridExecutor::AllChoices(*plan);
    auto results = RunAllChoices(env.get(), *plan, choices);
    auto ms_of = [&](size_t i) -> double {
      return i < results.size() && results[i].ok() ? results[i]->total_ms()
                                                   : -1.0;
    };

    const double host = ms_of(0);
    const double native = ms_of(1);
    const double h0 = ms_of(2);
    double best_hk = -1;
    int best_k = -1;
    for (int k = 1; k <= plan->num_tables() - 2; ++k) {
      const double t = ms_of(2 + static_cast<size_t>(k));
      if (t >= 0 && (best_hk < 0 || t < best_hk)) {
        best_hk = t;
        best_k = k;
      }
    }
    const double ndp = ms_of(results.size() - 1);

    // Winner classification.
    struct Entry {
      const char* name;
      double t;
    };
    std::vector<Entry> entries = {{"host", host}, {"H0", h0}, {"NDP", ndp}};
    std::string hk_name = "H" + std::to_string(best_k);
    if (best_hk >= 0) entries.push_back({hk_name.c_str(), best_hk});
    const Entry* best = nullptr;
    for (const auto& e : entries) {
      if (e.t >= 0 && (best == nullptr || e.t < best->t)) best = &e;
    }
    if (best == nullptr) continue;
    ++total;

    double best_offload = -1;
    for (const auto& e : entries) {
      if (e.t >= 0 && std::string(e.name) != "host" &&
          (best_offload < 0 || e.t < best_offload)) {
        best_offload = e.t;
      }
    }
    const bool wins = best_offload >= 0 && best_offload < host;
    const bool par = best_offload >= 0 && !wins && best_offload <= host * 1.05;
    if (wins) ++hybrid_wins;
    if (par) ++hybrid_par;
    if (best_offload >= 0 && native >= 0 && best_offload < native) {
      ++wins_native;
    }
    if (std::string(best->name) == "host") ++host_best;
    else if (std::string(best->name) == "H0") ++h0_best;
    else if (std::string(best->name) == "NDP") ++full_ndp_best;

    printf("%-6s %10.2f %10.2f %10.2f %10.2f  %-10s %+8.1f%%\n",
           id.ToString().c_str(), host, h0, best_hk, ndp, best->name,
           best_offload >= 0 && host > 0
               ? (host - best_offload) / host * 100.0
               : 0.0);
  }

  PrintRule();
  printf("queries evaluated:        %d\n", total);
  printf("offloading wins:          %d (%.1f%%)\n", hybrid_wins,
         100.0 * hybrid_wins / total);
  printf("offloading on par (5%%):   %d (%.1f%%)\n", hybrid_par,
         100.0 * hybrid_par / total);
  printf("wins or on par:           %.1f%%   (paper: ~47%%)\n",
         100.0 * (hybrid_wins + hybrid_par) / total);
  printf("wins vs NATIVE stack:     %d (%.1f%%)  (stricter baseline)\n",
         wins_native, 100.0 * wins_native / total);
  printf("H0 (leaf-only) best:      %d (%.1f%%)  (paper: ~7%%)\n", h0_best,
         100.0 * h0_best / total);
  printf("full NDP best:            %d (%.1f%%)  (paper: ~1.7%%)\n",
         full_ndp_best, 100.0 * full_ndp_best / total);
  printf("host-only best:           %d (%.1f%%)\n", host_best,
         100.0 * host_best / total);
  return 0;
}
