// E1 / Table 3: correlation of intermediate results and execution times for
// JOB Q17b. For every split position, report the number of intermediate
// result rows the device ships to the host, the bytes transferred, and the
// total execution time — the paper's point: splits with small intermediate
// result sets at the boundary enable efficient cooperative execution.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();
  auto plan = PlanJob(env.get(), 17, 'b');
  if (!plan.ok()) {
    fprintf(stderr, "plan failed\n");
    return 1;
  }
  printf("\n%s\n", plan->Explain().c_str());

  printf("=== Table 3: intermediates vs execution time (JOB Q17b) ===\n");
  printf("%-10s %14s %14s %12s %12s %12s\n", "split", "interm.rows",
         "xfer KiB", "total ms", "host wait ms", "dev stall ms");
  PrintRule();

  std::string rows_json;
  auto show = [&](const char* name, ExecChoice choice) {
    auto r = RunChoice(env.get(), *plan, choice);
    if (!rows_json.empty()) rows_json += ",\n    ";
    if (!r.ok()) {
      printf("%-10s (%s)\n", name, r.status().ToString().c_str());
      rows_json += "{\"split\": \"" + std::string(name) +
                   "\", \"error\": \"" +
                   obs::JsonEscape(r.status().ToString()) + "\"}";
      return;
    }
    printf("%-10s %14llu %14.1f %12.2f %12.2f %12.2f\n", name,
           static_cast<unsigned long long>(r->device_rows),
           r->transferred_bytes / 1024.0, r->total_ms(),
           (r->host_stages.initial_wait + r->host_stages.later_waits) /
               kNanosPerMilli,
           r->device_stall_ns / kNanosPerMilli);
    rows_json += "{\"split\": \"" + std::string(name) + "\", ";
    AppendJsonNum(&rows_json, "interm_rows",
                  static_cast<double>(r->device_rows));
    rows_json += ", ";
    AppendJsonNum(&rows_json, "xfer_bytes",
                  static_cast<double>(r->transferred_bytes));
    rows_json += ", ";
    AppendJsonNum(&rows_json, "total_ms", r->total_ms());
    rows_json += ", ";
    AppendJsonNum(&rows_json, "host_wait_ms",
                  (r->host_stages.initial_wait + r->host_stages.later_waits) /
                      kNanosPerMilli);
    rows_json += ", ";
    AppendJsonNum(&rows_json, "dev_stall_ms",
                  r->device_stall_ns / kNanosPerMilli);
    rows_json += ", ";
    AppendJsonNum(&rows_json, "result_rows",
                  static_cast<double>(r->result_rows()));
    rows_json += "}";
  };

  show("host-only", {Strategy::kHostBlk, 0});
  for (int k = 0; k <= plan->num_tables() - 2; ++k) {
    char name[16];
    snprintf(name, sizeof(name), "H%d", k);
    show(name, {Strategy::kHybrid, k});
  }
  show("NDP", {Strategy::kFullNdp, 0});
  PrintRule();
  printf("paper shape: execution time tracks the size of the intermediate\n"
         "result set shipped at the split point; the best split keeps it\n"
         "small while still offloading early size reduction.\n");

  if (const std::string path = BenchJsonPath(); !path.empty()) {
    std::string j =
        "{\n  \"bench\": \"table3_intermediates\", \"query\": \"17b\",\n"
        "  \"rows\": [\n    " + rows_json + "\n  ]\n}\n";
    if (!obs::WriteFile(path, j)) {
      fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    fprintf(stderr, "# bench json: %s\n", path.c_str());
  }
  return 0;
}
