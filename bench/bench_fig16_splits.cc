// E6 / Fig. 16: the split-position sweep for JOB Q8c (paper Listing 3).
// Seven tables yield nine execution strategies: block-only, H0 through H6
// (hybrid splits at every position) and NDP-only. The cost model is forced
// to split at each position in turn.
// Expected shape: early splits (H0-H2) keep most compute on the host, late
// splits (H4+) overload the device; a middle split (paper: H3) is optimal.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();
  auto plan = PlanJob(env.get(), 8, 'c');
  if (!plan.ok()) {
    fprintf(stderr, "plan failed\n");
    return 1;
  }
  printf("\n%s\n", plan->Explain().c_str());

  printf("=== Fig. 16: Q8c execution time per split position [sim ms] ===\n");
  printf("%-12s %12s %14s %14s %14s\n", "strategy", "total ms", "host wait ms",
         "dev stall ms", "interm. rows");
  PrintRule();

  // All split positions are independent cold-start runs: execute the whole
  // sweep over the worker pool and print in position order.
  std::vector<ExecChoice> choices = {{Strategy::kHostBlk, 0}};
  std::vector<std::string> names = {"block-only"};
  for (int k = 0; k <= plan->num_tables() - 2; ++k) {
    choices.push_back({Strategy::kHybrid, k});
    names.push_back("H" + std::to_string(k));
  }
  choices.push_back({Strategy::kFullNdp, 0});
  names.push_back("NDP-only");

  auto results = RunAllChoices(env.get(), *plan, choices);
  for (size_t i = 0; i < choices.size(); ++i) {
    const auto& r = results[i];
    if (!r.ok()) {
      printf("%-12s (%s)\n", names[i].c_str(),
             r.status().ToString().c_str());
      continue;
    }
    printf("%-12s %12.2f %14.2f %14.2f %14llu\n", names[i].c_str(),
           r->total_ms(),
           (r->host_stages.initial_wait + r->host_stages.later_waits) /
               kNanosPerMilli,
           r->device_stall_ns / kNanosPerMilli,
           static_cast<unsigned long long>(r->device_rows));
  }
  PrintRule();
  printf("optimizer's pick for this query: %s\n",
         plan->recommended.ToString().c_str());
  return 0;
}
