// E3 / Fig. 13: quality of the optimizer's automated offloading decision.
// For every JOB query, the planner's recommended strategy/split is compared
// against the measured oracle best over {host, H0..Hx, NDP}:
//   green  = the optimizer picked the best strategy,
//   yellow = within 25% of the best (a "nearly optimal" pick),
//   gray   = miss.
// Paper: best pick in 20.35%, acceptable in 11.50% -> suitable in ~31.8%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Strategy;

namespace {

std::string ChoiceKey(const ExecChoice& c) { return c.ToString(); }

}  // namespace

int main() {
  auto env = MakeJobEnv(0.0005);

  int total = 0, green = 0, yellow = 0, gray = 0;
  printf("\n=== Fig. 13: optimizer decision vs oracle best ===\n");
  printf("%-6s %-12s %-12s %10s %10s  %s\n", "query", "picked", "oracle",
         "t_pick", "t_best", "class");
  PrintRule();

  for (const auto& id : job::AllJobQueries()) {
    auto plan = PlanJob(env.get(), id.group, id.variant);
    if (!plan.ok()) continue;

    // Oracle sweep: every candidate is an independent cold-start run, so
    // fan them all over the worker pool at once.
    std::vector<ExecChoice> candidates = {{Strategy::kHostBlk, 0},
                                          {Strategy::kFullNdp, 0}};
    for (int k = 0; k <= plan->num_tables() - 2; ++k) {
      candidates.push_back({Strategy::kHybrid, k});
    }
    auto results = RunAllChoices(env.get(), *plan, candidates);
    double best_t = -1;
    ExecChoice best_choice;
    double picked_t = -1;
    double host_t = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!results[i].ok()) continue;
      const double t = results[i]->total_ms();
      if (best_t < 0 || t < best_t) {
        best_t = t;
        best_choice = candidates[i];
      }
      if (i == 0) host_t = t;  // candidates[0] is the host baseline
      if (ChoiceKey(candidates[i]) == ChoiceKey(plan->recommended)) {
        picked_t = t;
      }
    }
    if (best_t < 0) continue;
    if (picked_t < 0) {
      // Recommended choice not executable (e.g. over budget): treat as host.
      picked_t = host_t >= 0 ? host_t : best_t * 10;
    }
    ++total;

    const char* cls;
    if (ChoiceKey(plan->recommended) == ChoiceKey(best_choice)) {
      cls = "green";
      ++green;
    } else if (picked_t <= best_t * 1.25) {
      cls = "yellow";
      ++yellow;
    } else {
      cls = "gray";
      ++gray;
    }
    printf("%-6s %-12s %-12s %10.2f %10.2f  %s\n", id.ToString().c_str(),
           plan->recommended.ToString().c_str(),
           best_choice.ToString().c_str(), picked_t, best_t, cls);
  }

  PrintRule();
  printf("queries:                 %d\n", total);
  printf("best pick (green):       %d (%.2f%%)  (paper: 20.35%%)\n", green,
         100.0 * green / total);
  printf("acceptable (yellow):     %d (%.2f%%)  (paper: 11.50%%)\n", yellow,
         100.0 * yellow / total);
  printf("suitable total:          %.1f%%        (paper: ~31.8%%)\n",
         100.0 * (green + yellow) / total);
  printf("miss (gray):             %d (%.2f%%)\n", gray, 100.0 * gray / total);
  return 0;
}
