// A1: on-device join-buffer sizing ablation (paper Sect. 5, Baselines:
// "smaller buffer sizes affect the on-device performance, due to more
// frequent buffer refreshes ... a buffer size of >= 512 KB [is] reasonable
// for a BNL-join, whereas a BNLI-join is less affected").
// Sweeps the join buffer for an on-device 2-table join under both
// algorithms. Buffer sizes are scaled with the dataset like all other
// memory knobs.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Query;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();

  // Join with a mid-size outer so the buffer actually matters: keyword-
  // filtered movie_keyword joined with title.
  Query q;
  q.name = "buffer_ablation";
  q.tables.push_back({"movie_keyword", "mk", nullptr});
  q.tables.push_back({"title", "t", nullptr});
  q.joins.push_back({"mk", "movie_id", "t", "id"});
  q.select_columns = {"mk.id", "t.title"};

  printf("\n=== A1: on-device join buffer sweep [sim ms] ===\n");
  printf("%12s %14s %14s\n", "buffer KiB", "NDP BNL", "NDP BNLI");
  PrintRule();

  for (uint64_t kib : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    double times[2] = {-1, -1};
    int idx = 0;
    for (auto algo : {nkv::JoinAlgo::kBNLJ, nkv::JoinAlgo::kBNLJI}) {
      hybrid::PlannerConfig cfg = env->planner_config;
      cfg.buffers.join_buffer_bytes = kib << 10;
      hybrid::Planner planner(env->catalog.get(), &env->hw, cfg);
      hybrid::HybridExecutor executor(env->catalog.get(), env->storage.get(),
                                      &env->hw, cfg);
      auto plan = planner.PlanQuery(q);
      if (!plan.ok()) continue;
      for (size_t i = 1; i < plan->order.size(); ++i) {
        plan->order[i].algo = algo;
      }
      lsm::BlockCache cache(env->storage->TotalBytes() * 2 / 5);
      auto r = executor.Run(*plan, {Strategy::kFullNdp, 0}, &cache);
      times[idx++] = r.ok() ? r->total_ms() : -1;
    }
    printf("%12llu %14.3f %14.3f\n", static_cast<unsigned long long>(kib),
           times[0], times[1]);
  }
  PrintRule();
  printf("paper shape: BNL improves steeply with larger buffers (fewer\n"
         "inner re-scans) and flattens once the outer fits; BNLI is nearly\n"
         "insensitive to the buffer size.\n");
  return 0;
}
