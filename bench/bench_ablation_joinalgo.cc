// A3: on-device join-algorithm comparison. The paper (Sect. 5, Workloads)
// states that the BNL-join "is preferred over our grace hash join and
// enforced for a fair comparison"; NLJ is the naive baseline. This ablation
// runs the same 2-table on-device join under NLJ, BNLJ, GHJ and BNLJI.

#include <cstdio>

#include "bench/bench_common.h"

using namespace hybridndp;
using namespace hybridndp::bench;
using hybrid::ExecChoice;
using hybrid::Query;
using hybrid::Strategy;

int main() {
  auto env = MakeJobEnv();

  Query q;
  q.name = "joinalgo";
  const int64_t hi = static_cast<int64_t>(
      env->catalog->Get("movie_link")->row_count() / 3);
  q.tables.push_back({"movie_link", "ml",
                      exec::Expr::CmpInt("ml.id", exec::CmpOp::kLe, hi)});
  q.tables.push_back({"movie_keyword", "mk", nullptr});
  q.joins.push_back({"ml", "movie_id", "mk", "movie_id"});
  q.select_columns = {"ml.id", "mk.id"};

  auto plan = env->planner->PlanQuery(q);
  if (!plan.ok()) {
    fprintf(stderr, "plan failed\n");
    return 1;
  }

  printf("\n=== A3: on-device join algorithms (Listing 2 shape) [sim ms] ===\n");
  printf("%-8s %12s %14s\n", "algo", "NDP ms", "result rows");
  PrintRule();
  for (auto algo : {nkv::JoinAlgo::kNLJ, nkv::JoinAlgo::kBNLJ,
                    nkv::JoinAlgo::kGHJ, nkv::JoinAlgo::kBNLJI}) {
    hybrid::Plan p = *plan;
    for (size_t i = 1; i < p.order.size(); ++i) p.order[i].algo = algo;
    auto r = RunChoice(env.get(), p, {Strategy::kFullNdp, 0});
    if (!r.ok()) {
      printf("%-8s (%s)\n", nkv::JoinAlgoName(algo),
             r.status().ToString().c_str());
      continue;
    }
    printf("%-8s %12.3f %14llu\n", nkv::JoinAlgoName(algo), r->total_ms(),
           static_cast<unsigned long long>(r->result_rows()));
  }
  PrintRule();
  printf("paper: BNL is preferred over GHJ on-device (partition spills hurt\n"
         "under the small DRAM budget); BNLJI wins when indices exist; NLJ\n"
         "re-scans the inner per outer row and loses by orders of magnitude.\n");
  return 0;
}
