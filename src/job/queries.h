// The 113 queries of the Join-Order Benchmark (33 groups, variants a-f),
// expressed against our engine. Join graphs follow the original JOB
// queries; predicates target the synthetic generator's vocabularies so the
// selectivity structure (highly selective dimension filters, LIKE patterns
// on notes/titles, FK fan-outs) carries over. Groups 1 and 8 follow the
// paper's Listings 1 and 3 verbatim.

#pragma once

#include <string>
#include <vector>

#include "hybrid/query.h"

namespace hybridndp::job {

/// Identifier of one JOB query, e.g. {8, 'c'}.
struct JobQueryId {
  int group = 1;
  char variant = 'a';

  std::string ToString() const {
    return std::to_string(group) + std::string(1, variant);
  }
};

/// All 113 query ids in benchmark order (1a..33c).
std::vector<JobQueryId> AllJobQueries();

/// Number of variants in a group (matches the original JOB distribution).
int NumVariants(int group);

/// Build one JOB query. Fails for unknown group/variant.
Result<hybrid::Query> MakeJobQuery(const JobQueryId& id);

}  // namespace hybridndp::job
