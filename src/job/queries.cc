#include "job/queries.h"

#include <map>

namespace hybridndp::job {

using exec::AggSpec;
using exec::AggFn;
using exec::CmpOp;
using exec::Expr;
using hybrid::JoinEdge;
using hybrid::Query;
using hybrid::TableRef;

namespace {

/// Small builder DSL for query definitions.
struct QB {
  Query q;

  void T(const char* alias, const char* table, Expr::Ptr pred = nullptr) {
    q.tables.push_back(TableRef{table, alias, std::move(pred)});
  }
  void J(const char* a, const char* ac, const char* b, const char* bc) {
    q.joins.push_back(JoinEdge{a, ac, b, bc});
  }
  void Min(const char* col, const char* out) {
    q.has_agg = true;
    q.aggs.push_back(AggSpec{AggFn::kMin, col, out});
  }
};

Expr::Ptr Eq(const char* col, const char* v) {
  return Expr::CmpStr(col, CmpOp::kEq, v);
}
Expr::Ptr Like(const char* col, const char* pat) {
  return Expr::Like(col, pat);
}
Expr::Ptr NotLike(const char* col, const char* pat) {
  return Expr::Like(col, pat, /*negated=*/true);
}
Expr::Ptr AndE(std::vector<Expr::Ptr> v) { return Expr::And(std::move(v)); }
Expr::Ptr OrE(std::vector<Expr::Ptr> v) { return Expr::Or(std::move(v)); }

/// Variant index 0..5.
int VI(char v) { return v - 'a'; }

const char* InfoKind(char v) {
  static const char* kInfos[] = {"top 250 rank", "bottom 10 rank", "rating",
                                 "votes", "genres", "budget"};
  return kInfos[VI(v) % 6];
}
const char* KeywordPick(char v) {
  static const char* kKw[] = {"sequel",   "superhero", "murder",
                              "violence", "revenge",   "martial-arts"};
  return kKw[VI(v) % 6];
}
const char* GenrePick(char v) {
  static const char* kGenres[] = {"Drama", "Horror", "Comedy",
                                  "Action", "Thriller", "Sci-Fi"};
  return kGenres[VI(v) % 6];
}
const char* CountryCodePick(char v) {
  static const char* kCodes[] = {"[us]", "[de]", "[gb]", "[fr]", "[jp]",
                                 "[it]"};
  return kCodes[VI(v) % 6];
}
const char* RolePick(char v) {
  // Q8c/Q8d of the paper use 'writer' / 'costume designer'.
  static const char* kRoles[] = {"actor", "actress", "writer",
                                 "costume designer", "producer", "director"};
  return kRoles[VI(v) % 6];
}
int YearLo(char v) { return 1990 + VI(v) * 5; }

// ---- group builders -------------------------------------------------------

void G1(QB& b, char v) {
  // Paper Listing 1 (JOB Q1).
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("it", "info_type", Eq("it.info", InfoKind(v)));
  b.T("mi_idx", "movie_info_idx");
  b.T("t", "title");
  b.T("mc", "movie_companies",
      v == 'd' ? AndE({NotLike("mc.note", "%(as Metro-Goldwyn-Mayer Pictures)%"),
                       Like("mc.note", "%(co-production)%")})
               : AndE({NotLike("mc.note", "%(as Metro-Goldwyn-Mayer Pictures)%"),
                       OrE({Like("mc.note", "%(co-production)%"),
                            Like("mc.note", "%(presents)%")})}));
  b.J("ct", "id", "mc", "company_type_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("mc", "movie_id", "mi_idx", "movie_id");
  b.J("it", "id", "mi_idx", "info_type_id");
  b.Min("mc.note", "production_note");
  b.Min("t.title", "movie_title");
  b.Min("t.production_year", "movie_year");
}

void G2(QB& b, char v) {
  b.T("cn", "company_name", Eq("cn.country_code", CountryCodePick(v)));
  b.T("k", "keyword", Eq("k.keyword", "character-name-in-title"));
  b.T("mc", "movie_companies");
  b.T("mk", "movie_keyword");
  b.T("t", "title");
  b.J("cn", "id", "mc", "company_id");
  b.J("mc", "movie_id", "t", "id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "movie_id", "mc", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.Min("t.title", "movie_title");
}

void G3(QB& b, char v) {
  b.T("k", "keyword", Like("k.keyword", "%sequel%"));
  b.T("mi", "movie_info", Eq("mi.info", GenrePick(v)));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2000 + VI(v) * 5));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "movie_id", "mi", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.Min("t.title", "movie_title");
}

void G4(QB& b, char v) {
  b.T("it", "info_type", Eq("it.info", "rating"));
  b.T("k", "keyword", Like("k.keyword", "%sequel%"));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kGt, std::to_string(5 + VI(v))));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2005));
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "movie_id", "mi_idx", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("it", "id", "mi_idx", "info_type_id");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "movie_title");
}

void G5(QB& b, char v) {
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("it", "info_type");
  b.T("mc", "movie_companies",
      v == 'a' ? Like("mc.note", "%(theatrical)%")
               : Like("mc.note", "%(VHS)%"));
  b.T("mi", "movie_info",
      Expr::InStr("mi.info", {GenrePick(v), "Sweden", "Germany", "USA"}));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, YearLo(v)));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "movie_id", "mi", "movie_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.J("it", "id", "mi", "info_type_id");
  b.Min("t.title", "typical_european_movie");
}

void G6(QB& b, char v) {
  b.T("ci", "cast_info");
  b.T("k", "keyword", Eq("k.keyword", KeywordPick(v)));
  b.T("mk", "movie_keyword");
  b.T("n", "name",
      VI(v) % 2 == 0 ? Like("n.name", "B%") : Like("n.name", "%Tim%"));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 1995 + VI(v) * 4));
  b.J("k", "id", "mk", "keyword_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.J("n", "id", "ci", "person_id");
  b.Min("k.keyword", "movie_keyword");
  b.Min("n.name", "actor_name");
  b.Min("t.title", "hero_movie");
}

void G7(QB& b, char v) {
  b.T("an", "aka_name", Like("an.name", "%a%"));
  b.T("it", "info_type", Eq("it.info", "mini biography"));
  b.T("lt", "link_type", Eq("lt.link", VI(v) == 0 ? "features" : "follows"));
  b.T("ml", "movie_link");
  b.T("n", "name",
      AndE({Like("n.name", VI(v) == 2 ? "X%" : "B%"), Eq("n.gender", "m")}));
  b.T("pi", "person_info", Eq("pi.info", "Volker Boehm"));
  b.T("t", "title",
      Expr::Between("t.production_year", 1980, 1995 + VI(v) * 8));
  b.J("n", "id", "an", "person_id");
  b.J("n", "id", "pi", "person_id");
  b.J("it", "id", "pi", "info_type_id");
  b.J("t", "id", "ml", "linked_movie_id");
  b.J("lt", "id", "ml", "link_type_id");
  b.Min("n.name", "of_person");
  b.Min("t.title", "biography_movie");
  // Connect persons to movies through cast_info is absent in JOB q7; the
  // original links via ml.linked_movie_id = t.id only. Keep graph connected:
  b.T("ci", "cast_info");
  b.J("n", "id", "ci", "person_id");
  b.J("t", "id", "ci", "movie_id");
}

void G8(QB& b, char v) {
  // Paper Listing 3 (JOB Q8): 7 tables; 8c filters rt.role = 'writer',
  // 8d 'costume designer'.
  b.T("a1", "aka_name");
  b.T("ci", "cast_info", Like("ci.note", "%(voice%"));
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("mc", "movie_companies");
  b.T("n1", "name");
  b.T("rt", "role_type", Eq("rt.role", RolePick(v)));
  b.T("t", "title");
  b.J("a1", "person_id", "n1", "id");
  b.J("n1", "id", "ci", "person_id");
  b.J("ci", "movie_id", "t", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "company_id", "cn", "id");
  b.J("ci", "role_id", "rt", "id");
  b.Min("a1.name", "writer_pseudo_name");
  b.Min("t.title", "movie_title");
}

void G9(QB& b, char v) {
  b.T("an", "aka_name");
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(voice)", "(voice) (uncredited)",
                              "(voice: English version)"}));
  b.T("cn", "company_name", Eq("cn.country_code", CountryCodePick(v)));
  b.T("mc", "movie_companies", Like("mc.note", "%(USA)%"));
  b.T("n", "name", Eq("n.gender", VI(v) % 2 == 0 ? "f" : "m"));
  b.T("rt", "role_type", Eq("rt.role", VI(v) < 2 ? "actress" : "actor"));
  b.T("t", "title");
  b.J("ci", "movie_id", "t", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("ci", "movie_id", "mc", "movie_id");
  b.J("mc", "company_id", "cn", "id");
  b.J("ci", "role_id", "rt", "id");
  b.J("n", "id", "ci", "person_id");
  b.J("an", "person_id", "n", "id");
  b.Min("an.name", "alternative_name");
  b.Min("t.title", "movie");
}

void G10(QB& b, char v) {
  b.T("chn", "char_name");
  b.T("ci", "cast_info", Like("ci.note", "%(producer)%"));
  b.T("cn", "company_name", Eq("cn.country_code", CountryCodePick(v)));
  b.T("ct", "company_type");
  b.T("mc", "movie_companies");
  b.T("rt", "role_type");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, YearLo(v)));
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("ci", "movie_id", "mc", "movie_id");
  b.J("mc", "company_type_id", "ct", "id");
  b.J("mc", "company_id", "cn", "id");
  b.J("ci", "role_id", "rt", "id");
  b.J("chn", "id", "ci", "person_role_id");
  b.Min("chn.name", "character");
  b.Min("t.title", "movie");
}

void G11(QB& b, char v) {
  b.T("cn", "company_name",
      AndE({Eq("cn.country_code", "[us]"), Like("cn.name", "%Film%")}));
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("k", "keyword", Eq("k.keyword", KeywordPick(v)));
  b.T("lt", "link_type", Like("lt.link", "%follow%"));
  b.T("mc", "movie_companies");
  b.T("mk", "movie_keyword");
  b.T("ml", "movie_link");
  b.T("t", "title",
      Expr::Between("t.production_year", 1950, 2000 + VI(v) * 5));
  b.J("t", "id", "ml", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mk", "movie_id", "ml", "movie_id");
  b.J("mk", "movie_id", "mc", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("mc", "company_type_id", "ct", "id");
  b.J("mc", "company_id", "cn", "id");
  b.J("lt", "id", "ml", "link_type_id");
  b.Min("cn.name", "from_company");
  b.Min("lt.link", "movie_link_type");
  b.Min("t.title", "sequel_movie");
}

void G12(QB& b, char v) {
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("it1", "info_type", Eq("it1.info", "genres"));
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Eq("mi.info", GenrePick(v)));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kGt, std::to_string(4 + VI(v))));
  b.T("t", "title",
      Expr::Between("t.production_year", 2000, 2010 + VI(v) * 3));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("mi", "info_type_id", "it1", "id");
  b.J("mi_idx", "info_type_id", "it2", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "movie_id", "mi", "movie_id");
  b.J("mc", "movie_id", "mi_idx", "movie_id");
  b.J("mc", "company_type_id", "ct", "id");
  b.J("mc", "company_id", "cn", "id");
  b.Min("cn.name", "movie_company");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "drama_horror_movie");
}

void G13(QB& b, char v) {
  b.T("cn", "company_name", Eq("cn.country_code", CountryCodePick(v)));
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("it1", "info_type", Eq("it1.info", "rating"));
  b.T("it2", "info_type", Eq("it2.info", "release dates"));
  b.T("kt", "kind_type", Eq("kt.kind", "movie"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info");
  b.T("mi_idx", "movie_info_idx");
  b.T("t", "title");
  b.J("mi", "movie_id", "t", "id");
  b.J("it2", "id", "mi", "info_type_id");
  b.J("kt", "id", "t", "kind_id");
  b.J("mc", "movie_id", "t", "id");
  b.J("cn", "id", "mc", "company_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.J("mi_idx", "movie_id", "t", "id");
  b.J("it1", "id", "mi_idx", "info_type_id");
  b.J("mi", "movie_id", "mi_idx", "movie_id");
  b.J("mi", "movie_id", "mc", "movie_id");
  b.Min("mi.info", "release_date");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "german_movie");
}

void G14(QB& b, char v) {
  b.T("it1", "info_type", Eq("it1.info", "countries"));
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword", {"murder", "blood", "gore", KeywordPick(v)}));
  b.T("kt", "kind_type", Eq("kt.kind", "movie"));
  b.T("mi", "movie_info",
      Expr::InStr("mi.info", {"USA", "Sweden", "Germany", "Denmark"}));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kLt, std::to_string(6 + VI(v))));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, YearLo(v)));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "kind_id", "kt", "id");
  b.J("mk", "movie_id", "mi", "movie_id");
  b.J("mk", "movie_id", "mi_idx", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "northern_dark_movie");
}

void G15(QB& b, char v) {
  b.T("at", "aka_title");
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("ct", "company_type");
  b.T("it1", "info_type", Eq("it1.info", "release dates"));
  b.T("k", "keyword", Like("k.keyword", "%second%"));
  b.T("mc", "movie_companies", Like("mc.note", "%(worldwide)%"));
  b.T("mi", "movie_info", Like("mi.info", "USA:%"));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 1995 + VI(v) * 5));
  b.J("t", "id", "at", "movie_id");
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mk", "movie_id", "mi", "movie_id");
  b.J("mc", "movie_id", "mi", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.Min("mi.info", "release_date");
  b.Min("t.title", "internet_movie");
}

void G16(QB& b, char v) {
  b.T("an", "aka_name");
  b.T("ci", "cast_info");
  b.T("cn", "company_name", Eq("cn.country_code", CountryCodePick(v)));
  b.T("k", "keyword", Eq("k.keyword", "character-name-in-title"));
  b.T("mc", "movie_companies");
  b.T("mk", "movie_keyword");
  b.T("n", "name");
  b.T("t", "title",
      Expr::Between("t.production_year", 1990, 2000 + VI(v) * 6));
  b.J("an", "person_id", "n", "id");
  b.J("n", "id", "ci", "person_id");
  b.J("ci", "movie_id", "t", "id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "keyword_id", "k", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "company_id", "cn", "id");
  b.J("ci", "movie_id", "mc", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.Min("an.name", "cool_actor_pseudonym");
  b.Min("t.title", "series_named_after_char");
}

void G17(QB& b, char v) {
  // Paper Exp. 1 uses 17b.
  static const char* kPatterns[] = {"B%", "%Tim%", "X%", "%us", "%a%", "C%"};
  b.T("ci", "cast_info");
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("k", "keyword", Eq("k.keyword", "character-name-in-title"));
  b.T("mc", "movie_companies");
  b.T("mk", "movie_keyword");
  b.T("n", "name", Like("n.name", kPatterns[VI(v) % 6]));
  b.T("t", "title");
  b.J("n", "id", "ci", "person_id");
  b.J("ci", "movie_id", "t", "id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "keyword_id", "k", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "company_id", "cn", "id");
  b.J("ci", "movie_id", "mc", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.Min("n.name", "member_in_charnamed_movie");
}

void G18(QB& b, char v) {
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(producer)", "(executive producer)"}));
  b.T("it1", "info_type", Eq("it1.info", "budget"));
  b.T("it2", "info_type", Eq("it2.info", "votes"));
  b.T("mi", "movie_info");
  b.T("mi_idx", "movie_info_idx");
  b.T("n", "name",
      AndE({Eq("n.gender", "m"), Like("n.name", VI(v) == 0 ? "%Tim%" : "B%")}));
  b.T("t", "title");
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("ci", "movie_id", "mi", "movie_id");
  b.J("mi", "movie_id", "mi_idx", "movie_id");
  b.J("n", "id", "ci", "person_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.Min("mi.info", "movie_budget");
  b.Min("mi_idx.info", "movie_votes");
  b.Min("t.title", "movie_title");
}

void G19(QB& b, char v) {
  b.T("an", "aka_name");
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(voice)", "(voice: English version)"}));
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("it", "info_type", Eq("it.info", "release dates"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Like("mi.info", "USA:%"));
  b.T("n", "name", Eq("n.gender", "f"));
  b.T("rt", "role_type", Eq("rt.role", "actress"));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 1995 + VI(v) * 5));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("mc", "movie_id", "ci", "movie_id");
  b.J("mi", "movie_id", "ci", "movie_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("it", "id", "mi", "info_type_id");
  b.J("n", "id", "ci", "person_id");
  b.J("rt", "id", "ci", "role_id");
  b.J("n", "id", "an", "person_id");
  b.Min("n.name", "voicing_actress");
  b.Min("t.title", "voiced_movie");
}

void G20(QB& b, char v) {
  b.T("cct1", "comp_cast_type", Eq("cct1.kind", "cast"));
  b.T("cct2", "comp_cast_type", Like("cct2.kind", "%complete%"));
  b.T("chn", "char_name", Like("chn.name", VI(v) == 0 ? "%Queen%" : "%a%"));
  b.T("ci", "cast_info");
  b.T("cc", "complete_cast");
  b.T("k", "keyword", Eq("k.keyword", KeywordPick(v)));
  b.T("kt", "kind_type", Eq("kt.kind", "movie"));
  b.T("mk", "movie_keyword");
  b.T("n", "name");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2000));
  b.J("kt", "id", "t", "kind_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("mk", "movie_id", "ci", "movie_id");
  b.J("ci", "person_role_id", "chn", "id");
  b.J("n", "id", "ci", "person_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.J("cct2", "id", "cc", "status_id");
  b.Min("t.title", "complete_hero_movie");
}

void G21(QB& b, char v) {
  b.T("cn", "company_name",
      AndE({Eq("cn.country_code", CountryCodePick(v)),
            Like("cn.name", "%Film%")}));
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("k", "keyword", Eq("k.keyword", KeywordPick(v)));
  b.T("lt", "link_type", Like("lt.link", "%follow%"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Expr::InStr("mi.info", {"Sweden", "Germany", "USA"}));
  b.T("mk", "movie_keyword");
  b.T("ml", "movie_link");
  b.T("t", "title");
  b.J("lt", "id", "ml", "link_type_id");
  b.J("ml", "movie_id", "t", "id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "keyword_id", "k", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "company_type_id", "ct", "id");
  b.J("mc", "company_id", "cn", "id");
  b.J("mi", "movie_id", "t", "id");
  b.J("ml", "movie_id", "mk", "movie_id");
  b.Min("cn.name", "company_name");
  b.Min("lt.link", "link_type");
  b.Min("t.title", "western_follow_up");
}

void G22(QB& b, char v) {
  b.T("cn", "company_name", NotLike("cn.country_code", "%us%"));
  b.T("ct", "company_type");
  b.T("it1", "info_type", Eq("it1.info", "countries"));
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword", {"murder", "blood", "violence", KeywordPick(v)}));
  b.T("kt", "kind_type",
      Expr::InStr("kt.kind", {"movie", "episode"}));
  b.T("mc", "movie_companies", NotLike("mc.note", "%(USA)%"));
  b.T("mi", "movie_info",
      Expr::InStr("mi.info", {"Germany", "Sweden", "Italy", "Japan"}));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kLt, std::to_string(7 + VI(v) % 3)));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2005 + VI(v)));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "kind_id", "kt", "id");
  b.J("mk", "movie_id", "mi", "movie_id");
  b.J("mk", "movie_id", "mi_idx", "movie_id");
  b.J("mk", "movie_id", "mc", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.J("cn", "id", "mc", "company_id");
  b.Min("cn.name", "movie_company");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "western_violent_movie");
}

void G23(QB& b, char v) {
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type", Eq("cct1.kind", "complete+verified"));
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("ct", "company_type");
  b.T("it1", "info_type", Eq("it1.info", "release dates"));
  b.T("kt", "kind_type", Eq("kt.kind", VI(v) == 0 ? "movie" : "tv movie"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Like("mi.info", "USA:%"));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 1990 + VI(v) * 5));
  b.J("kt", "id", "t", "kind_id");
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("mc", "movie_id", "mi", "movie_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("cct1", "id", "cc", "status_id");
  b.Min("kt.kind", "movie_kind");
  b.Min("t.title", "complete_us_internet_movie");
}

void G24(QB& b, char v) {
  b.T("an", "aka_name");
  b.T("chn", "char_name");
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(voice)", "(voice: English version)"}));
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("it", "info_type", Eq("it.info", "release dates"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword",
                  {"hero", "martial-arts", "hand-to-hand-combat",
                   KeywordPick(v)}));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Like("mi.info", "USA:%"));
  b.T("mk", "movie_keyword");
  b.T("n", "name", Eq("n.gender", "f"));
  b.T("rt", "role_type", Eq("rt.role", "actress"));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2005 + VI(v) * 3));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mc", "movie_id", "ci", "movie_id");
  b.J("mi", "movie_id", "ci", "movie_id");
  b.J("mk", "movie_id", "ci", "movie_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("it", "id", "mi", "info_type_id");
  b.J("n", "id", "ci", "person_id");
  b.J("rt", "id", "ci", "role_id");
  b.J("n", "id", "an", "person_id");
  b.J("chn", "id", "ci", "person_role_id");
  b.J("k", "id", "mk", "keyword_id");
  b.Min("chn.name", "voiced_char_name");
  b.Min("n.name", "voicing_actress");
  b.Min("t.title", "voiced_action_movie");
}

void G25(QB& b, char v) {
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(writer)", "(story)", "(screenplay)"}));
  b.T("it1", "info_type", Eq("it1.info", "genres"));
  b.T("it2", "info_type", Eq("it2.info", "votes"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword", {"murder", "blood", "gore", KeywordPick(v)}));
  b.T("mi", "movie_info", Eq("mi.info", "Horror"));
  b.T("mi_idx", "movie_info_idx");
  b.T("mk", "movie_keyword");
  b.T("n", "name", Eq("n.gender", "m"));
  b.T("t", "title");
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("ci", "movie_id", "mi", "movie_id");
  b.J("ci", "movie_id", "mi_idx", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.J("n", "id", "ci", "person_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.J("k", "id", "mk", "keyword_id");
  b.Min("mi.info", "movie_budget");
  b.Min("mi_idx.info", "movie_votes");
  b.Min("n.name", "male_writer");
  b.Min("t.title", "violent_movie_title");
}

void G26(QB& b, char v) {
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type", Eq("cct1.kind", "cast"));
  b.T("chn", "char_name", Like("chn.name", "%man%"));
  b.T("ci", "cast_info");
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword",
                  {"superhero", "marvel-cinematic-universe", "web",
                   KeywordPick(v)}));
  b.T("kt", "kind_type", Eq("kt.kind", "movie"));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kGt, std::to_string(6 + VI(v))));
  b.T("mk", "movie_keyword");
  b.T("n", "name");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2000 + VI(v) * 4));
  b.J("kt", "id", "t", "kind_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("mk", "movie_id", "ci", "movie_id");
  b.J("ci", "person_role_id", "chn", "id");
  b.J("n", "id", "ci", "person_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.Min("chn.name", "character_name");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "complete_hero_movie");
}

void G27(QB& b, char v) {
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type",
      Expr::InStr("cct1.kind", {"cast", "crew"}));
  b.T("cct2", "comp_cast_type", Eq("cct2.kind", "complete"));
  b.T("cn", "company_name",
      AndE({Eq("cn.country_code", CountryCodePick(v)),
            Like("cn.name", "%Film%")}));
  b.T("ct", "company_type", Eq("ct.kind", "production companies"));
  b.T("k", "keyword", Eq("k.keyword", "sequel"));
  b.T("lt", "link_type", Like("lt.link", "%follow%"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Expr::InStr("mi.info", {"Sweden", "Germany"}));
  b.T("mk", "movie_keyword");
  b.T("ml", "movie_link");
  b.T("t", "title",
      Expr::Between("t.production_year", 1950, 2000 + VI(v) * 6));
  b.J("lt", "id", "ml", "link_type_id");
  b.J("ml", "movie_id", "t", "id");
  b.J("t", "id", "mk", "movie_id");
  b.J("mk", "keyword_id", "k", "id");
  b.J("t", "id", "mc", "movie_id");
  b.J("mc", "company_type_id", "ct", "id");
  b.J("mc", "company_id", "cn", "id");
  b.J("mi", "movie_id", "t", "id");
  b.J("t", "id", "cc", "movie_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.J("cct2", "id", "cc", "status_id");
  b.J("ml", "movie_id", "mk", "movie_id");
  b.Min("cn.name", "producing_company");
  b.Min("lt.link", "link_type");
  b.Min("t.title", "complete_western_sequel");
}

void G28(QB& b, char v) {
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type", Eq("cct1.kind", "crew"));
  b.T("cct2", "comp_cast_type", Expr::CmpStr("cct2.kind", CmpOp::kNe, "complete+verified"));
  b.T("cn", "company_name", NotLike("cn.country_code", "%us%"));
  b.T("ct", "company_type");
  b.T("it1", "info_type", Eq("it1.info", "countries"));
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword", {"murder", "violence", KeywordPick(v)}));
  b.T("kt", "kind_type", Expr::InStr("kt.kind", {"movie", "episode"}));
  b.T("mc", "movie_companies", NotLike("mc.note", "%(USA)%"));
  b.T("mi", "movie_info",
      Expr::InStr("mi.info", {"Germany", "Sweden", "Japan"}));
  b.T("mi_idx", "movie_info_idx",
      Expr::CmpStr("mi_idx.info", CmpOp::kLt, std::to_string(8 - VI(v))));
  b.T("mk", "movie_keyword");
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2000 + VI(v) * 2));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("t", "kind_id", "kt", "id");
  b.J("mk", "movie_id", "mi", "movie_id");
  b.J("mk", "movie_id", "mi_idx", "movie_id");
  b.J("mk", "movie_id", "mc", "movie_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.J("ct", "id", "mc", "company_type_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.J("cct2", "id", "cc", "status_id");
  b.Min("cn.name", "movie_company");
  b.Min("mi_idx.info", "rating");
  b.Min("t.title", "complete_euro_dark_movie");
}

void G29(QB& b, char v) {
  b.T("an", "aka_name");
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type", Eq("cct1.kind", "cast"));
  b.T("chn", "char_name", Eq("chn.name", VI(v) == 0 ? "Queen" : "Queen a"));
  b.T("ci", "cast_info", Expr::InStr("ci.note", {"(voice)"}));
  b.T("cn", "company_name", Eq("cn.country_code", "[us]"));
  b.T("it", "info_type", Eq("it.info", "release dates"));
  b.T("it3", "info_type", Eq("it3.info", "trivia"));
  b.T("k", "keyword", Eq("k.keyword", "computer"));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Like("mi.info", "USA:%"));
  b.T("mk", "movie_keyword");
  b.T("n", "name", Eq("n.gender", "f"));
  b.T("pi", "person_info");
  b.T("rt", "role_type", Eq("rt.role", "actress"));
  b.T("t", "title",
      Expr::Between("t.production_year", 2000, 2010 + VI(v) * 5));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("mc", "movie_id", "ci", "movie_id");
  b.J("mi", "movie_id", "ci", "movie_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("it", "id", "mi", "info_type_id");
  b.J("n", "id", "ci", "person_id");
  b.J("rt", "id", "ci", "role_id");
  b.J("n", "id", "an", "person_id");
  b.J("chn", "id", "ci", "person_role_id");
  b.J("n", "id", "pi", "person_id");
  b.J("it3", "id", "pi", "info_type_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.Min("chn.name", "voiced_char");
  b.Min("n.name", "voicing_actress");
  b.Min("t.title", "voiced_animation");
}

void G30(QB& b, char v) {
  b.T("cc", "complete_cast");
  b.T("cct1", "comp_cast_type",
      Expr::InStr("cct1.kind", {"cast", "crew"}));
  b.T("cct2", "comp_cast_type", Eq("cct2.kind", "complete+verified"));
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(writer)", "(story)", "(screenplay)"}));
  b.T("it1", "info_type", Eq("it1.info", "genres"));
  b.T("it2", "info_type", Eq("it2.info", "votes"));
  b.T("k", "keyword",
      Expr::InStr("k.keyword", {"murder", "violence", "blood", KeywordPick(v)}));
  b.T("mi", "movie_info",
      Expr::InStr("mi.info", {"Horror", "Thriller", GenrePick(v)}));
  b.T("mi_idx", "movie_info_idx");
  b.T("mk", "movie_keyword");
  b.T("n", "name", Eq("n.gender", "m"));
  b.T("t", "title",
      Expr::CmpInt("t.production_year", CmpOp::kGt, 2000 + VI(v) * 3));
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "cc", "movie_id");
  b.J("ci", "movie_id", "mi", "movie_id");
  b.J("ci", "movie_id", "mi_idx", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.J("n", "id", "ci", "person_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.J("k", "id", "mk", "keyword_id");
  b.J("cct1", "id", "cc", "subject_id");
  b.J("cct2", "id", "cc", "status_id");
  b.Min("mi.info", "movie_budget");
  b.Min("mi_idx.info", "movie_votes");
  b.Min("n.name", "writer");
  b.Min("t.title", "complete_violent_movie");
}

void G31(QB& b, char v) {
  b.T("ci", "cast_info",
      Expr::InStr("ci.note", {"(writer)", "(story)", "(screenplay)"}));
  b.T("cn", "company_name", Like("cn.name", "%Warner%"));
  b.T("it1", "info_type", Eq("it1.info", "genres"));
  b.T("it2", "info_type", Eq("it2.info", "votes"));
  b.T("k", "keyword", Expr::InStr("k.keyword", {"murder", KeywordPick(v)}));
  b.T("mc", "movie_companies");
  b.T("mi", "movie_info", Expr::InStr("mi.info", {"Horror", "Action"}));
  b.T("mi_idx", "movie_info_idx");
  b.T("mk", "movie_keyword");
  b.T("n", "name", Eq("n.gender", "m"));
  b.T("t", "title");
  b.J("t", "id", "mi", "movie_id");
  b.J("t", "id", "mi_idx", "movie_id");
  b.J("t", "id", "ci", "movie_id");
  b.J("t", "id", "mk", "movie_id");
  b.J("t", "id", "mc", "movie_id");
  b.J("ci", "movie_id", "mi", "movie_id");
  b.J("ci", "movie_id", "mi_idx", "movie_id");
  b.J("ci", "movie_id", "mk", "movie_id");
  b.J("cn", "id", "mc", "company_id");
  b.J("n", "id", "ci", "person_id");
  b.J("it1", "id", "mi", "info_type_id");
  b.J("it2", "id", "mi_idx", "info_type_id");
  b.J("k", "id", "mk", "keyword_id");
  b.Min("mi.info", "movie_budget");
  b.Min("mi_idx.info", "movie_votes");
  b.Min("n.name", "writer");
  b.Min("t.title", "violent_liongate_movie");
}

void G32(QB& b, char v) {
  b.T("k", "keyword",
      Eq("k.keyword", VI(v) == 0 ? "character-name-in-title" : "sequel"));
  b.T("lt", "link_type");
  b.T("mk", "movie_keyword");
  b.T("ml", "movie_link");
  b.T("t1", "title");
  b.T("t2", "title");
  b.J("mk", "keyword_id", "k", "id");
  b.J("t1", "id", "mk", "movie_id");
  b.J("ml", "movie_id", "t1", "id");
  b.J("ml", "linked_movie_id", "t2", "id");
  b.J("lt", "id", "ml", "link_type_id");
  b.Min("lt.link", "link_type");
  b.Min("t1.title", "first_movie");
  b.Min("t2.title", "second_movie");
}

void G33(QB& b, char v) {
  b.T("cn1", "company_name", Eq("cn1.country_code", "[us]"));
  b.T("cn2", "company_name");
  b.T("it1", "info_type", Eq("it1.info", "rating"));
  b.T("it2", "info_type", Eq("it2.info", "rating"));
  b.T("kt1", "kind_type", Expr::InStr("kt1.kind", {"tv series", "episode"}));
  b.T("kt2", "kind_type", Expr::InStr("kt2.kind", {"tv series", "episode"}));
  b.T("lt", "link_type",
      Expr::InStr("lt.link", {"sequel", "follows", "followed by"}));
  b.T("mc1", "movie_companies");
  b.T("mc2", "movie_companies");
  b.T("mi_idx1", "movie_info_idx");
  b.T("mi_idx2", "movie_info_idx",
      Expr::CmpStr("mi_idx2.info", CmpOp::kLt, std::to_string(4 + VI(v))));
  b.T("ml", "movie_link");
  b.T("t1", "title");
  b.T("t2", "title",
      Expr::Between("t2.production_year", 2000, 2010 + VI(v) * 5));
  b.J("lt", "id", "ml", "link_type_id");
  b.J("t1", "id", "ml", "movie_id");
  b.J("t2", "id", "ml", "linked_movie_id");
  b.J("it1", "id", "mi_idx1", "info_type_id");
  b.J("t1", "id", "mi_idx1", "movie_id");
  b.J("kt1", "id", "t1", "kind_id");
  b.J("cn1", "id", "mc1", "company_id");
  b.J("t1", "id", "mc1", "movie_id");
  b.J("it2", "id", "mi_idx2", "info_type_id");
  b.J("t2", "id", "mi_idx2", "movie_id");
  b.J("kt2", "id", "t2", "kind_id");
  b.J("cn2", "id", "mc2", "company_id");
  b.J("t2", "id", "mc2", "movie_id");
  b.Min("cn1.name", "first_company");
  b.Min("cn2.name", "second_company");
  b.Min("mi_idx1.info", "first_rating");
  b.Min("mi_idx2.info", "second_rating");
  b.Min("t1.title", "first_movie");
  b.Min("t2.title", "second_movie");
}

using GroupFn = void (*)(QB&, char);

const std::map<int, std::pair<GroupFn, int>>& Groups() {
  // group -> (builder, variant count). Variant counts match the original
  // JOB distribution (113 queries across 33 groups).
  static const std::map<int, std::pair<GroupFn, int>> kGroups = {
      {1, {G1, 4}},   {2, {G2, 4}},   {3, {G3, 3}},   {4, {G4, 3}},
      {5, {G5, 3}},   {6, {G6, 6}},   {7, {G7, 3}},   {8, {G8, 4}},
      {9, {G9, 4}},   {10, {G10, 3}}, {11, {G11, 4}}, {12, {G12, 3}},
      {13, {G13, 4}}, {14, {G14, 3}}, {15, {G15, 4}}, {16, {G16, 4}},
      {17, {G17, 6}}, {18, {G18, 3}}, {19, {G19, 4}}, {20, {G20, 3}},
      {21, {G21, 3}}, {22, {G22, 4}}, {23, {G23, 3}}, {24, {G24, 2}},
      {25, {G25, 3}}, {26, {G26, 3}}, {27, {G27, 3}}, {28, {G28, 3}},
      {29, {G29, 3}}, {30, {G30, 3}}, {31, {G31, 3}}, {32, {G32, 2}},
      {33, {G33, 3}},
  };
  return kGroups;
}

}  // namespace

int NumVariants(int group) {
  auto it = Groups().find(group);
  return it == Groups().end() ? 0 : it->second.second;
}

std::vector<JobQueryId> AllJobQueries() {
  std::vector<JobQueryId> out;
  for (const auto& [group, entry] : Groups()) {
    for (int i = 0; i < entry.second; ++i) {
      out.push_back(JobQueryId{group, static_cast<char>('a' + i)});
    }
  }
  return out;
}

Result<hybrid::Query> MakeJobQuery(const JobQueryId& id) {
  auto it = Groups().find(id.group);
  if (it == Groups().end()) {
    return Status::InvalidArgument("unknown JOB group " +
                                   std::to_string(id.group));
  }
  const int variants = it->second.second;
  if (id.variant < 'a' || id.variant >= 'a' + variants) {
    return Status::InvalidArgument("unknown JOB variant " + id.ToString());
  }
  QB builder;
  builder.q.name = "JOB " + id.ToString();
  it->second.first(builder, id.variant);
  return builder.q;
}

}  // namespace hybridndp::job
