// Deterministic synthetic IMDB-like data generator for the JOB schema.
// Substitutes the real IMDB snapshot (not redistributable / too large for a
// simulation): preserves the properties the paper's evaluation depends on —
// relative table cardinalities, skewed foreign-key fan-out, dimension-table
// vocabularies used by the JOB predicates, and LIKE-matchable note/title
// markers — so the selectivity structure of the 113 queries carries over.

#pragma once

#include <cstdint>

#include "job/schema.h"
#include "rel/table.h"

namespace hybridndp::job {

struct JobDataOptions {
  /// Fraction of the full 74.2 M-row dataset (default ~1/2000 = ~37 k rows).
  double scale = 0.0005;
  uint64_t seed = 42;
  /// Push all data through flush+compaction into a steady LSM shape.
  bool compact_after_load = true;
  /// Collect statistics (MyRocks-style index samples) after loading.
  bool analyze = true;
};

/// Fills a catalog that already contains the JOB tables.
class JobDataGenerator {
 public:
  JobDataGenerator(rel::Catalog* catalog, JobDataOptions options)
      : catalog_(catalog), options_(options) {}

  Status Generate();

  uint64_t total_rows() const { return total_rows_; }

 private:
  Status FillTable(const JobTableSpec& spec);

  rel::Catalog* catalog_;
  JobDataOptions options_;
  uint64_t total_rows_ = 0;
};

/// One-call setup: create tables, generate data, compact, analyze.
Status BuildJobDatabase(rel::Catalog* catalog, JobDataOptions options);

}  // namespace hybridndp::job
