#include "job/generator.h"

#include <array>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace hybridndp::job {

namespace {

using rel::RowBuilder;

const std::vector<std::string>& CompanyTypeKinds() {
  static const std::vector<std::string> kKinds = {
      "production companies", "distributors", "special effects companies",
      "miscellaneous companies"};
  return kKinds;
}

const std::vector<std::string>& CompCastTypeKinds() {
  static const std::vector<std::string> kKinds = {"cast", "crew", "complete",
                                                  "complete+verified"};
  return kKinds;
}

const std::vector<std::string>& KindTypeKinds() {
  static const std::vector<std::string> kKinds = {
      "movie",   "tv series",     "tv movie", "video movie",
      "video game", "episode",    "tv mini series"};
  return kKinds;
}

const std::vector<std::string>& LinkTypeLinks() {
  static const std::vector<std::string> kLinks = {
      "follows",       "followed by",   "remake of",    "remade as",
      "references",    "referenced in", "spoofs",       "spoofed in",
      "features",      "featured in",   "spin off from", "spin off",
      "version of",    "similar to",    "edited into",  "edited from",
      "alternate language version of",  "unknown link"};
  return kLinks;
}

const std::vector<std::string>& RoleTypeRoles() {
  static const std::vector<std::string> kRoles = {
      "actor",    "actress", "producer", "writer",
      "cinematographer", "composer", "costume designer", "director",
      "editor",   "guest",   "miscellaneous crew", "production designer"};
  return kRoles;
}

/// First entries of info_type get the names the JOB predicates use.
std::string InfoTypeName(uint64_t id) {
  static const std::vector<std::string> kNamed = {
      "top 250 rank", "bottom 10 rank", "rating",      "votes",
      "genres",       "release dates",  "budget",      "gross",
      "runtimes",     "countries",      "languages",   "certificates",
      "color info",   "sound mix",      "trivia",      "mini biography",
      "birth notes",  "height",         "quotes",      "taglines"};
  if (id <= kNamed.size()) return kNamed[id - 1];
  return "info type " + std::to_string(id);
}

const std::vector<std::string>& Genres() {
  static const std::vector<std::string> kGenres = {
      "Drama",    "Comedy",  "Documentary", "Horror",   "Action",
      "Thriller", "Romance", "Animation",   "Crime",    "Adventure",
      "Family",   "Sci-Fi",  "Fantasy",     "Mystery",  "Biography",
      "History",  "Sport",   "Music",       "War",      "Western"};
  return kGenres;
}

const std::vector<std::string>& Countries() {
  static const std::vector<std::string> kCountries = {
      "USA",    "UK",     "Germany", "France", "Italy",  "Japan",
      "Canada", "India",  "Spain",   "Sweden", "Denmark", "Australia"};
  return kCountries;
}

const std::vector<std::string>& CountryCodes() {
  static const std::vector<std::string> kCodes = {
      "[us]", "[gb]", "[de]", "[fr]", "[it]", "[jp]",
      "[ca]", "[in]", "[es]", "[se]", "[dk]", "[au]"};
  return kCodes;
}

const std::vector<std::string>& CastNotes() {
  static const std::vector<std::string> kNotes = {
      "(voice)",
      "(voice) (uncredited)",
      "(uncredited)",
      "(producer)",
      "(executive producer)",
      "(writer)",
      "(story)",
      "(screenplay)",
      "(voice: English version)",
      "(archive footage)",
      "(as himself)"};
  return kNotes;
}

const std::vector<std::string>& KeywordSeeds() {
  static const std::vector<std::string> kSeeds = {
      "character-name-in-title", "superhero", "marvel-cinematic-universe",
      "based-on-novel", "sequel", "murder", "blood", "violence", "gore",
      "female-nudity", "hero", "martial-arts", "hand-to-hand-combat",
      "second-part", "revenge", "magnet", "web", "computer", "bomb", "fight"};
  return kSeeds;
}

}  // namespace

Status JobDataGenerator::FillTable(const JobTableSpec& spec) {
  rel::Table* table = catalog_->Get(spec.name);
  if (table == nullptr) {
    return Status::InvalidArgument(std::string("table missing: ") + spec.name);
  }
  const uint64_t rows = ScaledRows(spec, options_.scale);
  const std::string name = spec.name;

  // Per-table deterministic stream (independent of fill order).
  Rng rng(options_.seed ^ Hash64(name.data(), name.size()));

  auto scaled = [&](const char* ref) {
    for (const auto& s : JobTables()) {
      if (name != s.name && std::string(s.name) == ref) {
        return ScaledRows(s, options_.scale);
      }
    }
    return uint64_t{1};
  };
  const uint64_t n_title = scaled("title");
  const uint64_t n_name = scaled("name");
  const uint64_t n_char = scaled("char_name");
  const uint64_t n_company = scaled("company_name");
  const uint64_t n_keyword = scaled("keyword");

  // Skew: moderate Zipf factors. Hot-entity fan-out exists (popular movies
  // appear in many cast_info/movie_companies rows) without the quadratic
  // hot-spot blowups a steeper double-Zipf would create.
  auto movie_ref = [&] {
    return static_cast<int32_t>(rng.Zipf(n_title, 0.45) + 1);
  };
  auto person_ref = [&] {
    return static_cast<int32_t>(rng.Zipf(n_name, 0.5) + 1);
  };

  const rel::Schema& schema = table->schema();
  for (uint64_t i = 1; i <= rows; ++i) {
    RowBuilder rb(&schema);
    rb.SetInt(0, static_cast<int32_t>(i));

    if (name == "company_type") {
      rb.SetString(1, CompanyTypeKinds()[(i - 1) % CompanyTypeKinds().size()]);
    } else if (name == "comp_cast_type") {
      rb.SetString(1, CompCastTypeKinds()[(i - 1) % CompCastTypeKinds().size()]);
    } else if (name == "kind_type") {
      rb.SetString(1, KindTypeKinds()[(i - 1) % KindTypeKinds().size()]);
    } else if (name == "link_type") {
      rb.SetString(1, LinkTypeLinks()[(i - 1) % LinkTypeLinks().size()]);
    } else if (name == "role_type") {
      rb.SetString(1, RoleTypeRoles()[(i - 1) % RoleTypeRoles().size()]);
    } else if (name == "info_type") {
      rb.SetString(1, InfoTypeName(i));
    } else if (name == "title") {
      std::string t = "t";
      t += std::to_string(i);
      const double u = rng.NextDouble();
      if (u < 0.04) {
        t += " Champion";
      } else if (u < 0.07) {
        t += " Money";
      } else if (u < 0.10) {
        t += " Freddy";
      } else {
        // Two appends, not `" " + NextString(...)`: gcc 12's -Wrestrict has
        // a false positive on `const char* + std::string&&` under -O2.
        t += ' ';
        t += rng.NextString(6);
      }
      rb.SetString(1, t);
      rb.SetInt(2, static_cast<int32_t>(rng.Zipf(KindTypeKinds().size(), 0.7) + 1));
      rb.SetInt(3, static_cast<int32_t>(2019 - rng.Zipf(139, 0.5)));
    } else if (name == "name") {
      std::string nm = rng.NextString(5) + " " + rng.NextString(7);
      const double u = rng.NextDouble();
      if (u < 0.03) nm = "Tim " + rng.NextString(6);
      else if (u < 0.05) nm = "B" + rng.NextString(5);
      else if (u < 0.07) nm = "X" + rng.NextString(4) + "us";
      rb.SetString(1, nm);
      const double g = rng.NextDouble();
      rb.SetString(2, g < 0.55 ? "m" : (g < 0.93 ? "f" : ""));
    } else if (name == "char_name") {
      rb.SetString(1, (rng.Bernoulli(0.05) ? std::string("Queen ") : "") +
                          rng.NextString(8));
    } else if (name == "company_name") {
      std::string cn = rng.NextString(6) + " ";
      const double u = rng.NextDouble();
      if (u < 0.10) cn += "Film Works";
      else if (u < 0.16) cn += "Warner Communications";
      else if (u < 0.28) cn += "Pictures";
      else cn += rng.NextString(5);
      rb.SetString(1, cn);
      rb.SetString(2, CountryCodes()[rng.Zipf(CountryCodes().size(), 0.8)]);
    } else if (name == "keyword") {
      const auto& seeds = KeywordSeeds();
      rb.SetString(1, i <= seeds.size() ? seeds[i - 1]
                                        : "kw-" + rng.NextString(8));
    } else if (name == "movie_companies") {
      rb.SetInt(1, movie_ref());
      rb.SetInt(2, static_cast<int32_t>(rng.Zipf(n_company, 0.5) + 1));
      rb.SetInt(3, static_cast<int32_t>(rng.Zipf(4, 0.7) + 1));
      std::string note;
      const double u = rng.NextDouble();
      if (u < 0.35) {
        note = "";
      } else if (u < 0.45) {
        note = "(co-production)";
      } else if (u < 0.55) {
        note = "(presents)";
      } else if (u < 0.60) {
        note = "(as Metro-Goldwyn-Mayer Pictures)";
      } else if (u < 0.72) {
        note = "(" + std::to_string(1990 + rng.Uniform(30)) + ") (worldwide)";
      } else if (u < 0.85) {
        note = "(" + std::to_string(1990 + rng.Uniform(30)) + ") (USA)";
      } else {
        note = "(VHS) (" + rng.NextString(4) + ")";
      }
      rb.SetString(4, note);
    } else if (name == "movie_info") {
      rb.SetInt(1, movie_ref());
      const uint64_t it = rng.Zipf(113, 0.8) + 1;
      rb.SetInt(2, static_cast<int32_t>(it));
      if (it == 5) {  // genres
        rb.SetString(3, Genres()[rng.Zipf(Genres().size(), 0.5)]);
      } else if (it == 6) {  // release dates
        rb.SetString(3, Countries()[rng.Zipf(Countries().size(), 0.6)] + ":" +
                            std::to_string(1950 + rng.Uniform(70)));
      } else if (it == 10) {  // countries
        rb.SetString(3, Countries()[rng.Zipf(Countries().size(), 0.6)]);
      } else if (it == 7 || it == 8) {  // budget / gross
        rb.SetString(3, "$" + std::to_string(1000000 + rng.Uniform(200000000)));
      } else {
        rb.SetString(3, rng.NextString(10));
      }
    } else if (name == "movie_info_idx") {
      rb.SetInt(1, movie_ref());
      // rating / votes / top 250 / bottom 10, votes+rating dominant.
      const double u = rng.NextDouble();
      int32_t it;
      if (u < 0.45) it = 3;        // rating
      else if (u < 0.9) it = 4;    // votes
      else if (u < 0.96) it = 1;   // top 250 rank
      else it = 2;                 // bottom 10 rank
      rb.SetInt(2, it);
      if (it == 3) {
        rb.SetString(3, std::to_string(1 + rng.Uniform(9)) + "." +
                            std::to_string(rng.Uniform(10)));
      } else if (it == 4) {
        rb.SetString(3, std::to_string(5 + rng.Uniform(500000)));
      } else {
        rb.SetString(3, std::to_string(1 + rng.Uniform(250)));
      }
    } else if (name == "movie_keyword") {
      rb.SetInt(1, movie_ref());
      rb.SetInt(2, static_cast<int32_t>(rng.Zipf(n_keyword, 0.3) + 1));
    } else if (name == "movie_link") {
      rb.SetInt(1, movie_ref());
      rb.SetInt(2, movie_ref());
      rb.SetInt(3, static_cast<int32_t>(rng.Uniform(18) + 1));
    } else if (name == "cast_info") {
      rb.SetInt(1, person_ref());
      rb.SetInt(2, movie_ref());
      rb.SetInt(3, rng.Bernoulli(0.2)
                       ? 0
                       : static_cast<int32_t>(rng.Zipf(n_char, 0.5) + 1));
      rb.SetInt(4, static_cast<int32_t>(rng.Zipf(12, 0.8) + 1));
      rb.SetString(5, rng.Bernoulli(0.4)
                          ? ""
                          : CastNotes()[rng.Zipf(CastNotes().size(), 0.6)]);
    } else if (name == "complete_cast") {
      rb.SetInt(1, movie_ref());
      rb.SetInt(2, static_cast<int32_t>(1 + rng.Uniform(2)));   // cast/crew
      rb.SetInt(3, static_cast<int32_t>(3 + rng.Uniform(2)));   // complete*
    } else if (name == "person_info") {
      rb.SetInt(1, person_ref());
      rb.SetInt(2, static_cast<int32_t>(rng.Zipf(20, 0.6) + 1));
      rb.SetString(3, rng.Bernoulli(0.02) ? "Volker Boehm"
                                          : rng.NextString(12));
    } else if (name == "aka_name") {
      rb.SetInt(1, person_ref());
      std::string an = rng.NextString(8);
      if (rng.Bernoulli(0.3)) an += " a " + rng.NextString(4);
      rb.SetString(2, an);
    } else if (name == "aka_title") {
      rb.SetInt(1, movie_ref());
      rb.SetString(2, "aka " + rng.NextString(10));
    } else {
      return Status::Internal("no generator for table " + name);
    }
    HNDP_RETURN_IF_ERROR(table->Insert(rb.row()));
  }
  total_rows_ += rows;
  return Status::OK();
}

Status JobDataGenerator::Generate() {
  for (const auto& spec : JobTables()) {
    HNDP_RETURN_IF_ERROR(FillTable(spec));
  }
  lsm::DB* db = catalog_->db();
  HNDP_RETURN_IF_ERROR(db->FlushAll());
  for (const auto& spec : JobTables()) {
    rel::Table* table = catalog_->Get(spec.name);
    if (options_.compact_after_load) {
      HNDP_RETURN_IF_ERROR(db->CompactAll(table->primary_cf()));
      for (size_t i = 0; i < table->def().indexes.size(); ++i) {
        HNDP_RETURN_IF_ERROR(db->CompactAll(table->index_cf(i)));
      }
    }
    if (options_.analyze) {
      HNDP_RETURN_IF_ERROR(table->AnalyzeStats());
    }
  }
  return Status::OK();
}

Status BuildJobDatabase(rel::Catalog* catalog, JobDataOptions options) {
  HNDP_RETURN_IF_ERROR(CreateJobTables(catalog));
  JobDataGenerator generator(catalog, options);
  return generator.Generate();
}

}  // namespace hybridndp::job
