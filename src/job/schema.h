// The Join-Order Benchmark schema (Leis et al., VLDB 2015): the 21 IMDB
// tables, adapted as in the paper (Sect. 5, Workloads): fixed-size CHAR
// columns (padded/trimmed), 4-byte integers, 4-byte alignment. Secondary
// indexes exist on every foreign-key column ("most tables have multiple
// secondary indices").

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rel/table.h"

namespace hybridndp::job {

/// Base (scale = 1.0) row counts approximating the real IMDB snapshot used
/// by JOB (~74.2 M rows total, paper Sect. 5).
struct JobTableSpec {
  const char* name;
  uint64_t base_rows;
  bool is_dimension;  ///< fixed-size, never scaled
};

/// All 21 tables with their base cardinalities.
const std::vector<JobTableSpec>& JobTables();

/// Build the TableDef (schema + pk + secondary indexes) for one JOB table.
rel::TableDef MakeJobTableDef(const std::string& name);

/// Create all 21 JOB tables in a catalog.
Status CreateJobTables(rel::Catalog* catalog);

/// Scaled row count of a table: dimensions stay fixed, fact tables scale.
uint64_t ScaledRows(const JobTableSpec& spec, double scale);

}  // namespace hybridndp::job
