#include "job/schema.h"

namespace hybridndp::job {

using rel::CharCol;
using rel::IntCol;
using rel::Schema;
using rel::TableDef;

const std::vector<JobTableSpec>& JobTables() {
  static const std::vector<JobTableSpec> kTables = {
      {"aka_name", 901343, false},
      {"aka_title", 361472, false},
      {"cast_info", 36244344, false},
      {"char_name", 3140339, false},
      {"comp_cast_type", 4, true},
      {"company_name", 234997, false},
      {"company_type", 4, true},
      {"complete_cast", 135086, false},
      {"info_type", 113, true},
      {"keyword", 134170, false},
      {"kind_type", 7, true},
      {"link_type", 18, true},
      {"movie_companies", 2609129, false},
      {"movie_info", 14835720, false},
      {"movie_info_idx", 1380035, false},
      {"movie_keyword", 4523930, false},
      {"movie_link", 29997, false},
      {"name", 4167491, false},
      {"person_info", 2963664, false},
      {"role_type", 12, true},
      {"title", 2528312, false},
  };
  return kTables;
}

uint64_t ScaledRows(const JobTableSpec& spec, double scale) {
  if (spec.is_dimension) return spec.base_rows;
  const double rows = static_cast<double>(spec.base_rows) * scale;
  return rows < 2.0 ? 2 : static_cast<uint64_t>(rows);
}

rel::TableDef MakeJobTableDef(const std::string& name) {
  TableDef def;
  def.name = name;
  def.pk_col = 0;
  auto idx = [&def](const char* col_name, int col) {
    def.indexes.push_back(rel::IndexDef{col_name, col});
  };

  if (name == "aka_name") {
    def.schema = Schema({IntCol("id"), IntCol("person_id"),
                         CharCol("name", 24)});
    idx("person_id", 1);
  } else if (name == "aka_title") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         CharCol("title", 28)});
    idx("movie_id", 1);
  } else if (name == "cast_info") {
    def.schema = Schema({IntCol("id"), IntCol("person_id"), IntCol("movie_id"),
                         IntCol("person_role_id"), IntCol("role_id"),
                         CharCol("note", 20)});
    idx("person_id", 1);
    idx("movie_id", 2);
    idx("person_role_id", 3);
    idx("role_id", 4);
  } else if (name == "char_name") {
    def.schema = Schema({IntCol("id"), CharCol("name", 24)});
  } else if (name == "comp_cast_type") {
    def.schema = Schema({IntCol("id"), CharCol("kind", 20)});
  } else if (name == "company_name") {
    def.schema = Schema({IntCol("id"), CharCol("name", 24),
                         CharCol("country_code", 8)});
  } else if (name == "company_type") {
    def.schema = Schema({IntCol("id"), CharCol("kind", 24)});
  } else if (name == "complete_cast") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("subject_id"), IntCol("status_id")});
    idx("movie_id", 1);
    idx("subject_id", 2);
    idx("status_id", 3);
  } else if (name == "info_type") {
    def.schema = Schema({IntCol("id"), CharCol("info", 20)});
  } else if (name == "keyword") {
    def.schema = Schema({IntCol("id"), CharCol("keyword", 24)});
  } else if (name == "kind_type") {
    def.schema = Schema({IntCol("id"), CharCol("kind", 16)});
  } else if (name == "link_type") {
    def.schema = Schema({IntCol("id"), CharCol("link", 16)});
  } else if (name == "movie_companies") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("company_id"), IntCol("company_type_id"),
                         CharCol("note", 28)});
    idx("movie_id", 1);
    idx("company_id", 2);
    idx("company_type_id", 3);
  } else if (name == "movie_info") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("info_type_id"), CharCol("info", 24)});
    idx("movie_id", 1);
    idx("info_type_id", 2);
  } else if (name == "movie_info_idx") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("info_type_id"), CharCol("info", 12)});
    idx("movie_id", 1);
    idx("info_type_id", 2);
  } else if (name == "movie_keyword") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("keyword_id")});
    idx("movie_id", 1);
    idx("keyword_id", 2);
  } else if (name == "movie_link") {
    def.schema = Schema({IntCol("id"), IntCol("movie_id"),
                         IntCol("linked_movie_id"), IntCol("link_type_id")});
    idx("movie_id", 1);
    idx("linked_movie_id", 2);
    idx("link_type_id", 3);
  } else if (name == "name") {
    def.schema = Schema({IntCol("id"), CharCol("name", 24),
                         CharCol("gender", 4)});
  } else if (name == "person_info") {
    def.schema = Schema({IntCol("id"), IntCol("person_id"),
                         IntCol("info_type_id"), CharCol("info", 24)});
    idx("person_id", 1);
    idx("info_type_id", 2);
  } else if (name == "role_type") {
    def.schema = Schema({IntCol("id"), CharCol("role", 20)});
  } else if (name == "title") {
    def.schema = Schema({IntCol("id"), CharCol("title", 28),
                         IntCol("kind_id"), IntCol("production_year")});
    idx("kind_id", 2);
    idx("production_year", 3);
  }
  return def;
}

Status CreateJobTables(rel::Catalog* catalog) {
  for (const auto& spec : JobTables()) {
    rel::TableDef def = MakeJobTableDef(spec.name);
    if (def.schema.num_columns() == 0) {
      return Status::Internal(std::string("missing schema for ") + spec.name);
    }
    catalog->CreateTable(std::move(def));
  }
  return Status::OK();
}

}  // namespace hybridndp::job
