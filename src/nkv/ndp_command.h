// The NDP invocation (paper Sect. 2.1, 4.1, Fig. 7.A): everything the smart
// storage device needs to execute a partial QEP autonomously and
// intervention-free — the shared state (unflushed MemTables), the physical
// placement of every involved SST (address-mapping info), index metadata,
// the PQEP descriptor, predicates, and the buffer configuration.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "lsm/db.h"
#include "rel/table.h"

namespace hybridndp::nkv {

/// Which on-device join algorithm a pipeline stage uses (paper Sect. 2.1).
enum class JoinAlgo : uint8_t {
  kNLJ = 0,
  kBNLJ = 1,   ///< block nested loop (hash table in the join buffer)
  kBNLJI = 2,  ///< indexed block nested loop (primary or secondary index)
  kGHJ = 3,    ///< grace hash join (partitions persisted on-device)
};

const char* JoinAlgoName(JoinAlgo algo);

/// Access to one table inside the NDP PQEP: snapshots of the primary and
/// secondary column families plus the early selection / projection pushed
/// into the on-device scan.
struct NdpTableAccess {
  std::string table_name;
  std::string alias;
  rel::TableDef def;
  lsm::CfSnapshot primary;                 ///< shared state + placements
  std::vector<lsm::CfSnapshot> indexes;    ///< one per secondary index

  /// Early selection on this table (aliased column names).
  exec::Expr::Ptr predicate;
  /// Early projection: columns (aliased) this table contributes upstream.
  std::vector<std::string> projection;

  /// Optional index-driven access instead of a full scan.
  bool use_index_scan = false;
  size_t index_no = 0;
  int64_t index_lo = 0;
  int64_t index_hi = 0;
};

/// One join stage of the NDP pipeline; joins the running intermediate result
/// with tables[i+1].
struct NdpJoinStage {
  JoinAlgo algo = JoinAlgo::kBNLJ;
  std::vector<exec::JoinKey> keys;  ///< empty for BNLJI (uses the columns below)
  exec::Expr::Ptr residual;
  /// BNLJI: outer stream key column and inner (unaliased) join column.
  std::string outer_key_col;
  std::string inner_join_col;
};

/// Buffer configuration of the on-device pipeline (paper Sect. 4.2 + 5).
struct NdpBufferConfig {
  uint64_t selection_buffer_bytes = 17ull << 20;  ///< per selection stage
  uint64_t join_buffer_bytes = 7ull << 20;        ///< per join stage
  uint64_t shared_slot_bytes = 256ull << 10;      ///< one result-buffer slot
  int shared_slots = 4;                           ///< round-robin slots
};

/// A complete NDP command.
struct NdpCommand {
  lsm::SequenceNumber snapshot = lsm::kMaxSequenceNumber;
  std::vector<NdpTableAccess> tables;  ///< in join order
  std::vector<NdpJoinStage> joins;     ///< joins.size() <= tables.size()-1

  /// When true the device executes each table as an independent NDP
  /// selection (split H0: offload all leaves, keep every join on the host);
  /// joins above must be empty.
  bool scans_only = false;

  /// Optional pipeline-terminal GROUP BY / aggregation (full-NDP plans).
  bool has_agg = false;
  std::vector<std::string> group_cols;
  std::vector<exec::AggSpec> aggs;

  /// Final projection of the device result (empty = full width).
  std::vector<std::string> output_projection;

  NdpBufferConfig buffers;

  /// Intermediate cache format override (paper Sect. 4.2): 0 = automatic
  /// (pointer format beyond 2 tables), 1 = force row cache, 2 = force
  /// pointer cache. Used by the cache-format ablation.
  int force_cache_format = 0;

  /// Extension (paper Sect. 2.2, future work): let the NDP engine probe
  /// bloom filters in-situ. The paper's engine skips them because the host
  /// already probed them; with device-resident filters, point lookups of
  /// absent keys (BNLJI misses) avoid their data-block reads.
  bool device_bloom = false;

  size_t num_pipeline_joins() const { return joins.size(); }
  /// Device memory the configured pipeline reserves (checked against the
  /// NDP budget before deployment).
  uint64_t ReservedBufferBytes() const;
};

/// Device-side table accessor: reads the shipped CfSnapshots through
/// device-owned SstReaders, charging the *internal* flash path. This is the
/// device's own view of the LSM-trees — it never touches host reader state.
class DeviceTableAccessor final : public rel::TableAccessor {
 public:
  DeviceTableAccessor(const lsm::VirtualStorage* storage,
                      const NdpTableAccess* access);

  const rel::TableDef& def() const override { return access_->def; }
  Status GetByPk(const lsm::ReadOptions& opts, int32_t pk,
                 std::string* row) const override;
  lsm::IteratorPtr NewScanIterator(
      const lsm::ReadOptions& opts) const override;
  lsm::IteratorPtr NewIndexIterator(const lsm::ReadOptions& opts,
                                    size_t index_no) const override;
  uint64_t row_count() const override;

 private:
  lsm::SstReader* GetReader(const lsm::FileMetaData& meta) const;
  /// Get through one snapshot: mem -> immutables -> C1 -> C2..Ck.
  Status SnapshotGet(const lsm::CfSnapshot& snap, const lsm::ReadOptions& opts,
                     const Slice& key, std::string* value) const;

  const lsm::VirtualStorage* storage_;
  const NdpTableAccess* access_;
  mutable std::map<lsm::FileId, std::unique_ptr<lsm::SstReader>> readers_;
};

/// Build an NdpTableAccess snapshot bundle from a live table.
NdpTableAccess SnapshotTable(const rel::Table& table, std::string alias);

}  // namespace hybridndp::nkv
