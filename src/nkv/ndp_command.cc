#include "nkv/ndp_command.h"

#include <algorithm>

namespace hybridndp::nkv {

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kNLJ:
      return "NLJ";
    case JoinAlgo::kBNLJ:
      return "BNLJ";
    case JoinAlgo::kBNLJI:
      return "BNLJI";
    case JoinAlgo::kGHJ:
      return "GHJ";
  }
  return "?";
}

uint64_t NdpCommand::ReservedBufferBytes() const {
  uint64_t total = 0;
  for (const auto& t : tables) {
    total += buffers.selection_buffer_bytes;  // primary selection
    if (t.use_index_scan) {
      total += buffers.selection_buffer_bytes;  // secondary selection stage
    }
  }
  for (const auto& j : joins) {
    (void)j;
    total += buffers.join_buffer_bytes;
  }
  total += static_cast<uint64_t>(buffers.shared_slots) *
           buffers.shared_slot_bytes;
  return total;
}

DeviceTableAccessor::DeviceTableAccessor(const lsm::VirtualStorage* storage,
                                         const NdpTableAccess* access)
    : storage_(storage), access_(access) {}

lsm::SstReader* DeviceTableAccessor::GetReader(
    const lsm::FileMetaData& meta) const {
  auto it = readers_.find(meta.file_id);
  if (it != readers_.end()) return it->second.get();
  auto reader = std::make_unique<lsm::SstReader>(storage_, meta);
  lsm::SstReader* raw = reader.get();
  readers_[meta.file_id] = std::move(reader);
  return raw;
}

Status DeviceTableAccessor::SnapshotGet(const lsm::CfSnapshot& snap,
                                        const lsm::ReadOptions& opts,
                                        const Slice& key,
                                        std::string* value) const {
  const lsm::SequenceNumber seq = opts.snapshot;
  bool deleted = false;
  if (snap.mem != nullptr &&
      snap.mem->Get(key, seq, value, &deleted, opts.ctx)) {
    return deleted ? Status::NotFound() : Status::OK();
  }
  for (auto it = snap.immutables.rbegin(); it != snap.immutables.rend(); ++it) {
    if ((*it)->Get(key, seq, value, &deleted, opts.ctx)) {
      return deleted ? Status::NotFound() : Status::OK();
    }
  }
  if (snap.version.levels.empty()) return Status::NotFound();
  const auto& l0 = snap.version.levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    Status s = GetReader(*it)->Get(opts.ctx, opts.cache, key, seq, value,
                                   &deleted, opts.use_bloom);
    if (s.ok()) return deleted ? Status::NotFound() : Status::OK();
    if (!s.IsNotFound()) return s;
  }
  for (size_t level = 1; level < snap.version.levels.size(); ++level) {
    const auto& files = snap.version.levels[level];
    auto pos = std::lower_bound(files.begin(), files.end(), key,
                                [](const lsm::FileMetaData& f, const Slice& k) {
                                  return f.LargestUserKey().compare(k) < 0;
                                });
    if (pos == files.end()) continue;
    if (pos->SmallestUserKey().compare(key) > 0) continue;
    Status s = GetReader(*pos)->Get(opts.ctx, opts.cache, key, seq, value,
                                    &deleted, opts.use_bloom);
    if (s.ok()) return deleted ? Status::NotFound() : Status::OK();
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

Status DeviceTableAccessor::GetByPk(const lsm::ReadOptions& opts, int32_t pk,
                                    std::string* row) const {
  std::string pk_key;
  PutOrderedInt32(&pk_key, pk);
  lsm::ReadOptions snap_opts = opts;
  if (snap_opts.snapshot == lsm::kMaxSequenceNumber) {
    snap_opts.snapshot = access_->primary.sequence;
  }
  return SnapshotGet(access_->primary, snap_opts, Slice(pk_key), row);
}

lsm::IteratorPtr DeviceTableAccessor::NewScanIterator(
    const lsm::ReadOptions& opts) const {
  const lsm::SequenceNumber seq = opts.snapshot == lsm::kMaxSequenceNumber
                                      ? access_->primary.sequence
                                      : opts.snapshot;
  auto internal = lsm::NewSnapshotInternalIterator(
      access_->primary, opts.ctx, opts.cache,
      [this](const lsm::FileMetaData& meta) { return GetReader(meta); });
  return lsm::NewUserKeyIterator(std::move(internal), seq, opts.ctx);
}

lsm::IteratorPtr DeviceTableAccessor::NewIndexIterator(
    const lsm::ReadOptions& opts, size_t index_no) const {
  if (index_no >= access_->indexes.size()) {
    return std::make_unique<lsm::EmptyIterator>();
  }
  const auto& snap = access_->indexes[index_no];
  const lsm::SequenceNumber seq =
      opts.snapshot == lsm::kMaxSequenceNumber ? snap.sequence : opts.snapshot;
  auto internal = lsm::NewSnapshotInternalIterator(
      snap, opts.ctx, opts.cache,
      [this](const lsm::FileMetaData& meta) { return GetReader(meta); });
  return lsm::NewUserKeyIterator(std::move(internal), seq, opts.ctx);
}

uint64_t DeviceTableAccessor::row_count() const {
  uint64_t total = access_->primary.version.TotalEntries();
  if (access_->primary.mem != nullptr) {
    total += access_->primary.mem->num_entries();
  }
  return total;
}

NdpTableAccess SnapshotTable(const rel::Table& table, std::string alias) {
  NdpTableAccess access;
  access.table_name = table.name();
  access.alias = std::move(alias);
  access.def = table.def();
  access.primary = table.db()->GetCfSnapshot(table.primary_cf());
  for (size_t i = 0; i < table.def().indexes.size(); ++i) {
    access.indexes.push_back(table.db()->GetCfSnapshot(table.index_cf(i)));
  }
  return access;
}

}  // namespace hybridndp::nkv
