// Little-endian fixed-width and varint encodings (LevelDB-compatible style),
// used by block, SST, and row codecs.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace hybridndp {

inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

/// Append a LEB128 varint32 to dst.
void PutVarint32(std::string* dst, uint32_t v);
/// Append a LEB128 varint64 to dst.
void PutVarint64(std::string* dst, uint64_t v);

/// Out-of-line continuation for multi-byte varints (see GetVarint32Ptr).
const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value);
const char* GetVarint64PtrFallback(const char* p, const char* limit,
                                   uint64_t* value);

/// Parse a varint32 from [p, limit); returns the byte after the varint or
/// nullptr on malformed input. The single-byte case (values < 128 — almost
/// every shared-prefix/length varint in a data block) decodes inline; the
/// block iterator calls this several times per record.
inline const char* GetVarint32Ptr(const char* p, const char* limit,
                                  uint32_t* value) {
  if (p < limit) {
    const uint32_t result = static_cast<unsigned char>(*p);
    if ((result & 0x80) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}
inline const char* GetVarint64Ptr(const char* p, const char* limit,
                                  uint64_t* value) {
  if (p < limit) {
    const uint64_t result = static_cast<unsigned char>(*p);
    if ((result & 0x80) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint64PtrFallback(p, limit, value);
}

/// Consume a varint32 from the front of *input. Returns false on corruption.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Append varint-length-prefixed bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
/// Consume varint-length-prefixed bytes from the front of *input.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Bytes a varint32 encoding of v occupies.
int VarintLength(uint64_t v);

/// Encode a signed 32-bit integer so unsigned byte-order equals numeric order
/// (flips the sign bit); used for order-preserving integer keys.
inline uint32_t EncodeOrderedInt32(int32_t v) {
  return static_cast<uint32_t>(v) ^ 0x80000000u;
}
inline int32_t DecodeOrderedInt32(uint32_t v) {
  return static_cast<int32_t>(v ^ 0x80000000u);
}

/// Append a 4-byte big-endian order-preserving encoding of v.
void PutOrderedInt32(std::string* dst, int32_t v);
/// Decode a 4-byte big-endian order-preserving int32.
int32_t GetOrderedInt32(const char* src);

}  // namespace hybridndp
