// Simulated-time primitives. All performance numbers in this repository are
// accounted on simulated clocks driven by the hardware model, never on
// wall-clock time, so every experiment is exactly reproducible.

#pragma once

#include <cstdint>

namespace hybridndp {

/// Simulated nanoseconds.
using SimNanos = double;

constexpr SimNanos kNanosPerMicro = 1e3;
constexpr SimNanos kNanosPerMilli = 1e6;
constexpr SimNanos kNanosPerSec = 1e9;

/// Monotonic simulated clock owned by one actor (host or a device core).
class SimClock {
 public:
  SimNanos now() const { return now_; }
  void Advance(SimNanos ns) { now_ += ns; }
  /// Jump forward to `t` if it is in the future (used for stall/wait).
  void AdvanceTo(SimNanos t) {
    if (t > now_) now_ = t;
  }
  void Reset() { now_ = 0; }

 private:
  SimNanos now_ = 0;
};

}  // namespace hybridndp
