// Simulated-time primitives. All performance numbers in this repository are
// accounted on simulated clocks driven by the hardware model, never on
// wall-clock time, so every experiment is exactly reproducible.

#pragma once

#include <cmath>
#include <cstdint>

namespace hybridndp {

/// Simulated nanoseconds.
using SimNanos = double;

/// Simulated picoseconds — the *storage* representation for accumulated
/// simulated time. Individual charges are computed in SimNanos (double) but
/// quantized to integer picoseconds before accumulation, which makes sums
/// associative: any reordering of the same multiset of charges yields a
/// bit-identical clock. Batch-vectorized execution relies on this to stay
/// metric-identical to row-at-a-time execution while reordering per-row
/// work inside a batch. int64 picoseconds overflow after ~107 days of
/// simulated time; experiments here run milliseconds to seconds.
using SimPicos = int64_t;

constexpr SimNanos kNanosPerMicro = 1e3;
constexpr SimNanos kNanosPerMilli = 1e6;
constexpr SimNanos kNanosPerSec = 1e9;

/// Quantization uses llrint (round to nearest, ties to even under the
/// default FP environment), which compiles to a single conversion
/// instruction — this runs twice per charge, ~10^8 times per bench run,
/// where llround's away-from-zero tie-breaking is an out-of-line libm call.
/// Ties (a charge landing exactly on half a picosecond) are the only
/// difference, and determinism is what matters here, not the tie direction.
inline SimPicos NanosToPicos(SimNanos ns) {
  return static_cast<SimPicos>(std::llrint(ns * 1e3));
}
inline SimNanos PicosToNanos(SimPicos ps) {
  return static_cast<SimNanos>(ps) * 1e-3;
}

/// Monotonic simulated clock owned by one actor (host or a device core).
/// Accumulates integer picoseconds internally (see SimPicos above) and
/// exposes nanoseconds at the API boundary.
class SimClock {
 public:
  SimNanos now() const { return PicosToNanos(now_ps_); }
  SimPicos now_ps() const { return now_ps_; }
  void Advance(SimNanos ns) { now_ps_ += NanosToPicos(ns); }
  /// Advance by an already-quantized amount (batch charging: n identical
  /// charges advance by exactly n times the per-charge quantum).
  void AdvancePicos(SimPicos ps) { now_ps_ += ps; }
  /// Jump forward to `t` if it is in the future (used for stall/wait).
  void AdvanceTo(SimNanos t) {
    const SimPicos t_ps = NanosToPicos(t);
    if (t_ps > now_ps_) now_ps_ = t_ps;
  }
  void Reset() { now_ps_ = 0; }

 private:
  SimPicos now_ps_ = 0;
};

}  // namespace hybridndp
