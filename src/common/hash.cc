#include "common/hash.h"

#include <cstring>

namespace hybridndp {

namespace {
constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}
}  // namespace

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  uint64_t h = seed + kPrime1 + n;
  const char* p = data;
  const char* end = data + n;
  while (p + 8 <= end) {
    uint64_t k;
    memcpy(&k, p, 8);
    h ^= Rotl(k * kPrime2, 31) * kPrime1;
    h = Rotl(h, 27) * kPrime1 + kPrime3;
    p += 8;
  }
  if (p + 4 <= end) {
    uint32_t k;
    memcpy(&k, p, 4);
    h ^= static_cast<uint64_t>(k) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<unsigned char>(*p) * kPrime3;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  return Mix(h);
}

}  // namespace hybridndp
