// Bump-pointer arena used by the MemTable skiplist (mirrors leveldb::Arena).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hybridndp {

/// Allocates memory in blocks; individual allocations are never freed, the
/// whole arena is released at once.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` with natural alignment for pointers.
  char* Allocate(size_t bytes);

  /// Release every block. Outstanding pointers into the arena become
  /// dangling; callers (e.g. exec::RowBatch regrowing its row storage)
  /// must re-establish their views afterwards.
  void Reset() {
    alloc_ptr_ = nullptr;
    alloc_bytes_remaining_ = 0;
    blocks_.clear();
    memory_usage_ = 0;
  }

  /// Total bytes reserved by the arena (capacity, not live data).
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t memory_usage_ = 0;
};

}  // namespace hybridndp
