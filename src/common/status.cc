#include "common/status.h"

namespace hybridndp {

namespace {
const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kCorruption:
      return "Corruption";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kIOError:
      return "IOError";
    case Code::kNotSupported:
      return "NotSupported";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kAborted:
      return "Aborted";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace hybridndp
