// Non-owning byte-range view, the universal key/value currency of the LSM
// layer (mirrors rocksdb::Slice).

#pragma once

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace hybridndp {

/// A pointer + length view over externally owned bytes.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drop the first n bytes.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  /// Three-way lexicographic byte comparison: <0, 0, >0.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace hybridndp
