// Annotated mutex / scoped-lock / condition-variable wrappers over the
// standard library primitives. std::mutex and std::lock_guard carry no
// thread-safety attributes (libstdc++ ships none), so clang's analysis
// cannot see acquisitions made through them; these wrappers are the
// annotated boundary every shared-state class in the codebase locks
// through. Zero overhead: each method is an inline forward to the wrapped
// std primitive.

#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hybridndp::common {

/// Exclusive mutex carrying the clang `capability` attribute so members can
/// be declared GUARDED_BY an instance.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Static-analysis assertion that the calling context holds the mutex
  /// (no runtime effect; documents entry points reached only under lock).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to common::Mutex. Wait releases and reacquires
/// the mutex like std::condition_variable; the REQUIRES annotation makes a
/// wait without the lock held a compile error under clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  // No predicate overload on purpose: a lambda runs outside the analysis
  // scope, so guarded reads inside it would need suppressions. Use the
  // `while (!cond) cv.Wait(mu);` form — clang analyzes the loop body.

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hybridndp::common
