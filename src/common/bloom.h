// Blocked-free classic bloom filter, per-SST, mirroring RocksDB's full
// filter: k probes derived from a double hash.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace hybridndp {

/// Builds a bloom filter over a batch of keys and serializes it to a string;
/// `BloomFilter::MayContain` probes a serialized filter.
class BloomFilterBuilder {
 public:
  /// bits_per_key controls the false-positive rate (10 ~ 1%).
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(const Slice& key);

  /// Serialize the filter over all added keys. Resets the builder.
  std::string Finish();

  size_t num_keys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint64_t> hashes_;
};

/// Read-side probe over a serialized bloom filter.
class BloomFilter {
 public:
  /// `data` must outlive the BloomFilter.
  explicit BloomFilter(Slice data);

  /// False means the key is definitely absent.
  bool MayContain(const Slice& key) const;

  bool valid() const { return bits_ > 0; }

 private:
  const char* array_ = nullptr;
  size_t bits_ = 0;
  int num_probes_ = 0;
};

}  // namespace hybridndp
