#include "common/thread_pool.h"

#include <algorithm>

namespace hybridndp::common {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace hybridndp::common
