// Clang thread-safety-analysis attribute macros (the LevelDB/RocksDB/Abseil
// convention). Under clang the annotations turn lock discipline into a
// compile-time property — `-Wthread-safety -Werror=thread-safety` (the
// HYBRIDNDP_THREAD_SAFETY cmake path, on by default for clang) rejects any
// access to a GUARDED_BY member without its mutex held. Under other
// compilers every macro expands to nothing, so annotated code stays
// portable.
//
// Conventions used across this codebase (DESIGN.md §13):
//  * Shared mutable members are GUARDED_BY the mutex that protects them.
//  * Private helpers called with a lock already held are REQUIRES(mu_)
//    and named *Locked.
//  * Lock-free fast paths over published-immutable state (seal/acquire
//    protocols) are isolated into tiny NO_THREAD_SAFETY_ANALYSIS helpers
//    carrying a one-line justification comment.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define HNDP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HNDP_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

#define CAPABILITY(x) HNDP_THREAD_ANNOTATION_(capability(x))

#define SCOPED_CAPABILITY HNDP_THREAD_ANNOTATION_(scoped_lockable)

#define GUARDED_BY(x) HNDP_THREAD_ANNOTATION_(guarded_by(x))

#define PT_GUARDED_BY(x) HNDP_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  HNDP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  HNDP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  HNDP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  HNDP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) HNDP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  HNDP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) HNDP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  HNDP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  HNDP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) HNDP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) HNDP_THREAD_ANNOTATION_(assert_capability(x))

#define RETURN_CAPABILITY(x) HNDP_THREAD_ANNOTATION_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  HNDP_THREAD_ANNOTATION_(no_thread_safety_analysis)
