// Fixed-size worker pool for fanning out independent work units (parallel
// strategy runs, cache stress tests). Tasks are plain std::function jobs;
// Submit returns a future, ParallelFor blocks until every index is done.
//
// The pool carries no cost-model state: simulated clocks live in per-run
// AccessContexts, so running two simulations on different workers cannot
// perturb either timeline (wall-clock parallelism, simulation-identical).

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace hybridndp::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one task; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Run fn(0) .. fn(n-1) across the pool and wait for all of them.
  /// With a single worker this degenerates to a serial loop in index order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Default worker count: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  /// Immutable after the constructor returns (only joined in ~ThreadPool),
  /// so size() needs no lock.
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace hybridndp::common
