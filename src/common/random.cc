#include "common/random.h"

#include <cmath>

namespace hybridndp {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF approximation: rank ~ n * u^(1/(1-theta)) for theta < 1;
  // for theta >= 1 fall back to a steep power law.
  const double u = NextDouble();
  double exponent = theta < 0.999 ? 1.0 / (1.0 - theta) : 8.0;
  double r = std::pow(u, exponent) * static_cast<double>(n);
  uint64_t rank = static_cast<uint64_t>(r);
  if (rank >= n) rank = n - 1;
  return rank;
}

std::string Rng::NextString(size_t n) {
  std::string s(n, 'a');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>('a' + Uniform(26));
  }
  return s;
}

}  // namespace hybridndp
