// Deterministic pseudo-random generation (splitmix64 + xoshiro-style),
// used by the data generator, skiplist heights, and tests. Determinism is a
// hard requirement: all experiments must be exactly reproducible.

#pragma once

#include <cstdint>
#include <string>

namespace hybridndp {

/// Small, fast, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed) { state_ = Mix(seed); }

  /// Uniform 64-bit value.
  uint64_t Next() {
    state_ = Mix(state_);
    return state_;
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p (p in [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent theta — cheap inverse-CDF
  /// approximation adequate for workload skew.
  uint64_t Zipf(uint64_t n, double theta);

  /// Random lowercase ASCII string of length n.
  std::string NextString(size_t n);

 private:
  static uint64_t Mix(uint64_t z) {
    z += 0x9E3779B97f4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t state_;
};

}  // namespace hybridndp
