#include "common/arena.h"

namespace hybridndp {

char* Arena::Allocate(size_t bytes) {
  // Round up to pointer alignment so skiplist nodes are well-aligned.
  constexpr size_t kAlign = alignof(void*);
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);

  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  if (bytes > kBlockSize / 4) {
    // Large allocation gets its own block, preserving the current block.
    return AllocateNewBlock(bytes);
  }
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_ += block_bytes + sizeof(char*);
  return blocks_.back().get();
}

}  // namespace hybridndp
