// Status and Result types used across the hybridNDP codebase.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or a Result<T> carrying a value), never throw.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace hybridndp {

/// Error/result code for all fallible operations in the library.
enum class Code : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kNotSupported = 5,
  kResourceExhausted = 6,
  kAborted = 7,
  kInternal = 8,
};

/// Lightweight status object. Ok statuses carry no allocation.
/// [[nodiscard]] at class level: every call returning a Status must either
/// check, propagate, or explicitly void-cast it with a justification
/// (hndp-lint's discarded-status rule covers call shapes the attribute
/// cannot reach).
class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "NotFound: key missing".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A value-or-status holder, analogous to arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : var_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(Status status) : var_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(var_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::move(std::get<T>(var_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace hybridndp

/// Propagate a non-ok Status from the current function.
#define HNDP_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::hybridndp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assign the value of a Result to `lhs`, or propagate its Status.
#define HNDP_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto HNDP_CONCAT_(res_, __LINE__) = (rexpr);     \
  if (!HNDP_CONCAT_(res_, __LINE__).ok())          \
    return HNDP_CONCAT_(res_, __LINE__).status();  \
  lhs = std::move(HNDP_CONCAT_(res_, __LINE__)).value()

#define HNDP_CONCAT_IMPL_(a, b) a##b
#define HNDP_CONCAT_(a, b) HNDP_CONCAT_IMPL_(a, b)
