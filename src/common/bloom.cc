#include "common/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace hybridndp {

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {
  // k = bits_per_key * ln(2), clamped to a sane range.
  num_probes_ = static_cast<int>(bits_per_key_ * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(Hash64(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string out(bytes, '\0');
  // Last byte stores the probe count (LevelDB convention).
  out.push_back(static_cast<char>(num_probes_));

  for (uint64_t h : hashes_) {
    const uint64_t delta = (h >> 17) | (h << 47);  // Rotate for double hash.
    for (int j = 0; j < num_probes_; ++j) {
      const size_t bitpos = h % bits;
      out[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  hashes_.clear();
  return out;
}

BloomFilter::BloomFilter(Slice data) {
  if (data.size() < 2) return;
  array_ = data.data();
  bits_ = (data.size() - 1) * 8;
  num_probes_ = static_cast<unsigned char>(data[data.size() - 1]);
  if (num_probes_ < 1 || num_probes_ > 30) {
    bits_ = 0;  // Treat as corrupt: always "may contain".
  }
}

bool BloomFilter::MayContain(const Slice& key) const {
  if (bits_ == 0) return true;
  uint64_t h = Hash64(key);
  const uint64_t delta = (h >> 17) | (h << 47);
  for (int j = 0; j < num_probes_; ++j) {
    const size_t bitpos = h % bits_;
    if ((array_[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace hybridndp
