// 64-bit and 32-bit byte hashing (xxhash-style avalanche mix), used by bloom
// filters, hash joins, and the group-by cache.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace hybridndp {

/// 64-bit hash of a byte range with a seed.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit convenience truncation of Hash64.
inline uint32_t Hash32(const Slice& s, uint64_t seed = 0) {
  return static_cast<uint32_t>(Hash64(s, seed));
}

}  // namespace hybridndp
