// Executes a planned query under any strategy: host-only over the BLK or
// NATIVE stack, full on-device NDP, or a hybrid split Hk with cooperative
// host/device execution (the paper's execution model, Sect. 4). All
// strategies produce identical result sets; they differ in the simulated
// timeline.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "hybrid/coop.h"
#include "hybrid/plan.h"
#include "hybrid/planner.h"
#include "lsm/block_cache.h"
#include "ndp/device_executor.h"
#include "obs/trace.h"
#include "rel/table.h"

namespace hybridndp::hybrid {

/// Outcome of one query execution.
struct RunResult {
  ExecChoice choice;
  SimNanos total_ns = 0;
  rel::Schema schema;
  std::vector<std::string> rows;

  StageTimes host_stages;               ///< Table 4 (left)
  sim::CostCounters host_counters;
  sim::CostCounters device_counters;    ///< Table 4 (right)
  SimNanos device_busy_ns = 0;
  SimNanos device_stall_ns = 0;
  uint64_t device_rows = 0;             ///< intermediate results shipped
  uint64_t transferred_bytes = 0;
  int num_batches = 0;
  bool pointer_cache = false;

  /// Graceful degradation (Taurus-style): the device-assisted attempt died
  /// on a fault-class error and the query was re-executed host-only. The
  /// simulated time burned by the failed attempt is carried as the
  /// fallback run's ndp_setup stage (it precedes all host processing).
  bool fell_back = false;
  SimNanos fault_wasted_ns = 0;  ///< host clock at the aborted attempt's death
  Status fault_status;           ///< the failure that triggered the fallback

  /// Trace track ids for this run (-1 when tracing was disabled). Track ids
  /// are recorder bookkeeping, not simulated metrics: under a parallel
  /// RunAll the creation order — and hence the ids — depends on thread
  /// interleaving, so identity checks must ignore these fields.
  int trace_host_track = -1;
  int trace_device_track = -1;

  uint64_t result_rows() const { return rows.size(); }
  double total_ms() const { return total_ns / kNanosPerMilli; }
};

/// Strategy-parameterized query executor.
class HybridExecutor {
 public:
  HybridExecutor(const rel::Catalog* catalog, const lsm::VirtualStorage* storage,
                 const sim::HwParams* hw, PlannerConfig config = {})
      : catalog_(catalog), storage_(storage), hw_(hw), config_(config) {}

  /// Run `plan` under `choice`. `host_cache` (optional) is the host block
  /// cache; pass a fresh cache per run for cold-start numbers. `rec`
  /// (optional) records the run's simulated timeline and metrics; a null
  /// recorder is the zero-overhead path — the simulation statements are
  /// identical either way, recording only reads the simulated clocks.
  Result<RunResult> Run(const Plan& plan, const ExecChoice& choice,
                        lsm::BlockCache* host_cache = nullptr,
                        obs::TraceRecorder* rec = nullptr) const;

  /// Factory for the per-run host block cache used by RunAll. Each run gets
  /// its own fresh cache so every strategy sees cold-start semantics and no
  /// run's hit pattern depends on its neighbours. May return nullptr (no
  /// cache); a null factory means "run without a cache".
  using CacheFactory = std::function<std::unique_ptr<lsm::BlockCache>()>;

  /// Run `plan` under every choice in `choices`, fanning independent runs
  /// over `pool` (serial when pool is null or has one thread). The runs are
  /// independent simulations — each gets its own AccessContext, cache, and
  /// cloned predicate trees — so the simulated metrics are bit-identical to
  /// running the choices one by one; only wall-clock time changes. Results
  /// are returned in choice order.
  /// `rec`, when non-null, gets one host track (plus device tracks for
  /// device-assisted strategies) per run; TraceRecorder is thread-safe, so
  /// runs may record concurrently. Track ids depend on scheduling order —
  /// span contents and metrics do not.
  std::vector<Result<RunResult>> RunAll(
      const Plan& plan, const std::vector<ExecChoice>& choices,
      common::ThreadPool* pool, const CacheFactory& make_cache = {},
      obs::TraceRecorder* rec = nullptr) const;

  /// Convenience: every executable choice for a plan, in the order
  /// BLK, NATIVE, H0..H(n-2), NDP.
  static std::vector<ExecChoice> AllChoices(const Plan& plan);

 private:
  /// Host-only execution. When `fault_status` is non-OK this is the
  /// degradation path after a failed device-assisted attempt:
  /// `fallback_wasted_ns` of simulated time (the aborted attempt's host
  /// timeline) is charged up front and accounted as the ndp_setup stage, so
  /// the Table-4 categories still tile [0, total_ns].
  Result<RunResult> RunHostOnly(const Plan& plan, const ExecChoice& choice,
                                lsm::BlockCache* cache, obs::TraceRecorder* rec,
                                SimNanos fallback_wasted_ns = 0,
                                Status fault_status = Status::OK()) const;
  /// Device-assisted execution. On a fault-class failure (injected fault
  /// past its retry budget) returns the error and reports the simulated
  /// host time the aborted attempt burned through `fault_wasted_ns`.
  Result<RunResult> RunDeviceAssisted(const Plan& plan,
                                      const ExecChoice& choice,
                                      lsm::BlockCache* cache,
                                      obs::TraceRecorder* rec,
                                      SimNanos* fault_wasted_ns) const;

  /// Build the NDP command for tables [0..k] (+ joins, or scans_only).
  nkv::NdpCommand BuildNdpCommand(const Plan& plan, int split_joins,
                                  bool full_ndp, int cache_format = 0) const;

  /// Append host-side joins for plan positions [from, n) on top of `acc`.
  Result<exec::OperatorPtr> BuildHostSuffix(const Plan& plan, size_t from,
                                            exec::OperatorPtr acc,
                                            sim::AccessContext* ctx,
                                            lsm::BlockCache* cache,
                                            sim::IoPath path,
                                            bool add_root) const;

  /// Build the host-side leaf scan for plan position `i`.
  exec::OperatorPtr BuildHostScan(const Plan& plan, size_t i,
                                  sim::AccessContext* ctx,
                                  lsm::BlockCache* cache,
                                  sim::IoPath path) const;

  const rel::Catalog* catalog_;
  const lsm::VirtualStorage* storage_;
  const sim::HwParams* hw_;
  PlannerConfig config_;
};

}  // namespace hybridndp::hybrid
