// Cooperative execution plumbing (paper Sect. 4, Figs. 7/17): merges the
// device production timeline with the host consumption timeline through the
// multi-slot shared result buffer. The device runs ahead of the host by at
// most `shared_slots` batches (then core 1 halts until a slot frees); the
// host stalls whenever the batch it needs has not been produced/transferred
// yet. Waits are accounted exactly as the paper's Table 4 stages.

#pragma once

#include <vector>

#include "common/mutex.h"
#include "exec/operator.h"
#include "ndp/device_executor.h"
#include "obs/trace.h"
#include "sim/cost.h"

namespace hybridndp::hybrid {

/// Host-side stage durations (paper Table 4, left).
struct StageTimes {
  SimNanos ndp_setup = 0;        ///< command preparation + invocation
  SimNanos initial_wait = 0;     ///< wait for the first intermediate result
  SimNanos later_waits = 0;      ///< waits for 2nd, 3rd, ... result sets
  SimNanos result_transfer = 0;  ///< PCIe shipping of result batches
  SimNanos processing = 0;       ///< host PQEP execution (set by caller)

  SimNanos total() const {
    return ndp_setup + initial_wait + later_waits + result_transfer +
           processing;
  }
  std::string ToString() const;
};

/// Shared-buffer schedule for one device stream: computes, lazily and in
/// fetch order, when each batch becomes available to the host, honoring the
/// slot back-pressure on the device side.
///
/// Thread-safety: the lazily-computed schedule state is guarded by an
/// internal mutex. The consumer (StallingSourceOp) and a poisoning producer
/// (the executor's device-death path) may therefore run on different
/// threads — previously the accessors and Poison read/wrote this state with
/// no lock at all, which the GUARDED_BY annotation pass flagged.
class BatchSchedule {
 public:
  /// `batches`: device work duration + bytes per batch, in production order.
  /// `eager`: fetch without slot back-pressure (H0 leaf shipping — the host
  /// drains every selection stream into host memory as it is produced).
  BatchSchedule(std::vector<ndp::DeviceBatch> batches, int shared_slots,
                const sim::HwParams* hw, SimNanos start_time, bool eager);

  /// Route span recording for this schedule's timeline: host wait/transfer
  /// intervals onto `host_track`, device batch-production and slot-stall
  /// intervals onto `device_track`. Call before the first Fetch; a null
  /// `rec` (the default state) is the zero-overhead path — Fetch then runs
  /// the exact same simulation statements and only skips recording.
  void AttachTrace(obs::TraceRecorder* rec, int host_track, int device_track);

  /// Host requests batch `i` at host-clock `host_now`; returns the time the
  /// batch data is fully in host memory. Records wait/transfer attribution
  /// into `stages` (initial vs later waits). On a poisoned schedule (see
  /// Poison) a fetch of a dead batch wakes at the death notification and
  /// reports the failure through `error` (when non-null) instead of
  /// blocking forever.
  SimNanos Fetch(size_t i, SimNanos host_now, StageTimes* stages,
                 Status* error = nullptr);

  /// Mark the producer dead as of device/notification time `when`: batches
  /// with index >= `after` (default: everything past the last delivered
  /// batch) will never arrive. A consumer fetching one is woken at
  /// max(host_now, when) and handed `status` — the poison-the-buffer
  /// semantics that replace a consumer deadlock.
  void Poison(SimNanos when, Status status,
              size_t after = static_cast<size_t>(-1));
  bool poisoned() const;
  /// Copy on purpose: a reference would escape the schedule mutex.
  Status poison_status() const;

  size_t num_batches() const { return batches_.size(); }
  uint64_t BatchRowCount(size_t i) const { return batches_[i].rows; }
  /// Device clock when the last batch finished (call after all fetches).
  SimNanos device_finish() const;
  /// Total time core 1 spent halted waiting for a free slot.
  SimNanos device_stall() const;

 private:
  SimNanos FetchLocked(size_t i, SimNanos host_now, StageTimes* stages,
                       Status* error) REQUIRES(mu_);
  void PoisonLocked(SimNanos when, Status status, size_t after)
      REQUIRES(mu_);
  /// Ensure done_[j] is computed for all j <= i.
  void ComputeDoneThrough(size_t i) REQUIRES(mu_);

  // Immutable after construction; read lock-free.
  std::vector<ndp::DeviceBatch> batches_;
  int shared_slots_;
  const sim::HwParams* hw_;
  SimNanos start_;
  bool eager_;

  mutable common::Mutex mu_;
  /// Device completion time per batch.
  std::vector<SimNanos> done_ GUARDED_BY(mu_);
  /// Host fetch completion per batch.
  std::vector<SimNanos> fetched_ GUARDED_BY(mu_);
  size_t computed_ GUARDED_BY(mu_) = 0;
  SimNanos device_stall_ GUARDED_BY(mu_) = 0;
  bool first_fetch_done_ GUARDED_BY(mu_) = false;
  bool poisoned_ GUARDED_BY(mu_) = false;
  SimNanos poison_time_ GUARDED_BY(mu_) = 0;
  /// First batch index that will never arrive.
  size_t poison_after_ GUARDED_BY(mu_) = 0;
  Status poison_status_ GUARDED_BY(mu_);
  /// Null = recording disabled.
  obs::TraceRecorder* rec_ GUARDED_BY(mu_) = nullptr;
  int host_track_ GUARDED_BY(mu_) = -1;
  int device_track_ GUARDED_BY(mu_) = -1;
};

/// Volcano source over device-produced rows that stalls the host clock
/// until each batch has arrived (paper Fig. 7.B/D). Rewind replays from
/// host memory without new waits (data already fetched).
class StallingSourceOp final : public exec::Operator {
 public:
  StallingSourceOp(rel::Schema schema, const std::vector<std::string>* rows,
                   BatchSchedule* schedule, sim::AccessContext* host_ctx,
                   StageTimes* stages);

  const rel::Schema& output_schema() const override { return schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  /// Batch-native: a returned RowBatch never spans device batches, so the
  /// stall/fetch point always falls between host batches exactly as in the
  /// row path (bit-identical wait attribution).
  exec::RowBatch* NextBatch(size_t max_rows) override;
  Status Rewind() override;
  std::string Describe() const override { return "StallingSource"; }

 private:
  /// Advance to the next device batch, stalling the host clock until it
  /// arrives. Returns false at end-of-stream — including the poisoned case,
  /// where the blocked consumer is woken at the producer's death time and
  /// the failure is parked in status().
  bool FetchNextDeviceBatch();

  rel::Schema schema_;
  const std::vector<std::string>* rows_;
  BatchSchedule* schedule_;
  sim::AccessContext* host_ctx_;
  StageTimes* stages_;
  size_t pos_ = 0;
  size_t next_batch_ = 0;  ///< next batch to fetch
  uint64_t batch_rows_left_ = 0;
  exec::RowBatch batch_;
};

}  // namespace hybridndp::hybrid
