// The hybridNDP planner (paper Sect. 3): selectivity estimation from table
// statistics, greedy left-deep join ordering, access-path and join-algorithm
// selection, the cost model of eqs. (1)-(8), and the split-point
// computation of eqs. (9)-(12) / Fig. 5.

#pragma once

#include "hybrid/plan.h"
#include "rel/table.h"
#include "sim/hw_model.h"

namespace hybridndp::hybrid {

/// Planner tuning (paper Table 1, "User / Configuration Variables").
struct PlannerConfig {
  double usr_rec_cycles = 170;   ///< row evaluation cost, abstract cycles
  /// Index access is preferred when the predicate keeps less than this
  /// fraction of the table.
  double index_selectivity_threshold = 0.15;
  /// Preconditions (Sect. 3.3): minimum tables for a split.
  int min_tables_for_split = 2;
  /// Minimum transfer volume (fraction of one shared slot) for offloading
  /// to be considered at all.
  double min_transfer_fill = 0.05;
  /// Join buffer / selection buffer / shared slots deployed per NDP command.
  nkv::NdpBufferConfig buffers;
  /// Host-side join buffer bytes.
  uint64_t host_join_buffer_bytes = 64ull << 20;
  /// Rows per host-pipeline batch pull (DESIGN.md §10). 0 disables the
  /// batch path (row-at-a-time Next); metrics are identical either way.
  size_t exec_batch_rows = 1024;
};

/// Estimate the selectivity of a (bound or unbound) predicate against one
/// table's statistics. Column names may carry an "alias." prefix.
double EstimateSelectivity(const exec::Expr* expr, const rel::TableStats& stats,
                           const rel::Schema& schema,
                           const std::string& alias);

/// The query planner + cost model.
class Planner {
 public:
  Planner(const rel::Catalog* catalog, const sim::HwParams* hw,
          PlannerConfig config = {})
      : catalog_(catalog), hw_(hw), config_(config) {}

  /// Produce the full plan: join order, access paths, costs, split choice.
  Result<Plan> PlanQuery(const Query& query) const;

  const PlannerConfig& config() const { return config_; }

 private:
  /// Choose the access path for one table given its predicate.
  AccessPath ChooseAccessPath(const rel::Table& table,
                              const exec::Expr::Ptr& predicate,
                              const std::string& alias,
                              uint64_t needed_bytes) const;

  /// Estimated |prefix join table| given estimated inputs.
  uint64_t EstimateJoinRows(uint64_t prefix_rows, const rel::Table& table,
                            const AccessPath& access,
                            const std::vector<exec::JoinKey>& keys,
                            int inner_key_col) const;

  const rel::Catalog* catalog_;
  const sim::HwParams* hw_;
  PlannerConfig config_;
};

}  // namespace hybridndp::hybrid
