#include "hybrid/executor.h"

#include <algorithm>

#include "sim/fault.h"

namespace hybridndp::hybrid {

namespace {

/// Default NDP-command setup latency on the host (command preparation, data
/// dictionary lookups, invocation; paper Table 4: negligible share).
constexpr SimNanos kNdpSetupNs = 121'000;

/// Conjunction of extra join edges as a post-join filter expression.
exec::Expr::Ptr ExtraEdgeFilter(const std::vector<exec::JoinKey>& edges) {
  if (edges.empty()) return nullptr;
  std::vector<exec::Expr::Ptr> cmps;
  for (const auto& e : edges) {
    cmps.push_back(
        exec::Expr::CmpCol(e.left_col, exec::CmpOp::kEq, e.right_col));
  }
  if (cmps.size() == 1) return cmps[0];
  return exec::Expr::And(std::move(cmps));
}

/// Per-run copy of a plan with its predicate trees deep-cloned. Bind()
/// writes resolved column indexes into the shared Expr nodes, so plans
/// executing concurrently must not share them.
Plan ClonePlanExprs(const Plan& plan) {
  Plan copy = plan;
  for (auto& table : copy.query.tables) {
    if (table.predicate != nullptr) {
      table.predicate = table.predicate->Clone();
    }
  }
  return copy;
}

/// Label for one run's tracks and metric prefixes. The cache-format
/// override is part of the identity (Table-3 benches run the same choice
/// under both formats), so runs never share a metric prefix within one
/// RunAll fan-out.
std::string RunLabel(const ExecChoice& choice) {
  std::string label = choice.ToString();
  if (choice.cache_format != 0) {
    label += "/cf" + std::to_string(choice.cache_format);
  }
  return label;
}

/// Preorder walk of a finished PQEP recording rows-produced per operator as
/// gauge counters `<label>.op_rows.<idx> <Describe>`. The index keeps
/// duplicate operator names (e.g. two BNLJ stages) distinct and encodes the
/// deterministic preorder position.
void RecordOperatorRows(obs::MetricsRegistry* metrics, const std::string& label,
                        const exec::Operator& root) {
  size_t idx = 0;
  const std::function<void(const exec::Operator&)> visit =
      [&](const exec::Operator& op) {
        metrics
            ->counter(label + ".op_rows." + std::to_string(idx++) + " " +
                      op.Describe())
            ->Set(op.rows_produced());
        op.ForEachChild(visit);
      };
  visit(root);
}

/// End-of-run metric export common to all strategies: per-operator row
/// gauges and (when a host cache was used) block-cache tallies.
void ExportRunMetrics(obs::TraceRecorder* rec, const std::string& label,
                      const exec::Operator& root,
                      const lsm::BlockCache* cache) {
  if (rec == nullptr) return;
  RecordOperatorRows(rec->metrics(), label, root);
  if (cache != nullptr) cache->ExportMetrics(rec->metrics(), label + ".cache");
}

}  // namespace

std::vector<ExecChoice> HybridExecutor::AllChoices(const Plan& plan) {
  std::vector<ExecChoice> out;
  out.push_back({Strategy::kHostBlk, 0});
  out.push_back({Strategy::kHostNative, 0});
  const int n = plan.num_tables();
  for (int k = 0; k <= n - 2; ++k) {
    out.push_back({Strategy::kHybrid, k});
  }
  out.push_back({Strategy::kFullNdp, 0});
  return out;
}

exec::OperatorPtr HybridExecutor::BuildHostScan(const Plan& plan, size_t i,
                                                sim::AccessContext* ctx,
                                                lsm::BlockCache* cache,
                                                sim::IoPath path) const {
  (void)path;
  const PlannedTable& pt = plan.order[i];
  const std::string& alias = plan.query.tables[pt.query_table_idx].alias;
  const exec::Expr::Ptr& pred = plan.query.tables[pt.query_table_idx].predicate;
  lsm::ReadOptions opts;
  opts.ctx = ctx;
  opts.cache = cache;
  if (pt.access.use_index) {
    return std::make_unique<exec::IndexScanOp>(
        pt.table, alias, pt.access.index_no, opts, pt.access.lo, pt.access.hi,
        pred, pt.projection);
  }
  return std::make_unique<exec::TableScanOp>(pt.table, alias, opts, pred,
                                             pt.projection);
}

Result<exec::OperatorPtr> HybridExecutor::BuildHostSuffix(
    const Plan& plan, size_t from, exec::OperatorPtr acc,
    sim::AccessContext* ctx, lsm::BlockCache* cache, sim::IoPath path,
    bool add_root) const {
  lsm::ReadOptions opts;
  opts.ctx = ctx;
  opts.cache = cache;
  for (size_t i = from; i < plan.order.size(); ++i) {
    const PlannedTable& pt = plan.order[i];
    const std::string& alias = plan.query.tables[pt.query_table_idx].alias;
    const exec::Expr::Ptr& pred =
        plan.query.tables[pt.query_table_idx].predicate;
    switch (pt.algo) {
      case nkv::JoinAlgo::kBNLJI:
        acc = std::make_unique<exec::BlockNLIndexJoinOp>(
            std::move(acc), pt.outer_key_col, pt.table, alias,
            pt.inner_join_col, opts, pred, pt.projection,
            config_.host_join_buffer_bytes, ctx);
        break;
      case nkv::JoinAlgo::kBNLJ:
        acc = std::make_unique<exec::BlockNLJoinOp>(
            std::move(acc), BuildHostScan(plan, i, ctx, cache, path), pt.keys,
            nullptr, config_.host_join_buffer_bytes, ctx);
        break;
      case nkv::JoinAlgo::kNLJ:
        acc = std::make_unique<exec::NestedLoopJoinOp>(
            std::move(acc), BuildHostScan(plan, i, ctx, cache, path), pt.keys,
            nullptr, ctx);
        break;
      case nkv::JoinAlgo::kGHJ:
        acc = std::make_unique<exec::GraceHashJoinOp>(
            std::move(acc), BuildHostScan(plan, i, ctx, cache, path), pt.keys,
            nullptr, 8, ctx);
        break;
    }
    if (pt.algo == nkv::JoinAlgo::kBNLJI && !pt.extra_edges.empty()) {
      acc = std::make_unique<exec::FilterOp>(std::move(acc),
                                             ExtraEdgeFilter(pt.extra_edges),
                                             ctx);
    }
  }
  if (add_root) {
    if (plan.query.has_agg) {
      acc = std::make_unique<exec::GroupByAggOp>(
          std::move(acc), plan.query.group_cols, plan.query.aggs, ctx);
    } else if (!plan.query.select_columns.empty()) {
      acc = std::make_unique<exec::ProjectOp>(std::move(acc),
                                              plan.query.select_columns, ctx);
    }
  }
  return acc;
}

Result<RunResult> HybridExecutor::RunHostOnly(const Plan& plan,
                                              const ExecChoice& choice,
                                              lsm::BlockCache* cache,
                                              obs::TraceRecorder* rec,
                                              SimNanos fallback_wasted_ns,
                                              Status fault_status) const {
  const bool fallback = !fault_status.ok();
  const sim::IoPath path = choice.strategy == Strategy::kHostBlk
                               ? sim::IoPath::kBlk
                               : sim::IoPath::kNative;
  sim::AccessContext ctx(hw_, sim::Actor::kHost, path);
  if (fallback) {
    // The aborted device-assisted attempt burned this much simulated time
    // before the failure surfaced; the host-only re-execution starts after
    // it (latency only — no work counters, mirroring the setup charge).
    ctx.ChargeLatency(fallback_wasted_ns);
  }

  exec::OperatorPtr root = BuildHostScan(plan, 0, &ctx, cache, path);
  HNDP_ASSIGN_OR_RETURN(root, BuildHostSuffix(plan, 1, std::move(root), &ctx,
                                              cache, path, /*add_root=*/true));
  HNDP_ASSIGN_OR_RETURN(
      std::vector<std::string> rows,
      config_.exec_batch_rows > 0
          ? exec::CollectAllBatched(root.get(), config_.exec_batch_rows)
          : exec::CollectAll(root.get()));

  RunResult result;
  result.choice = choice;
  result.schema = root->output_schema();
  result.rows = std::move(rows);
  result.host_counters = ctx.counters();
  result.host_stages.processing = ctx.counters().TotalTime();
  result.total_ns = ctx.now();
  if (fallback) {
    result.fell_back = true;
    result.fault_wasted_ns = fallback_wasted_ns;
    result.fault_status = fault_status;
    // Table-4 accounting for the degraded run: the wasted attempt precedes
    // all host processing and is charged to the setup stage, keeping
    // stages.total() == total_ns.
    result.host_stages.ndp_setup = fallback_wasted_ns;
  }
  if (rec != nullptr) {
    const std::string label = RunLabel(choice);
    result.trace_host_track =
        rec->NewTrack(label + (fallback ? " [host fallback]" : " [host]"));
    if (fallback) {
      rec->Span(result.trace_host_track, "fallback (wasted attempt)", "setup",
                0, fallback_wasted_ns,
                {obs::TraceArg::Str("error", fault_status.ToString())});
      rec->metrics()->counter("hndp.fallback")->Add(1);
      sim::FaultInjector::Global().ExportMetrics(rec->metrics());
    }
    // Host-only runs have a single Table-4 stage: everything is processing
    // (preceded, on the degradation path, by the wasted attempt).
    rec->Span(result.trace_host_track, "processing", "processing",
              fallback ? fallback_wasted_ns : 0, result.total_ns,
              {obs::TraceArg::Num("rows", result.result_rows())});
    ExportRunMetrics(rec, label, *root, cache);
  }
  return result;
}

nkv::NdpCommand HybridExecutor::BuildNdpCommand(const Plan& plan,
                                                int split_joins,
                                                bool full_ndp,
                                                int cache_format) const {
  nkv::NdpCommand cmd;
  cmd.buffers = config_.buffers;
  cmd.force_cache_format = cache_format;
  const size_t num_tables = full_ndp ? plan.order.size()
                            : split_joins == 0
                                ? plan.order.size()
                                : static_cast<size_t>(split_joins) + 1;
  cmd.scans_only = !full_ndp && split_joins == 0;

  for (size_t i = 0; i < num_tables; ++i) {
    const PlannedTable& pt = plan.order[i];
    const auto& ref = plan.query.tables[pt.query_table_idx];
    nkv::NdpTableAccess access = nkv::SnapshotTable(*pt.table, ref.alias);
    access.predicate = ref.predicate;
    access.projection = pt.projection;
    access.use_index_scan = pt.access.use_index;
    access.index_no = pt.access.index_no;
    access.index_lo = pt.access.lo;
    access.index_hi = pt.access.hi;
    cmd.snapshot = access.primary.sequence;
    cmd.tables.push_back(std::move(access));
  }
  if (!cmd.scans_only) {
    for (size_t i = 1; i < num_tables; ++i) {
      const PlannedTable& pt = plan.order[i];
      nkv::NdpJoinStage stage;
      stage.algo = pt.algo;
      stage.keys = pt.keys;
      stage.outer_key_col = pt.outer_key_col;
      stage.inner_join_col = pt.inner_join_col;
      if (pt.algo == nkv::JoinAlgo::kBNLJI) {
        stage.residual = ExtraEdgeFilter(pt.extra_edges);
      }
      cmd.joins.push_back(std::move(stage));
    }
  }
  if (full_ndp) {
    cmd.has_agg = plan.query.has_agg;
    cmd.group_cols = plan.query.group_cols;
    cmd.aggs = plan.query.aggs;
    if (!plan.query.has_agg) {
      cmd.output_projection = plan.query.select_columns;
    }
  }
  return cmd;
}

Result<RunResult> HybridExecutor::RunDeviceAssisted(
    const Plan& plan, const ExecChoice& choice, lsm::BlockCache* cache,
    obs::TraceRecorder* rec, SimNanos* fault_wasted_ns) const {
  const bool full_ndp = choice.strategy == Strategy::kFullNdp;
  const int k = choice.split_joins;

  nkv::NdpCommand cmd =
      BuildNdpCommand(plan, k, full_ndp, choice.cache_format);
  ndp::DeviceExecutor device(storage_, hw_);
  HNDP_ASSIGN_OR_RETURN(
      ndp::DeviceRunResult dev,
      device.Execute(cmd, rec != nullptr ? rec->metrics() : nullptr));

  RunResult result;
  result.choice = choice;
  result.device_counters = dev.counters;
  result.device_busy_ns = dev.total_work_ns;
  result.device_rows = dev.total_rows();
  result.transferred_bytes = dev.total_bytes();
  result.num_batches = static_cast<int>(dev.batches.size());
  result.pointer_cache = dev.pointer_cache;

  const std::string label = rec != nullptr ? RunLabel(choice) : std::string();
  int host_track = -1;
  if (rec != nullptr) {
    host_track = rec->NewTrack(label + " [host]");
    result.trace_host_track = host_track;
  }

  sim::AccessContext host_ctx(hw_, sim::Actor::kHost, sim::IoPath::kNative);
  StageTimes& stages = result.host_stages;
  stages.ndp_setup = kNdpSetupNs;
  host_ctx.ChargeLatency(kNdpSetupNs);
  if (rec != nullptr) {
    rec->Span(host_track, "ndp setup", "setup", 0, kNdpSetupNs);
  }

  // Build batch schedules. Pipelined plans have one stream with slot
  // back-pressure; H0 ships every leaf stream eagerly into host memory.
  std::vector<std::vector<ndp::DeviceBatch>> per_stream(
      dev.stream_rows.size());
  if (cmd.scans_only) {
    // Convert global production order into per-stream absolute durations:
    // cumulative work across all streams (single NDP core).
    std::vector<SimNanos> last_done(dev.stream_rows.size(), kNdpSetupNs);
    SimNanos now = kNdpSetupNs;
    for (const auto& b : dev.batches) {
      now += b.work_ns;
      ndp::DeviceBatch adjusted = b;
      adjusted.work_ns = now - last_done[b.stream];
      last_done[b.stream] = now;
      per_stream[b.stream].push_back(adjusted);
    }
  } else {
    per_stream[0] = dev.batches;
  }
  std::vector<std::unique_ptr<BatchSchedule>> schedules;
  for (size_t s = 0; s < per_stream.size(); ++s) {
    schedules.push_back(std::make_unique<BatchSchedule>(
        std::move(per_stream[s]), cmd.buffers.shared_slots, hw_, kNdpSetupNs,
        /*eager=*/cmd.scans_only));
    if (rec != nullptr) {
      // One device track per stream (pipelined plans have exactly one);
      // batch-production and slot-stall spans land there as the host's
      // fetch order forces the lazy schedule to materialize.
      const std::string suffix = per_stream.size() > 1
                                     ? " [device s" + std::to_string(s) + "]"
                                     : " [device]";
      const int device_track = rec->NewTrack(label + suffix);
      if (s == 0) result.trace_device_track = device_track;
      schedules.back()->AttachTrace(rec, host_track, device_track);
    }
    if (!dev.device_status.ok()) {
      // The device died mid-run: batches it produced before the failure are
      // delivered normally, anything past them never arrives. Poisoning (at
      // the device death time, on the host timeline) wakes the consumer
      // instead of letting it stall forever.
      schedules.back()->Poison(kNdpSetupNs + dev.fail_time_ns,
                               dev.device_status);
    }
  }

  // Assemble + run the host PQEP.
  exec::OperatorPtr root;
  if (full_ndp) {
    root = std::make_unique<StallingSourceOp>(dev.schema(), &dev.rows(),
                                              schedules[0].get(), &host_ctx,
                                              &stages);
  } else if (cmd.scans_only) {
    // H0: all joins on the host over the shipped leaf streams.
    root = std::make_unique<StallingSourceOp>(dev.stream_schemas[0],
                                              &dev.stream_rows[0],
                                              schedules[0].get(), &host_ctx,
                                              &stages);
    for (size_t i = 1; i < plan.order.size(); ++i) {
      const PlannedTable& pt = plan.order[i];
      auto inner = std::make_unique<StallingSourceOp>(
          dev.stream_schemas[i], &dev.stream_rows[i], schedules[i].get(),
          &host_ctx, &stages);
      // Equi-keys: every edge is in pt.keys regardless of the chosen algo.
      const std::vector<exec::JoinKey>& keys = pt.keys;
      if (keys.empty()) {
        root = std::make_unique<exec::NestedLoopJoinOp>(
            std::move(root), std::move(inner), keys, nullptr, &host_ctx);
      } else {
        root = std::make_unique<exec::BlockNLJoinOp>(
            std::move(root), std::move(inner), keys, nullptr,
            config_.host_join_buffer_bytes, &host_ctx);
      }
    }
    HNDP_ASSIGN_OR_RETURN(
        root, BuildHostSuffix(plan, plan.order.size(), std::move(root),
                              &host_ctx, cache, sim::IoPath::kNative,
                              /*add_root=*/true));
  } else {
    // Hk: host continues the left-deep plan from position k+1.
    root = std::make_unique<StallingSourceOp>(dev.schema(), &dev.rows(),
                                              schedules[0].get(), &host_ctx,
                                              &stages);
    HNDP_ASSIGN_OR_RETURN(
        root, BuildHostSuffix(plan, static_cast<size_t>(k) + 1,
                              std::move(root), &host_ctx, cache,
                              sim::IoPath::kNative, /*add_root=*/true));
  }
  if (full_ndp && !plan.query.has_agg && !plan.query.select_columns.empty()) {
    // Result already projected on-device; nothing to add.
  }

  Result<std::vector<std::string>> rows =
      config_.exec_batch_rows > 0
          ? exec::CollectAllBatched(root.get(), config_.exec_batch_rows)
          : exec::CollectAll(root.get());
  Status run_error = rows.ok() ? Status::OK() : rows.status();
  if (!dev.device_status.ok()) {
    // The device death is the root cause: it outranks both a successful
    // drain (a consumer that never pulled past the delivered batches would
    // miss the poison) and any downstream symptom of the truncated streams
    // (e.g. a bind error against a placeholder schema).
    run_error = dev.device_status;
  }
  if (!run_error.ok()) {
    if (fault_wasted_ns != nullptr) *fault_wasted_ns = host_ctx.now();
    return run_error;
  }

  result.schema = root->output_schema();
  result.rows = std::move(*rows);
  result.host_counters = host_ctx.counters();
  stages.processing = host_ctx.counters().TotalTime();
  for (const auto& schedule : schedules) {
    result.device_stall_ns += schedule->device_stall();
  }
  result.total_ns = host_ctx.now();
  if (rec != nullptr) {
    // The host clock only moves through ChargeLatency (setup), Charge*
    // (processing) and AdvanceTo jumps (wait + transfer, recorded by
    // BatchSchedule::Fetch). Setup/wait/transfer spans are disjoint, so the
    // gaps between them are exactly the processing time: the four Table-4
    // categories tile [0, total_ns].
    rec->GapFill(host_track, 0, result.total_ns, "processing", "processing");
    ExportRunMetrics(rec, label, *root, cache);
  }
  return result;
}

Result<RunResult> HybridExecutor::Run(const Plan& plan,
                                      const ExecChoice& choice,
                                      lsm::BlockCache* cache,
                                      obs::TraceRecorder* rec) const {
  if (plan.order.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  switch (choice.strategy) {
    case Strategy::kHostBlk:
    case Strategy::kHostNative:
      return RunHostOnly(plan, choice, cache, rec);
    case Strategy::kFullNdp:
    case Strategy::kHybrid: {
      SimNanos wasted = 0;
      Result<RunResult> r = RunDeviceAssisted(plan, choice, cache, rec,
                                              &wasted);
      if (r.ok()) return r;
      const Status& err = r.status();
      if (!err.IsIOError() && !err.IsAborted()) return r;
      // Graceful degradation (Taurus-style, paper Sect. 5): the pushdown
      // died on a fault-class error — re-plan at the pure-host split and
      // re-execute, carrying the wasted simulated time into the accounting.
      return RunHostOnly(plan, choice, cache, rec, wasted, err);
    }
  }
  return Status::InvalidArgument("bad strategy");
}

std::vector<Result<RunResult>> HybridExecutor::RunAll(
    const Plan& plan, const std::vector<ExecChoice>& choices,
    common::ThreadPool* pool, const CacheFactory& make_cache,
    obs::TraceRecorder* rec) const {
  std::vector<Result<RunResult>> results(choices.size(),
                                         Status::Internal("not run"));
  // Pre-open every SST reader with a null context so that no run's first
  // touch gets charged an index-block load the serial order would have
  // attributed to an earlier run. After this, the read path is shared
  // immutable state.
  catalog_->db()->OpenAllReaders();

  auto run_one = [&](size_t i) {
    const Plan run_plan = ClonePlanExprs(plan);
    std::unique_ptr<lsm::BlockCache> cache =
        make_cache ? make_cache() : nullptr;
    results[i] = Run(run_plan, choices[i], cache.get(), rec);
  };

  if (pool == nullptr || pool->size() <= 1) {
    for (size_t i = 0; i < choices.size(); ++i) run_one(i);
  } else {
    pool->ParallelFor(choices.size(), run_one);
  }
  return results;
}

}  // namespace hybridndp::hybrid
