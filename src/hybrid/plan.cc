#include "hybrid/plan.h"

#include <sstream>

namespace hybridndp::hybrid {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kHostBlk:
      return "BLK";
    case Strategy::kHostNative:
      return "NATIVE";
    case Strategy::kFullNdp:
      return "NDP";
    case Strategy::kHybrid:
      return "HYBRID";
  }
  return "?";
}

std::string ExecChoice::ToString() const {
  std::string s = StrategyName(strategy);
  if (strategy == Strategy::kHybrid) {
    s += "(H" + std::to_string(split_joins) + ")";
  }
  return s;
}

std::string Plan::Explain() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "Plan for " << query.name << " (" << order.size() << " tables)\n";
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& p = order[i];
    os << "  [" << i << "] " << p.table->name() << " AS "
       << query.tables[p.query_table_idx].alias;
    if (p.access.use_index) {
      os << " idx[" << p.access.lo << "," << p.access.hi << "]";
    }
    os << " sel=" << p.access.selectivity
       << " rows=" << p.access.est_rows_out;
    if (i > 0) {
      os << " " << nkv::JoinAlgoName(p.algo)
         << " -> prefix_rows=" << p.est_prefix_rows;
    }
    os << " cum_dev=" << cum_dev_ms(i) << "ms cum_host=" << cum_host_ms(i)
       << "ms\n";
  }
  os << "  c_total_host=" << c_total_host / 1e6
     << "ms c_total_dev=" << c_total_dev / 1e6 << "ms c_target="
     << c_target / 1e6 << "ms split_cpu=" << split_cpu
     << " split_mem=" << split_mem << "\n";
  os << "  recommended: " << recommended.ToString()
     << " (est host=" << est_host / 1e6 << "ms ndp=" << est_ndp / 1e6
     << "ms hybrid=" << est_hybrid / 1e6 << "ms)\n";
  return os.str();
}

}  // namespace hybridndp::hybrid
