// Declarative query specification: tables with single-table predicates,
// equi-join edges, final projection/aggregation. This is the planner's
// input (the role MySQL's parsed query plays for hybridNDP).

#pragma once

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"

namespace hybridndp::hybrid {

/// One table reference with its pushed-down (single-table) predicate.
struct TableRef {
  std::string table;   ///< catalog name
  std::string alias;   ///< alias used in column references ("t", "mc", ...)
  exec::Expr::Ptr predicate;  ///< conjunction over "alias.col" names (may be null)
};

/// One equi-join edge: left.alias.col = right.alias.col.
struct JoinEdge {
  std::string left_alias;
  std::string left_col;   ///< unaliased column name
  std::string right_alias;
  std::string right_col;

  std::string LeftName() const { return left_alias + "." + left_col; }
  std::string RightName() const { return right_alias + "." + right_col; }
};

/// A select-project-join(-aggregate) query.
struct Query {
  std::string name;  ///< e.g. "JOB 8c"
  std::vector<TableRef> tables;
  std::vector<JoinEdge> joins;

  /// Final output columns (aliased). Ignored when has_agg is set and aggs
  /// fully define the output.
  std::vector<std::string> select_columns;

  bool has_agg = false;
  std::vector<std::string> group_cols;
  std::vector<exec::AggSpec> aggs;

  int FindTable(const std::string& alias) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].alias == alias) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace hybridndp::hybrid
