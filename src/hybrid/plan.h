// Physical plan representation produced by the hybridNDP planner: a
// left-deep join order with per-table access paths, join algorithms,
// cost-model values (paper eqs. 1-8), and the split-point decision
// (paper eqs. 9-12, Fig. 5).

#pragma once

#include <string>
#include <vector>

#include "hybrid/query.h"
#include "nkv/ndp_command.h"
#include "rel/table.h"

namespace hybridndp::hybrid {

/// Execution strategy of a query (paper Fig. 10 stacks + hybrid splits).
enum class Strategy : uint8_t {
  kHostBlk = 0,   ///< host-only over the file-system stack (BLK baseline)
  kHostNative,    ///< host-only over native NVMe (NATIVE baseline)
  kFullNdp,       ///< entire QEP on-device (NDP)
  kHybrid,        ///< split execution (hybridNDP)
};

const char* StrategyName(Strategy s);

/// A concrete run choice: strategy and, for kHybrid, the split position.
/// split_joins = 0 is H0 (offload every leaf scan, all joins on the host);
/// split_joins = k >= 1 is Hk (tables[0..k] and k joins on-device).
struct ExecChoice {
  Strategy strategy = Strategy::kHostNative;
  int split_joins = 0;
  /// On-device cache-format override (0 auto / 1 row / 2 pointer) — see
  /// nkv::NdpCommand::force_cache_format.
  int cache_format = 0;

  std::string ToString() const;
};

/// Access path for one table in the join order.
struct AccessPath {
  bool use_index = false;
  size_t index_no = 0;
  int64_t lo = 0, hi = 0;       ///< index range on the indexed column
  double selectivity = 1.0;     ///< calc_sel of the pushed-down predicate
  uint64_t est_rows_out = 0;    ///< tbl_ren * calc_sel
  uint64_t proj_bytes = 0;      ///< node_pbn: bytes/row after early projection
};

/// One position of the left-deep join order.
struct PlannedTable {
  int query_table_idx = -1;     ///< into Query::tables
  const rel::Table* table = nullptr;
  AccessPath access;

  // Join with the prefix (positions > 0).
  nkv::JoinAlgo algo = nkv::JoinAlgo::kBNLJ;
  std::vector<exec::JoinKey> keys;     ///< all equi-edges to the prefix
  std::string outer_key_col;           ///< BNLJI: aliased prefix column
  std::string inner_join_col;          ///< BNLJI: unaliased inner column
  std::vector<exec::JoinKey> extra_edges;  ///< applied as post-join filter

  /// Early projection pushed into this table's scan (aliased names).
  std::vector<std::string> projection;

  uint64_t est_prefix_rows = 0;  ///< node_ren after joining this table

  // Cost-model components (paper Table 1), in model cost units.
  double c_scan_host = 0, c_scan_dev = 0;   ///< eq. (2) per side
  double c_cpu_host = 0, c_cpu_dev = 0;     ///< eq. (3)
  double c_trans = 0;                       ///< eq. (4)/(7)
  double c_join_host = 0, c_join_dev = 0;   ///< join-stage costs, eq. (8)
  double cum_host = 0, cum_dev = 0;         ///< cumulative c_node
};

/// Planner output.
struct Plan {
  Query query;
  std::vector<PlannedTable> order;

  // Totals and split computation (paper Sect. 3.3).
  double c_total_host = 0;   ///< host-only QEP cost
  double c_total_dev = 0;    ///< full on-device QEP cost
  double split_cpu = 0;      ///< eq. (9)
  double split_mem = 0;      ///< eq. (11)
  double c_target = 0;       ///< eq. (12)
  double c_h0_dev = 0;       ///< device cost of offloading all leaves (H0)

  /// |c_node(Hk) - c_target| per candidate k (index 0 = H0).
  std::vector<double> split_distance;
  int max_feasible_split = 0;  ///< device-memory cap on split_joins

  /// The optimizer's pick.
  ExecChoice recommended;
  /// Estimated total cost of the recommended hybrid split / host / NDP.
  double est_hybrid = 0, est_host = 0, est_ndp = 0;

  int num_tables() const { return static_cast<int>(order.size()); }
  double cum_dev_ms(size_t i) const { return order[i].cum_dev / 1e6; }
  double cum_host_ms(size_t i) const { return order[i].cum_host / 1e6; }
  std::string Explain() const;
};

}  // namespace hybridndp::hybrid
