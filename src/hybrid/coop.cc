#include "hybrid/coop.h"

#include <sstream>

#include "sim/fault.h"

namespace hybridndp::hybrid {

std::string StageTimes::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const SimNanos t = total();
  auto pct = [&](SimNanos v) { return t > 0 ? v / t * 100.0 : 0.0; };
  os << "  NDP setup (command):        " << ndp_setup / kNanosPerMilli
     << " ms (" << pct(ndp_setup) << "%)\n"
     << "  Wait (initial device exec): " << initial_wait / kNanosPerMilli
     << " ms (" << pct(initial_wait) << "%)\n"
     << "  Wait (2nd, 3rd, ... exec):  " << later_waits / kNanosPerMilli
     << " ms (" << pct(later_waits) << "%)\n"
     << "  Result transfer:            " << result_transfer / kNanosPerMilli
     << " ms (" << pct(result_transfer) << "%)\n"
     << "  Processing:                 " << processing / kNanosPerMilli
     << " ms (" << pct(processing) << "%)\n";
  return os.str();
}

BatchSchedule::BatchSchedule(std::vector<ndp::DeviceBatch> batches,
                             int shared_slots, const sim::HwParams* hw,
                             SimNanos start_time, bool eager)
    : batches_(std::move(batches)),
      shared_slots_(shared_slots < 1 ? 1 : shared_slots),
      hw_(hw),
      start_(start_time),
      eager_(eager) {
  done_.assign(batches_.size(), -1.0);
  fetched_.assign(batches_.size(), -1.0);
}

void BatchSchedule::AttachTrace(obs::TraceRecorder* rec, int host_track,
                                int device_track) {
  common::MutexLock lock(mu_);
  rec_ = rec;
  host_track_ = host_track;
  device_track_ = device_track;
}

bool BatchSchedule::poisoned() const {
  common::MutexLock lock(mu_);
  return poisoned_;
}

Status BatchSchedule::poison_status() const {
  common::MutexLock lock(mu_);
  return poison_status_;
}

SimNanos BatchSchedule::device_finish() const {
  common::MutexLock lock(mu_);
  return done_.empty() ? start_ : done_.back();
}

SimNanos BatchSchedule::device_stall() const {
  common::MutexLock lock(mu_);
  return device_stall_;
}

void BatchSchedule::ComputeDoneThrough(size_t i) {
  while (computed_ <= i && computed_ < batches_.size()) {
    const size_t j = computed_;
    const SimNanos prev = j == 0 ? start_ : done_[j - 1];
    SimNanos begin = prev;
    if (!eager_ && j >= static_cast<size_t>(shared_slots_)) {
      // Core 1 halts until the host frees a slot (paper Sect. 4.2).
      const SimNanos slot_free = fetched_[j - shared_slots_];
      if (slot_free > begin) {
        device_stall_ += slot_free - begin;
        begin = slot_free;
        if (rec_ != nullptr) {
          rec_->Span(device_track_, "slot stall", "stall", prev, begin);
        }
      }
    }
    done_[j] = begin + batches_[j].work_ns;
    if (rec_ != nullptr) {
      rec_->Span(device_track_, "batch " + std::to_string(j), "produce",
                 begin, done_[j],
                 {obs::TraceArg::Num("rows", batches_[j].rows),
                  obs::TraceArg::Num("bytes", batches_[j].bytes)});
    }
    ++computed_;
  }
}

void BatchSchedule::Poison(SimNanos when, Status status, size_t after) {
  common::MutexLock lock(mu_);
  PoisonLocked(when, std::move(status), after);
}

void BatchSchedule::PoisonLocked(SimNanos when, Status status, size_t after) {
  poisoned_ = true;
  poison_time_ = when;
  poison_status_ = std::move(status);
  poison_after_ = after < batches_.size() ? after : batches_.size();
}

SimNanos BatchSchedule::Fetch(size_t i, SimNanos host_now, StageTimes* stages,
                              Status* error) {
  common::MutexLock lock(mu_);
  return FetchLocked(i, host_now, stages, error);
}

SimNanos BatchSchedule::FetchLocked(size_t i, SimNanos host_now,
                                    StageTimes* stages, Status* error) {
  if (error != nullptr) *error = Status::OK();
  if (poisoned_ && i >= poison_after_) {
    // The batch will never arrive: the producer died at poison_time_. Wake
    // the blocked consumer at the death notification (never earlier than
    // its own clock) and surface the failure instead of stalling forever.
    const SimNanos wake = poison_time_ > host_now ? poison_time_ : host_now;
    if (wake > host_now) {
      if (stages != nullptr) {
        if (!first_fetch_done_) {
          stages->initial_wait += wake - host_now;
        } else {
          stages->later_waits += wake - host_now;
        }
      }
      if (rec_ != nullptr) {
        rec_->Span(host_track_, "wait (poisoned)", "wait", host_now, wake,
                   {obs::TraceArg::Num("batch", static_cast<uint64_t>(i))});
      }
    }
    first_fetch_done_ = true;
    if (error != nullptr) *error = poison_status_;
    return wake;
  }
  if (i >= batches_.size()) return host_now;
  if (fetched_[i] >= 0) {
    // Replay from host memory: no new wait/transfer, but the data cannot be
    // observed before it first arrived. The host clock is monotone and was
    // advanced to fetched_[i] when the batch first arrived, so host_now >=
    // fetched_[i] always holds for well-formed consumers; the clamp makes
    // the invariant unconditional for a rewound consumer with a bogus clock.
    return host_now >= fetched_[i] ? host_now : fetched_[i];
  }
  ComputeDoneThrough(i);

  // Fault site: the shared-buffer slot handoff (core 0's relay of a filled
  // slot to the host). A stall policy delays this batch's availability; an
  // exhausted error policy kills the handoff — poison the remaining stream
  // and route this fetch through the poison wake-up above.
  SimNanos fault_delay = 0;
  if (sim::FaultInjector::Enabled()) {
    sim::AccessContext fault_ctx(hw_, sim::Actor::kHost,
                                 sim::IoPath::kInternal);
    Status fs = sim::FaultCheck(sim::FaultSite::kCoopSlot, &fault_ctx);
    fault_delay = fault_ctx.now();  // injected stall + retry backoff time
    if (!fs.ok()) {
      PoisonLocked(host_now + fault_delay, std::move(fs), i);
      return FetchLocked(i, host_now, stages, error);
    }
  }

  const SimNanos wait =
      (done_[i] > host_now ? done_[i] - host_now : 0) + fault_delay;
  if (stages != nullptr) {
    if (!first_fetch_done_) {
      stages->initial_wait += wait;
    } else {
      stages->later_waits += wait;
    }
  }
  if (rec_ != nullptr && wait > 0) {
    rec_->Span(host_track_,
               first_fetch_done_ ? "wait (later)" : "wait (initial)", "wait",
               host_now, host_now + wait,
               {obs::TraceArg::Num("batch", static_cast<uint64_t>(i))});
  }
  first_fetch_done_ = true;

  const SimNanos transfer = hw_->pcie.TransferTime(batches_[i].bytes);
  if (stages != nullptr) stages->result_transfer += transfer;
  const SimNanos ready =
      (host_now > done_[i] ? host_now : done_[i]) + fault_delay;
  const SimNanos arrival = ready + transfer;
  if (rec_ != nullptr && transfer > 0) {
    rec_->Span(host_track_, "transfer batch " + std::to_string(i), "transfer",
               ready, arrival,
               {obs::TraceArg::Num("bytes", batches_[i].bytes)});
  }
  fetched_[i] = arrival;
  return arrival;
}

StallingSourceOp::StallingSourceOp(rel::Schema schema,
                                   const std::vector<std::string>* rows,
                                   BatchSchedule* schedule,
                                   sim::AccessContext* host_ctx,
                                   StageTimes* stages)
    : schema_(std::move(schema)),
      rows_(rows),
      schedule_(schedule),
      host_ctx_(host_ctx),
      stages_(stages) {}

Status StallingSourceOp::Open() {
  pos_ = 0;
  next_batch_ = 0;
  batch_rows_left_ = 0;
  status_ = Status::OK();
  return Status::OK();
}

Status StallingSourceOp::Rewind() { return Open(); }

bool StallingSourceOp::FetchNextDeviceBatch() {
  while (batch_rows_left_ == 0) {
    const bool past_end = next_batch_ >= schedule_->num_batches();
    if (past_end && !schedule_->poisoned()) return false;
    Status err;
    const SimNanos arrival =
        schedule_->Fetch(next_batch_, host_ctx_->now(), stages_, &err);
    host_ctx_->clock().AdvanceTo(arrival);
    if (!err.ok()) {
      // Producer died: we were woken (not deadlocked) with its status.
      status_ = std::move(err);
      return false;
    }
    if (past_end) return false;  // poisoned, but all batches were delivered
    batch_rows_left_ = schedule_->BatchRowCount(next_batch_);
    ++next_batch_;
  }
  return true;
}

bool StallingSourceOp::Next(std::string* row) {
  if (!FetchNextDeviceBatch()) return false;
  if (pos_ >= rows_->size()) return false;
  *row = (*rows_)[pos_++];
  --batch_rows_left_;
  ++rows_produced_;
  // Fig. 7.D: the host maps each incoming record into its engine-internal
  // structures — the received stream still flows through the interpreted
  // row pipeline, like any other storage-engine handler source.
  if (host_ctx_ != nullptr) {
    host_ctx_->Charge(sim::CostKind::kRecordEval, 1);
    host_ctx_->ChargeCopy(row->size());
  }
  return true;
}

exec::RowBatch* StallingSourceOp::NextBatch(size_t max_rows) {
  if (!FetchNextDeviceBatch()) return nullptr;
  if (pos_ >= rows_->size()) return nullptr;
  // Clamp to the current device batch: a second fetch after rows were
  // emitted would move the stall point relative to the row path.
  size_t take = max_rows < batch_rows_left_
                    ? max_rows
                    : static_cast<size_t>(batch_rows_left_);
  const size_t avail = rows_->size() - pos_;
  if (take > avail) take = avail;
  batch_.Reset(&schema_, take);
  // The batch may cap its capacity below `take` (slab ceiling); taking
  // fewer rows than the device batch holds is always legal — only reading
  // past the stall point would change the schedule.
  if (take > batch_.capacity()) take = batch_.capacity();
  for (size_t k = 0; k < take; ++k) {
    batch_.AppendCopy((*rows_)[pos_++].data());
    --batch_rows_left_;
    ++rows_produced_;
  }
  // `take` identical per-record charges, paid in one step (bit-identical,
  // see AccessContext::ChargeRepeated).
  if (host_ctx_ != nullptr) {
    host_ctx_->ChargeRepeated(sim::CostKind::kRecordEval, 1, take);
    host_ctx_->ChargeCopyRepeated(schema_.row_size(), take);
  }
  return &batch_;
}

}  // namespace hybridndp::hybrid
