#include "hybrid/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace hybridndp::hybrid {

namespace {

/// Strip an "alias." prefix from a column reference.
std::string Unalias(const std::string& name, const std::string& alias) {
  const std::string prefix = alias + ".";
  if (name.rfind(prefix, 0) == 0) return name.substr(prefix.size());
  return name;
}

}  // namespace

double EstimateSelectivity(const exec::Expr* expr,
                           const rel::TableStats& stats,
                           const rel::Schema& schema,
                           const std::string& alias) {
  using exec::CmpOp;
  using exec::ExprKind;
  if (expr == nullptr || stats.empty()) return 1.0;

  auto col_stats = [&](const std::string& name) -> const rel::ColumnStats* {
    const int idx = schema.Find(Unalias(name, alias));
    if (idx < 0) return nullptr;
    return &stats.col(idx);
  };

  switch (expr->kind) {
    case ExprKind::kCmpInt: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      if (cs == nullptr) return 0.3;
      const int32_t v = static_cast<int32_t>(expr->int_value);
      switch (expr->op) {
        case CmpOp::kEq:
          return cs->EqSelectivity(v);
        case CmpOp::kNe:
          return 1.0 - cs->EqSelectivity(v);
        case CmpOp::kLt:
          return cs->LeSelectivity(v - 1);
        case CmpOp::kLe:
          return cs->LeSelectivity(v);
        case CmpOp::kGt:
          return 1.0 - cs->LeSelectivity(v);
        case CmpOp::kGe:
          return 1.0 - cs->LeSelectivity(v - 1);
      }
      return 0.3;
    }
    case ExprKind::kCmpStr: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      if (cs == nullptr || cs->ndv == 0) return 0.1;
      const double eq = 1.0 / static_cast<double>(cs->ndv);
      return expr->op == CmpOp::kEq ? eq
             : expr->op == CmpOp::kNe ? 1.0 - eq
                                      : 0.3;
    }
    case ExprKind::kCmpCol:
      return 0.1;  // same-row column comparison: heuristic
    case ExprKind::kLike: {
      // MySQL-style heuristics: prefix patterns are more selective than
      // contains patterns.
      double s = expr->str_value.rfind('%', 0) == 0 ? 0.08 : 0.03;
      return expr->negated ? 1.0 - s : s;
    }
    case ExprKind::kInStr: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      if (cs == nullptr || cs->ndv == 0) return 0.2;
      return std::min(1.0, static_cast<double>(expr->str_list.size()) /
                               static_cast<double>(cs->ndv));
    }
    case ExprKind::kInInt: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      if (cs == nullptr || cs->ndv == 0) return 0.2;
      return std::min(1.0, static_cast<double>(expr->int_list.size()) /
                               static_cast<double>(cs->ndv));
    }
    case ExprKind::kBetween: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      if (cs == nullptr) return 0.25;
      return cs->RangeSelectivity(static_cast<int32_t>(expr->int_value),
                                  static_cast<int32_t>(expr->int_value2));
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const auto& child : expr->children) {
        s *= EstimateSelectivity(child.get(), stats, schema, alias);
      }
      return s;
    }
    case ExprKind::kOr: {
      double s = 1.0;
      for (const auto& child : expr->children) {
        s *= 1.0 - EstimateSelectivity(child.get(), stats, schema, alias);
      }
      return 1.0 - s;
    }
    case ExprKind::kNot:
      return 1.0 -
             EstimateSelectivity(expr->children[0].get(), stats, schema, alias);
    case ExprKind::kIsNotNull: {
      const rel::ColumnStats* cs = col_stats(expr->column);
      return cs == nullptr ? 0.95 : 1.0 - cs->null_fraction;
    }
  }
  return 1.0;
}

AccessPath Planner::ChooseAccessPath(const rel::Table& table,
                                     const exec::Expr::Ptr& predicate,
                                     const std::string& alias,
                                     uint64_t needed_bytes) const {
  AccessPath path;
  path.selectivity = EstimateSelectivity(predicate.get(), table.stats(),
                                         table.schema(), alias);
  path.est_rows_out = std::max<uint64_t>(
      1, static_cast<uint64_t>(path.selectivity *
                               static_cast<double>(table.row_count())));
  path.proj_bytes = needed_bytes;

  // Look for an index-usable range conjunct on an indexed int column.
  if (predicate == nullptr) return path;
  std::vector<exec::Expr::Ptr> conjuncts;
  exec::Expr::SplitConjuncts(predicate, &conjuncts);
  double best_sel = config_.index_selectivity_threshold;
  for (const auto& c : conjuncts) {
    if (c->column.empty()) continue;
    const int col = table.schema().Find(Unalias(c->column, alias));
    if (col < 0) continue;
    const int index_no = table.FindIndexOn(col);
    if (index_no < 0) continue;
    if (table.schema().column(col).type != rel::ColType::kInt32) continue;

    int64_t lo = std::numeric_limits<int32_t>::min();
    int64_t hi = std::numeric_limits<int32_t>::max();
    bool usable = true;
    switch (c->kind) {
      case exec::ExprKind::kCmpInt:
        switch (c->op) {
          case exec::CmpOp::kEq:
            lo = hi = c->int_value;
            break;
          case exec::CmpOp::kLe:
            hi = c->int_value;
            break;
          case exec::CmpOp::kLt:
            hi = c->int_value - 1;
            break;
          case exec::CmpOp::kGe:
            lo = c->int_value;
            break;
          case exec::CmpOp::kGt:
            lo = c->int_value + 1;
            break;
          default:
            usable = false;
        }
        break;
      case exec::ExprKind::kBetween:
        lo = c->int_value;
        hi = c->int_value2;
        break;
      default:
        usable = false;
    }
    if (!usable) continue;
    const double sel = EstimateSelectivity(c.get(), table.stats(),
                                           table.schema(), alias);
    if (sel < best_sel) {
      best_sel = sel;
      path.use_index = true;
      path.index_no = static_cast<size_t>(index_no);
      path.lo = lo;
      path.hi = hi;
    }
  }
  return path;
}

uint64_t Planner::EstimateJoinRows(uint64_t prefix_rows,
                                   const rel::Table& table,
                                   const AccessPath& access,
                                   const std::vector<exec::JoinKey>& keys,
                                   int inner_key_col) const {
  (void)keys;
  // |P join T| ~= |P| * |T_sel| / ndv(T.key)  (System-R style).
  uint64_t ndv = 1;
  if (inner_key_col >= 0 && !table.stats().empty()) {
    ndv = std::max<uint64_t>(1, table.stats().col(inner_key_col).ndv);
  }
  const double rows = static_cast<double>(prefix_rows) *
                      static_cast<double>(access.est_rows_out) /
                      static_cast<double>(ndv);
  return std::max<uint64_t>(1, static_cast<uint64_t>(rows));
}

Result<Plan> Planner::PlanQuery(const Query& query) const {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query without tables");
  }
  Plan plan;
  plan.query = query;
  const auto& hw = *hw_;

  // ---- Columns each table must contribute upstream (early projection).
  std::set<std::string> needed;
  for (const auto& e : query.joins) {
    needed.insert(e.LeftName());
    needed.insert(e.RightName());
  }
  for (const auto& c : query.select_columns) needed.insert(c);
  for (const auto& c : query.group_cols) needed.insert(c);
  for (const auto& a : query.aggs) {
    if (!a.column.empty()) needed.insert(a.column);
  }

  // ---- Per-table access paths.
  struct Candidate {
    int idx;
    const rel::Table* table;
    AccessPath access;
    std::vector<std::string> projection;
  };
  std::vector<Candidate> cands;
  for (size_t i = 0; i < query.tables.size(); ++i) {
    const auto& ref = query.tables[i];
    const rel::Table* table = catalog_->Get(ref.table);
    if (table == nullptr) {
      return Status::InvalidArgument("unknown table: " + ref.table);
    }
    Candidate c;
    c.idx = static_cast<int>(i);
    c.table = table;
    // Projection: needed columns of this alias, in schema order.
    uint64_t bytes = 0;
    for (size_t col = 0; col < table->schema().num_columns(); ++col) {
      const std::string aliased =
          ref.alias + "." + table->schema().column(col).name;
      if (needed.count(aliased)) {
        c.projection.push_back(aliased);
        bytes += table->schema().column(col).size;
      }
    }
    if (c.projection.empty()) {
      // A table must contribute at least its pk to stay joinable.
      const auto& pk = table->schema().column(table->def().pk_col);
      c.projection.push_back(ref.alias + "." + pk.name);
      bytes += pk.size;
    }
    c.access = ChooseAccessPath(*table, ref.predicate, ref.alias, bytes);
    cands.push_back(std::move(c));
  }

  // ---- Greedy left-deep join order: start at the cheapest table, then
  // repeatedly add the connected table with the smallest estimated result
  // (paper Sect. 3.3: cumulative addition in ascending cost order).
  std::vector<bool> used(cands.size(), false);
  std::set<std::string> prefix_aliases;

  auto edges_to_prefix = [&](int cand_idx) {
    std::vector<JoinEdge> out;
    const std::string& alias = query.tables[cands[cand_idx].idx].alias;
    for (const auto& e : query.joins) {
      if (e.left_alias == alias && prefix_aliases.count(e.right_alias)) {
        // Normalize: prefix side left.
        out.push_back(JoinEdge{e.right_alias, e.right_col, e.left_alias,
                               e.left_col});
      } else if (e.right_alias == alias && prefix_aliases.count(e.left_alias)) {
        out.push_back(e);
      }
    }
    return out;
  };

  // First table: smallest estimated post-selection cardinality.
  size_t first = 0;
  for (size_t i = 1; i < cands.size(); ++i) {
    if (cands[i].access.est_rows_out < cands[first].access.est_rows_out) {
      first = i;
    }
  }

  uint64_t prefix_rows = cands[first].access.est_rows_out;
  uint64_t prefix_row_bytes = cands[first].access.proj_bytes;

  PlannedTable first_pt;
  first_pt.query_table_idx = cands[first].idx;
  first_pt.table = cands[first].table;
  first_pt.access = cands[first].access;
  first_pt.projection = cands[first].projection;
  first_pt.est_prefix_rows = prefix_rows;
  plan.order.push_back(std::move(first_pt));
  used[first] = true;
  prefix_aliases.insert(query.tables[cands[first].idx].alias);

  while (plan.order.size() < cands.size()) {
    int best = -1;
    uint64_t best_rows = 0;
    std::vector<JoinEdge> best_edges;
    bool best_connected = false;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (used[i]) continue;
      auto edges = edges_to_prefix(static_cast<int>(i));
      const bool connected = !edges.empty();
      uint64_t rows;
      if (connected) {
        const int key_col = cands[i].table->schema().Find(edges[0].right_col);
        rows = EstimateJoinRows(prefix_rows, *cands[i].table, cands[i].access,
                                {}, key_col);
      } else {
        rows = prefix_rows * cands[i].access.est_rows_out;  // cross product
      }
      // Prefer connected tables; among them the smallest result.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && rows < best_rows)) {
        best = static_cast<int>(i);
        best_rows = rows;
        best_edges = std::move(edges);
        best_connected = connected;
      }
    }

    Candidate& c = cands[best];
    PlannedTable pt;
    pt.query_table_idx = c.idx;
    pt.table = c.table;
    pt.access = c.access;
    pt.projection = c.projection;
    pt.est_prefix_rows = best_rows;

    const std::string& alias = query.tables[c.idx].alias;
    if (!best_edges.empty()) {
      // Record all equi-edges; the final BNLJ-vs-BNLJI decision is made by
      // the cost pass below (MySQL-style access-path costing).
      for (const auto& e : best_edges) {
        pt.keys.push_back(exec::JoinKey{e.LeftName(), e.RightName()});
      }
      const int inner_col = c.table->schema().Find(best_edges[0].right_col);
      const bool indexed = inner_col >= 0 &&
                           (inner_col == c.table->def().pk_col ||
                            c.table->FindIndexOn(inner_col) >= 0);
      if (indexed) {
        pt.outer_key_col = best_edges[0].LeftName();
        pt.inner_join_col = best_edges[0].right_col;
        for (size_t e = 1; e < best_edges.size(); ++e) {
          pt.extra_edges.push_back(exec::JoinKey{best_edges[e].LeftName(),
                                                 best_edges[e].RightName()});
        }
      }
      pt.algo = nkv::JoinAlgo::kBNLJ;  // provisional; cost pass may switch
    } else {
      // Cross product: BNLJ with no keys degenerates; use NLJ.
      pt.algo = nkv::JoinAlgo::kNLJ;
    }

    plan.order.push_back(std::move(pt));
    used[best] = true;
    prefix_aliases.insert(alias);
    prefix_rows = best_rows;
    prefix_row_bytes += c.access.proj_bytes;
  }

  // ---- Cost model (eqs. 1-8), all values in simulated nanoseconds.
  const double host_hz =
      hw.host_cpu.effective_hz / hw.host_cpu.engine_cycle_factor;
  const double dev_hz =
      hw.device_cpu.effective_hz / hw.device_cpu.engine_cycle_factor;
  const double usr_rec = config_.usr_rec_cycles;

  auto scan_cost = [&](uint64_t bytes, bool device) {
    const double fcf = device ? hw.ndp_flash_clock : hw.host_flash_clock;
    double t = hw.flash.InternalReadTime(bytes) / fcf;  // calc_frt
    if (!device) t += hw.pcie.TransferTime(bytes);      // tbl_sea via stack
    return t;
  };
  auto cpu_cost = [&](uint64_t records, uint64_t pbn, bool device) {
    // eq (3): tbl_ren * usr_rec * node_pbn * calc_pcf.
    const double cycles =
        static_cast<double>(records) * (usr_rec + static_cast<double>(pbn));
    return cycles / (device ? dev_hz : host_hz) * kNanosPerSec;
  };
  auto trans_cost = [&](uint64_t records, uint64_t pbn) {
    // eq (4)/(7): result volume over the interconnect, in slot blocks.
    const uint64_t bytes = records * pbn;
    const uint64_t blocks =
        std::max<uint64_t>(1, bytes / config_.buffers.shared_slot_bytes);
    return hw.pcie.TransferTime(bytes) +
           static_cast<double>(blocks - 1) * hw.pcie.command_latency_ns;
  };
  // Index-lookup cost: CPU seek work per lookup plus flash misses. Misses
  // are cache-aware: while the inner table fits the actor's block cache,
  // only cold misses (bounded by the table's page count) hit flash; a table
  // larger than the cache misses on every lookup.
  auto random_read_cost = [&](uint64_t lookups, uint64_t inner_bytes,
                              bool device) {
    const double fcf = device ? hw.ndp_flash_clock : hw.host_flash_clock;
    double page_t = hw.flash.RandomPageReadTime() / fcf * 2;  // idx + data
    if (!device) {
      page_t += hw.pcie.command_latency_ns +
                hw.pcie.TransferTime(hw.flash.page_bytes);
    }
    const uint64_t cache_bytes =
        device ? hw.mem.device_ndp_budget_bytes / 4 : hw.mem.host_bytes / 4;
    const uint64_t inner_pages =
        inner_bytes / std::max<uint64_t>(1, hw.flash.page_bytes) + 2;
    const double flash_reads =
        inner_bytes <= cache_bytes
            ? static_cast<double>(std::min(lookups, inner_pages))
            : static_cast<double>(lookups);
    const double seek_cycles = 1000;  // seek index block + data block
    const double cpu_t =
        seek_cycles / (device ? dev_hz : host_hz) * kNanosPerSec;
    return flash_reads * page_t + static_cast<double>(lookups) * cpu_t;
  };

  double cum_host = 0, cum_dev = 0;
  uint64_t run_prefix_rows = 0;
  uint64_t run_prefix_bytes = 0;
  plan.c_h0_dev = 0;
  double h0_host_extra = 0;

  for (size_t i = 0; i < plan.order.size(); ++i) {
    PlannedTable& pt = plan.order[i];
    const rel::Table& t = *pt.table;
    const uint64_t table_bytes = t.stored_bytes();

    if (pt.access.use_index) {
      pt.c_scan_host =
          random_read_cost(pt.access.est_rows_out, table_bytes, false);
      pt.c_scan_dev =
          random_read_cost(pt.access.est_rows_out, table_bytes, true);
      pt.c_cpu_host = cpu_cost(pt.access.est_rows_out, pt.access.proj_bytes,
                               false);
      pt.c_cpu_dev = cpu_cost(pt.access.est_rows_out, pt.access.proj_bytes,
                              true);
    } else {
      pt.c_scan_host = scan_cost(table_bytes, false);
      pt.c_scan_dev = scan_cost(table_bytes, true);
      pt.c_cpu_host = cpu_cost(t.row_count(), pt.access.proj_bytes, false);
      pt.c_cpu_dev = cpu_cost(t.row_count(), pt.access.proj_bytes, true);
    }
    pt.c_trans = trans_cost(pt.access.est_rows_out, pt.access.proj_bytes);
    plan.c_h0_dev += pt.c_scan_dev + pt.c_cpu_dev + pt.c_trans;
    // With H0 the host re-evaluates nothing but must join everything: the
    // join costs below on the host side apply, minus its own scans.

    if (i == 0) {
      cum_host = pt.c_scan_host + pt.c_cpu_host;
      cum_dev = pt.c_scan_dev + pt.c_cpu_dev;
      run_prefix_rows = pt.access.est_rows_out;
      run_prefix_bytes = pt.access.proj_bytes;
    } else {
      // Join-stage cost, eq (8): previous node + per-record evaluation +
      // buffer management + transfer (pending at the end for NDP).
      // Cost both algorithms; the cheaper host-side plan decides (MySQL
      // picks the access path; the device reuses the chosen plan).
      const uint64_t dev_passes = std::max<uint64_t>(
          1, run_prefix_rows * run_prefix_bytes /
                 std::max<uint64_t>(1, config_.buffers.join_buffer_bytes));
      const uint64_t host_passes = std::max<uint64_t>(
          1, run_prefix_rows * run_prefix_bytes /
                 std::max<uint64_t>(1, config_.host_join_buffer_bytes));
      const uint64_t inner_bytes =
          pt.access.use_index
              ? pt.access.est_rows_out * t.schema().row_size()
              : t.stored_bytes();
      const double bnlj_host =
          static_cast<double>(host_passes) * scan_cost(inner_bytes, false) +
          cpu_cost(host_passes * t.row_count(), 4, false);
      const double bnlj_dev =
          static_cast<double>(dev_passes) * scan_cost(inner_bytes, true) +
          cpu_cost(dev_passes * t.row_count(), 4, true);
      const bool bnlji_possible =
          pt.algo != nkv::JoinAlgo::kNLJ && !pt.outer_key_col.empty();
      // BNLJI pays one secondary-index seek per outer row plus one
      // primary-key seek per *match* (the Fig. 9 two-step path), so the
      // estimated output cardinality is part of the lookup count.
      const uint64_t bnlji_seeks = run_prefix_rows + pt.est_prefix_rows;
      const double bnlji_host =
          bnlji_possible
              ? random_read_cost(bnlji_seeks, t.stored_bytes(), false)
              : std::numeric_limits<double>::infinity();
      const double bnlji_dev =
          bnlji_possible
              ? random_read_cost(bnlji_seeks, t.stored_bytes(), true)
              : std::numeric_limits<double>::infinity();

      double join_host, join_dev;
      if (pt.algo != nkv::JoinAlgo::kNLJ) {
        if (bnlji_host < bnlj_host) {
          pt.algo = nkv::JoinAlgo::kBNLJI;
          join_host = bnlji_host;
          join_dev = bnlji_dev;
        } else {
          pt.algo = nkv::JoinAlgo::kBNLJ;
          join_host = bnlj_host;
          join_dev = bnlj_dev;
        }
      } else {
        join_host = bnlj_host;
        join_dev = bnlj_dev;
      }
      const uint64_t out_rows = pt.est_prefix_rows;
      join_host += cpu_cost(run_prefix_rows + out_rows, 8, false);
      join_dev += cpu_cost(run_prefix_rows + out_rows, 8, true);
      pt.c_join_host = join_host;
      pt.c_join_dev = join_dev;
      h0_host_extra += join_host - (pt.algo == nkv::JoinAlgo::kBNLJ
                                        ? scan_cost(t.data_bytes(), false)
                                        : 0.0);

      cum_host += join_host;
      cum_dev += join_dev;
      run_prefix_rows = out_rows;
      run_prefix_bytes += pt.access.proj_bytes;
    }
    pt.cum_host = cum_host;
    pt.cum_dev = cum_dev;
  }

  plan.c_total_host = cum_host * hw.blk_stack_overhead;  // BLK baseline
  plan.c_total_dev =
      cum_dev + trans_cost(run_prefix_rows, run_prefix_bytes);

  // ---- Split target, eqs. (9)-(12).
  const int n = plan.num_tables();
  // Eq. (9): the host-to-device performance ratio. We read the paper's
  // *_FCF inputs as the profiled effective clock frequencies of the two
  // compute elements (CoreMark-calibrated); taking the flash clocks instead
  // would place c_target beyond the deepest feasible split for every query.
  plan.split_cpu = 100.0 * (dev_hz * hw.flash_weight) /
                   (host_hz * hw.flash_weight);
  const double split_dev_bytes =
      static_cast<double>(n) * hw.mem.device_selection_bytes +
      static_cast<double>(n - 1) * hw.mem.device_join_bytes;
  plan.split_mem = 100.0 * (split_dev_bytes * hw.mem.mem_weight) /
                   (static_cast<double>(hw.mem.host_bytes) * hw.mem.mem_weight);
  plan.c_target =
      plan.c_total_dev * (plan.split_cpu + plan.split_mem) / (2.0 * 100.0);

  // ---- Feasibility cap: the deepest split whose buffer reservation fits
  // the device NDP budget.
  plan.max_feasible_split = 0;
  for (int k = 1; k <= n - 1; ++k) {
    const uint64_t reserved =
        static_cast<uint64_t>(k + 1) * config_.buffers.selection_buffer_bytes +
        static_cast<uint64_t>(k) * config_.buffers.join_buffer_bytes +
        static_cast<uint64_t>(config_.buffers.shared_slots) *
            config_.buffers.shared_slot_bytes;
    if (reserved <= hw.mem.device_ndp_budget_bytes) {
      plan.max_feasible_split = k;
    }
  }

  // ---- Candidate distances: H0 plus H1..H(n-2) prefixes (Fig. 5: the
  // full-depth point is the NDP-only execution, not a split).
  plan.split_distance.assign(static_cast<size_t>(std::max(1, n - 1)), 0.0);
  plan.split_distance[0] = std::abs(plan.c_h0_dev - plan.c_target);
  int best_k = 0;
  for (int k = 1; k <= n - 2; ++k) {
    if (k > plan.max_feasible_split) {
      plan.split_distance[k] = std::numeric_limits<double>::infinity();
      continue;
    }
    plan.split_distance[k] =
        std::abs(plan.order[k].cum_dev - plan.c_target);
    if (plan.split_distance[k] < plan.split_distance[best_k]) best_k = k;
  }

  // ---- Strategy estimates.
  plan.est_host = plan.c_total_host;
  plan.est_ndp = plan.c_total_dev;
  double dev_part, host_part;
  if (best_k == 0) {
    dev_part = plan.c_h0_dev;
    host_part = h0_host_extra;
  } else {
    dev_part = plan.order[best_k].cum_dev +
               trans_cost(plan.order[best_k].est_prefix_rows,
                          plan.order[best_k].access.proj_bytes * (best_k + 1));
    host_part = 0;
    for (int i = best_k + 1; i < n; ++i) host_part += plan.order[i].c_join_host;
  }
  // Cooperative overlap: total ~ max of both sides plus the initial
  // on-device latency before the first intermediate result arrives.
  plan.est_hybrid = std::max(dev_part, host_part) + 0.1 * dev_part;

  plan.recommended.split_joins = best_k;
  if (n < config_.min_tables_for_split) {
    plan.recommended.strategy = plan.est_ndp < plan.est_host
                                    ? Strategy::kFullNdp
                                    : Strategy::kHostBlk;
  } else if (plan.est_hybrid <= plan.est_host &&
             plan.est_hybrid <= plan.est_ndp) {
    plan.recommended.strategy = Strategy::kHybrid;
  } else if (plan.est_ndp < plan.est_host) {
    plan.recommended.strategy = Strategy::kFullNdp;
  } else {
    plan.recommended.strategy = Strategy::kHostBlk;
  }
  return plan;
}

}  // namespace hybridndp::hybrid
