// Relational schema with the paper's storage format restrictions (Sect. 5,
// Workloads): fixed-size byte lengths for character values (padding/
// trimming) and 4-byte integers, 4-byte aligned — rows are fixed-size byte
// strings, which is what the on-device engine parses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace hybridndp::rel {

enum class ColType : uint8_t {
  kInt32 = 0,  ///< 4-byte signed integer
  kChar = 1,   ///< fixed-size CHAR(n), zero-padded
};

/// One column of a table.
struct Column {
  std::string name;
  ColType type = ColType::kInt32;
  uint32_t size = 4;  ///< bytes in the row (4 for kInt32; n for kChar)
};

inline Column IntCol(std::string name) {
  return Column{std::move(name), ColType::kInt32, 4};
}
inline Column CharCol(std::string name, uint32_t n) {
  // 4-byte alignment of the COSMOS+ board (paper Sect. 5).
  n = (n + 3u) & ~3u;
  return Column{std::move(name), ColType::kChar, n};
}

/// Fixed-size row layout: column byte offsets are precomputed.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  uint32_t row_size() const { return row_size_; }

  /// Index of a column by name, or -1.
  int Find(const std::string& name) const;

  /// Concatenate two schemas (join output), prefixing column names with
  /// `left_prefix`/`right_prefix` when non-empty to avoid collisions.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Schema of a projection (subset of columns, by index).
  Schema Project(const std::vector<int>& cols) const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_size_ = 0;
};

/// Read-only view over one fixed-size row.
class RowView {
 public:
  RowView() = default;
  RowView(const char* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  bool valid() const { return data_ != nullptr; }
  const char* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  int32_t GetInt(int col) const {
    return static_cast<int32_t>(DecodeFixed32(data_ + schema_->offset(col)));
  }
  /// CHAR column bytes including padding.
  Slice GetRaw(int col) const {
    return Slice(data_ + schema_->offset(col), schema_->column(col).size);
  }
  /// CHAR column with trailing zero padding stripped.
  Slice GetString(int col) const {
    Slice raw = GetRaw(col);
    size_t n = raw.size();
    while (n > 0 && raw[n - 1] == '\0') --n;
    return Slice(raw.data(), n);
  }

 private:
  const char* data_ = nullptr;
  const Schema* schema_ = nullptr;
};

/// Builds one fixed-size row.
class RowBuilder {
 public:
  explicit RowBuilder(const Schema* schema)
      : schema_(schema), buf_(schema->row_size(), '\0') {}

  RowBuilder& SetInt(int col, int32_t v) {
    EncodeFixed32(&buf_[schema_->offset(col)], static_cast<uint32_t>(v));
    return *this;
  }
  /// Pads or trims `s` to the column's fixed size (paper's JOB adaptation).
  RowBuilder& SetString(int col, const Slice& s) {
    const uint32_t size = schema_->column(col).size;
    const size_t n = s.size() < size ? s.size() : size;
    memcpy(&buf_[schema_->offset(col)], s.data(), n);
    memset(&buf_[schema_->offset(col)] + n, 0, size - n);
    return *this;
  }

  const std::string& row() const { return buf_; }
  RowView view() const { return RowView(buf_.data(), schema_); }

 private:
  const Schema* schema_;
  std::string buf_;
};

}  // namespace hybridndp::rel
