#include "rel/table.h"

namespace hybridndp::rel {

std::string EncodeIndexPrefixInt(int32_t v) {
  std::string s;
  PutOrderedInt32(&s, v);
  return s;
}

std::string EncodeIndexPrefixStr(const Slice& s, uint32_t col_size) {
  // Fixed-size padded bytes compare like the column value.
  std::string out(s.data(), s.size() < col_size ? s.size() : col_size);
  out.resize(col_size, '\0');
  return out;
}

std::string EncodeIndexPrefix(const Schema& schema, int col,
                              const RowView& row) {
  if (schema.column(col).type == ColType::kInt32) {
    return EncodeIndexPrefixInt(row.GetInt(col));
  }
  return EncodeIndexPrefixStr(row.GetRaw(col), schema.column(col).size);
}

Table::Table(lsm::DB* db, TableDef def) : db_(db), def_(std::move(def)) {
  primary_cf_ = db_->CreateColumnFamily("t_" + def_.name);
  for (const auto& idx : def_.indexes) {
    index_cfs_.push_back(db_->CreateColumnFamily("i_" + def_.name + "_" +
                                                 idx.name));
  }
}

Status Table::Insert(const std::string& row) {
  if (row.size() != def_.schema.row_size()) {
    return Status::InvalidArgument("row size mismatch for " + def_.name);
  }
  const RowView view(row.data(), &def_.schema);
  const int32_t pk = view.GetInt(def_.pk_col);
  std::string pk_key;
  PutOrderedInt32(&pk_key, pk);
  HNDP_RETURN_IF_ERROR(db_->Put(primary_cf_, pk_key, row));

  // Secondary index entry: key = secondary bytes | pk bytes (paper Sect 2.2);
  // the value stays empty (reserved for metadata).
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    std::string ikey =
        EncodeIndexPrefix(def_.schema, def_.indexes[i].col, view);
    ikey += pk_key;
    HNDP_RETURN_IF_ERROR(db_->Put(index_cfs_[i], ikey, Slice()));
  }
  ++row_count_;
  return Status::OK();
}

uint64_t Table::stored_bytes() const {
  const uint64_t physical = db_->GetVersion(primary_cf_).TotalBytes();
  // Unflushed data has no SST form yet; approximate with logical bytes.
  return physical > 0 ? physical : data_bytes();
}

Status Table::GetByPk(const lsm::ReadOptions& opts, int32_t pk,
                      std::string* row) const {
  std::string pk_key;
  PutOrderedInt32(&pk_key, pk);
  return db_->Get(opts, primary_cf_, pk_key, row);
}

lsm::IteratorPtr Table::NewScanIterator(const lsm::ReadOptions& opts) const {
  return db_->NewIterator(opts, primary_cf_);
}

lsm::IteratorPtr Table::NewIndexIterator(const lsm::ReadOptions& opts,
                                         size_t index_no) const {
  return db_->NewIterator(opts, index_cfs_[index_no]);
}

Status Table::AnalyzeStats() {
  StatsCollector collector(&def_.schema);
  auto iter = NewScanIterator(lsm::ReadOptions{});
  uint64_t rows = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    collector.AddRow(RowView(iter->value().data(), &def_.schema));
    ++rows;
  }
  stats_ = collector.Finish();
  row_count_ = rows;
  return Status::OK();
}

Table* Catalog::CreateTable(TableDef def) {
  const std::string name = def.name;
  auto table = std::make_unique<Table>(db_, std::move(def));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

Table* Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<Table*> Catalog::tables() const {
  std::vector<Table*> out;
  for (const auto& [_, t] : tables_) out.push_back(t.get());
  return out;
}

}  // namespace hybridndp::rel
