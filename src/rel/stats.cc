#include "rel/stats.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace hybridndp::rel {

double ColumnStats::EqSelectivity(int32_t v) const {
  if (ndv == 0) return 0.0;
  if (is_int && !histogram.empty() && max_int > min_int) {
    // Histogram bucket frequency spread over the bucket's distinct share.
    uint64_t total = 0;
    for (uint64_t b : histogram) total += b;
    if (total == 0) return 0.0;
    const double width =
        (static_cast<double>(max_int) - min_int + 1) / histogram.size();
    size_t bucket = static_cast<size_t>((v - min_int) / width);
    if (v < min_int || v > max_int) return 0.0;
    if (bucket >= histogram.size()) bucket = histogram.size() - 1;
    const double bucket_fraction =
        static_cast<double>(histogram[bucket]) / total;
    const double distinct_per_bucket =
        std::max(1.0, static_cast<double>(ndv) / histogram.size());
    return bucket_fraction / distinct_per_bucket;
  }
  return 1.0 / static_cast<double>(ndv);
}

double ColumnStats::LeSelectivity(int32_t v) const {
  if (!is_int) return 0.3;  // heuristic fallback
  if (v >= max_int) return 1.0;
  if (v < min_int) return 0.0;
  if (histogram.empty() || max_int == min_int) {
    return (static_cast<double>(v) - min_int + 1) /
           (static_cast<double>(max_int) - min_int + 1);
  }
  uint64_t total = 0;
  for (uint64_t b : histogram) total += b;
  if (total == 0) return 0.0;
  const double width =
      (static_cast<double>(max_int) - min_int + 1) / histogram.size();
  const double pos = (static_cast<double>(v) - min_int + 1) / width;
  const size_t full = static_cast<size_t>(pos);
  double count = 0;
  for (size_t i = 0; i < full && i < histogram.size(); ++i) {
    count += static_cast<double>(histogram[i]);
  }
  if (full < histogram.size()) {
    count += (pos - full) * static_cast<double>(histogram[full]);
  }
  return count / total;
}

double ColumnStats::RangeSelectivity(int32_t lo, int32_t hi) const {
  if (hi < lo) return 0.0;
  double s = LeSelectivity(hi) - (lo > min_int ? LeSelectivity(lo - 1) : 0.0);
  return std::clamp(s, 0.0, 1.0);
}

StatsCollector::StatsCollector(const Schema* schema) : schema_(schema) {
  stats_.columns.resize(schema->num_columns());
  distinct_samples_.resize(schema->num_columns());
  int_values_.resize(schema->num_columns());
  for (size_t i = 0; i < schema->num_columns(); ++i) {
    stats_.columns[i].is_int = schema->column(i).type == ColType::kInt32;
  }
}

void StatsCollector::AddRow(const RowView& row) {
  ++stats_.row_count;
  for (size_t i = 0; i < schema_->num_columns(); ++i) {
    ColumnStats& cs = stats_.columns[i];
    uint64_t h;
    if (cs.is_int) {
      const int32_t v = row.GetInt(static_cast<int>(i));
      if (stats_.row_count == 1) {
        cs.min_int = cs.max_int = v;
      } else {
        cs.min_int = std::min(cs.min_int, v);
        cs.max_int = std::max(cs.max_int, v);
      }
      if (v == 0) cs.null_fraction += 1;
      int_values_[i].push_back(v);
      h = Hash64(reinterpret_cast<const char*>(&v), 4);
    } else {
      const Slice s = row.GetString(static_cast<int>(i));
      if (s.empty()) cs.null_fraction += 1;
      h = Hash64(s);
    }
    // KMV distinct sketch: keep the k smallest distinct hashes.
    auto& sample = distinct_samples_[i];
    if (sample.size() < kSampleDistinct) {
      sample.insert(h);
    } else if (h < *sample.rbegin() && !sample.count(h)) {
      sample.insert(h);
      sample.erase(std::prev(sample.end()));
    }
  }
}

TableStats StatsCollector::Finish() {
  for (size_t i = 0; i < stats_.columns.size(); ++i) {
    ColumnStats& cs = stats_.columns[i];
    auto& sample = distinct_samples_[i];
    if (sample.size() < kSampleDistinct) {
      cs.ndv = sample.size();
    } else {
      // KMV estimator: (k-1) / kth_smallest_normalized.
      const double kth = static_cast<double>(*sample.rbegin()) /
                         static_cast<double>(UINT64_MAX);
      cs.ndv = kth > 0 ? static_cast<uint64_t>((sample.size() - 1) / kth)
                       : sample.size();
    }
    if (stats_.row_count > 0) cs.null_fraction /= stats_.row_count;

    if (cs.is_int && !int_values_[i].empty() && cs.max_int > cs.min_int) {
      cs.histogram.assign(kHistogramBuckets, 0);
      const double width =
          (static_cast<double>(cs.max_int) - cs.min_int + 1) /
          kHistogramBuckets;
      for (int32_t v : int_values_[i]) {
        size_t bucket = static_cast<size_t>((v - cs.min_int) / width);
        if (bucket >= cs.histogram.size()) bucket = cs.histogram.size() - 1;
        ++cs.histogram[bucket];
      }
    }
    int_values_[i].clear();
    int_values_[i].shrink_to_fit();
  }
  return std::move(stats_);
}

}  // namespace hybridndp::rel
