// Per-table statistics in the spirit of MyRocks index samples: row counts,
// per-column min/max, distinct-value estimates, and equi-width histograms
// for integer columns. The planner derives calc_sel (paper Table 1) from
// these — never from injected true selectivities, matching the paper's
// explicitly conservative setup.

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rel/schema.h"

namespace hybridndp::rel {

/// Statistics of one column.
struct ColumnStats {
  bool is_int = false;
  int32_t min_int = 0;
  int32_t max_int = 0;
  uint64_t ndv = 0;  ///< estimated number of distinct values
  /// Equi-width histogram over [min_int, max_int] (int columns only).
  std::vector<uint64_t> histogram;
  /// Fraction of rows with an empty/zero value.
  double null_fraction = 0;

  /// Estimated fraction of rows with value == v.
  double EqSelectivity(int32_t v) const;
  /// Estimated fraction of rows with value <= v (int columns).
  double LeSelectivity(int32_t v) const;
  /// Estimated fraction with value in [lo, hi].
  double RangeSelectivity(int32_t lo, int32_t hi) const;
};

/// Statistics of one table.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats& col(int i) const { return columns[i]; }
  bool empty() const { return columns.empty(); }
};

/// Streaming stats collector (single pass over rows).
class StatsCollector {
 public:
  explicit StatsCollector(const Schema* schema);

  void AddRow(const RowView& row);
  TableStats Finish();

 private:
  static constexpr int kHistogramBuckets = 64;
  static constexpr int kSampleDistinct = 4096;

  const Schema* schema_;
  TableStats stats_;
  /// KMV sketch per column: the k smallest *distinct* hashes.
  std::vector<std::set<uint64_t>> distinct_samples_;
  std::vector<std::vector<int32_t>> int_values_;  ///< for histogram build
};

}  // namespace hybridndp::rel
