#include "rel/schema.h"

namespace hybridndp::rel {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t offset = 0;
  for (const auto& c : columns_) {
    offsets_.push_back(offset);
    offset += c.size;
  }
  row_size_ = offset;
}

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<int>& cols) const {
  std::vector<Column> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(columns_[c]);
  return Schema(std::move(out));
}

}  // namespace hybridndp::rel
