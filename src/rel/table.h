// Tables over the LSM store: each table's rows live in one column family
// keyed by the order-preserving encoding of the primary key; each secondary
// index is a separate column family whose key combines the secondary-key
// bytes with the primary key (paper Sect. 2.2, Secondary Indices).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "rel/schema.h"
#include "rel/stats.h"

namespace hybridndp::rel {

/// Single-column secondary index definition.
struct IndexDef {
  std::string name;
  int col = -1;  ///< indexed column (schema index)
};

/// Table definition: schema + primary key column + secondary indexes.
struct TableDef {
  std::string name;
  Schema schema;
  int pk_col = 0;  ///< must be an Int32 column
  std::vector<IndexDef> indexes;
};

/// Encode the secondary-index key prefix for a column value.
std::string EncodeIndexPrefix(const Schema& schema, int col, const RowView& row);
/// Same, from a raw value (int or padded char bytes).
std::string EncodeIndexPrefixInt(int32_t v);
std::string EncodeIndexPrefixStr(const Slice& s, uint32_t col_size);

/// Abstract read access to one table's primary and index data. The host
/// engine reads through the DB (Table); the NDP engine reads through a
/// shipped snapshot with device-side readers (nkv::DeviceTableAccessor).
/// Physical operators only depend on this interface, so the same operator
/// code runs on both sides of a QEP split.
class TableAccessor {
 public:
  virtual ~TableAccessor() = default;

  virtual const TableDef& def() const = 0;
  const Schema& schema() const { return def().schema; }
  const std::string& name() const { return def().name; }

  /// Point lookup by primary key.
  virtual Status GetByPk(const lsm::ReadOptions& opts, int32_t pk,
                         std::string* row) const = 0;
  /// Iterator over the primary data (values are rows).
  virtual lsm::IteratorPtr NewScanIterator(
      const lsm::ReadOptions& opts) const = 0;
  /// Iterator over a secondary index. Keys are secondary_bytes | pk_bytes.
  virtual lsm::IteratorPtr NewIndexIterator(const lsm::ReadOptions& opts,
                                            size_t index_no) const = 0;
  virtual uint64_t row_count() const = 0;

  /// Index number for a column, or -1 if the column has no index.
  int FindIndexOn(int col) const {
    for (size_t i = 0; i < def().indexes.size(); ++i) {
      if (def().indexes[i].col == col) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A relational table bound to a DB (the host-side accessor).
class Table : public TableAccessor {
 public:
  Table(lsm::DB* db, TableDef def);

  /// Insert one row (built against schema()); maintains all indexes.
  Status Insert(const std::string& row);

  /// Point lookup by primary key.
  Status GetByPk(const lsm::ReadOptions& opts, int32_t pk,
                 std::string* row) const override;

  /// Iterator over the primary column family (values are rows).
  lsm::IteratorPtr NewScanIterator(
      const lsm::ReadOptions& opts) const override;

  /// Iterator over a secondary index CF. Keys are
  /// secondary_bytes | pk_bytes, values empty.
  lsm::IteratorPtr NewIndexIterator(const lsm::ReadOptions& opts,
                                    size_t index_no) const override;

  const TableDef& def() const override { return def_; }
  lsm::ColumnFamilyId primary_cf() const { return primary_cf_; }
  lsm::ColumnFamilyId index_cf(size_t index_no) const {
    return index_cfs_[index_no];
  }
  lsm::DB* db() const { return db_; }

  uint64_t row_count() const override { return row_count_; }
  /// Total row bytes (tbl_tbn * rows).
  uint64_t data_bytes() const { return row_count_ * def_.schema.row_size(); }
  /// Physical bytes of the primary column family on flash (SST overhead
  /// included) — what a full scan actually reads.
  uint64_t stored_bytes() const;

  TableStats* mutable_stats() { return &stats_; }
  const TableStats& stats() const { return stats_; }

  /// Scan the table and (re)build statistics.
  Status AnalyzeStats();

 private:
  lsm::DB* db_;
  TableDef def_;
  lsm::ColumnFamilyId primary_cf_;
  std::vector<lsm::ColumnFamilyId> index_cfs_;
  uint64_t row_count_ = 0;
  TableStats stats_;
};

/// Named collection of tables sharing a DB.
class Catalog {
 public:
  explicit Catalog(lsm::DB* db) : db_(db) {}

  Table* CreateTable(TableDef def);
  Table* Get(const std::string& name) const;
  std::vector<Table*> tables() const;
  lsm::DB* db() const { return db_; }

 private:
  lsm::DB* db_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hybridndp::rel
