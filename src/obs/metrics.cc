#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hybridndp::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Render a double as a JSON number (no exponent surprises for the common
/// integral case; enough digits to round-trip sim nanos).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

int BucketIndex(double v) {
  if (v < 1) return 0;
  const int idx = 1 + static_cast<int>(std::floor(std::log2(v)));
  return idx >= Histogram::kNumBuckets ? Histogram::kNumBuckets - 1 : idx;
}

}  // namespace

void Histogram::Record(double v) {
  if (v < 0 || !std::isfinite(v)) v = 0;
  common::MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[BucketIndex(v)];
}

uint64_t Histogram::count() const {
  common::MutexLock lock(mu_);
  return count_;
}

double Histogram::sum() const {
  common::MutexLock lock(mu_);
  return sum_;
}

double Histogram::min() const {
  common::MutexLock lock(mu_);
  return min_;
}

double Histogram::max() const {
  common::MutexLock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  common::MutexLock lock(mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

std::string Histogram::ToJson() const {
  common::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"sum\":" << JsonNumber(sum_)
     << ",\"min\":" << JsonNumber(min_) << ",\"max\":" << JsonNumber(max_)
     << ",\"buckets\":{";
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) os << ",";
    first = false;
    // Exclusive upper bound of the bucket: 1 for bucket 0, else 2^i.
    os << "\"" << (i == 0 ? 1.0 : std::pow(2.0, i)) << "\":" << buckets_[i];
  }
  os << "}}";
  return os.str();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

size_t MetricsRegistry::num_counters() const {
  common::MutexLock lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::num_histograms() const {
  common::MutexLock lock(mu_);
  return histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  common::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << h->ToJson();
  }
  os << "}}";
  return os.str();
}

}  // namespace hybridndp::obs
