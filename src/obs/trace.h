// Observability: span-based trace recorder over the *simulated* timeline.
//
// Every span carries simulated-clock start/end nanoseconds (the clocks the
// hardware model drives — never wall-clock), a track it belongs to (one
// track per strategy run, plus device tracks), and a category used for
// per-stage aggregation (the paper's Table 4 stages: "setup", "wait",
// "transfer", "processing", plus device-side "produce"/"stall").
//
// Export format is Chrome trace_event JSON ("traceEvents" array of complete
// 'X' events), which opens directly in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Simulated nanoseconds are written as microsecond
// floats, the unit trace viewers expect.
//
// The null-recorder fast path: all recording sites take a TraceRecorder*
// that is nullptr unless the user asked for a trace (HNDP_TRACE). Disabled
// runs execute the exact same simulation statements — recording only ever
// *reads* simulated clocks — so simulated metrics are bit-identical with
// tracing on, off, or attached concurrently from a thread pool.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace hybridndp::obs {

/// One key/value annotation on a span. `value` is a pre-rendered JSON
/// literal: pass "42" for numbers and use TraceArg::Str for strings.
struct TraceArg {
  std::string key;
  std::string value;

  static TraceArg Num(std::string key, double v);
  static TraceArg Num(std::string key, uint64_t v);
  static TraceArg Str(std::string key, std::string_view v);
};

/// A complete interval on one track of the simulated timeline.
struct TraceSpan {
  int track = 0;
  std::string name;
  std::string cat;
  SimNanos start_ns = 0;
  SimNanos end_ns = 0;
  std::vector<TraceArg> args;

  SimNanos duration() const { return end_ns - start_ns; }
};

/// Thread-safe trace collector + embedded metrics registry. One recorder
/// per bench/tool invocation; strategy runs fanned over a ThreadPool append
/// to it concurrently.
class TraceRecorder {
 public:
  /// Register a named track (rendered as one Perfetto thread). Returns the
  /// track id used by Span(). `sort_index` orders tracks in the UI.
  int NewTrack(const std::string& name, int sort_index = 0);

  void Span(int track, std::string name, std::string cat, SimNanos start_ns,
            SimNanos end_ns, std::vector<TraceArg> args = {});

  /// Cover every gap of [start_ns, end_ns] not already covered by this
  /// track's spans with a new span of the given name/category. Used to
  /// materialize "processing" time on a host track where setup/wait/transfer
  /// intervals were recorded as they happened: by construction the four
  /// categories then tile [start_ns, end_ns] exactly, so per-category
  /// duration sums add up to the track's total simulated time.
  void GapFill(int track, SimNanos start_ns, SimNanos end_ns,
               const std::string& name, const std::string& cat);

  /// Sum of span durations with category `cat` on `track`.
  SimNanos CategoryTotal(int track, std::string_view cat) const;

  size_t num_tracks() const;
  size_t num_spans() const;
  std::vector<TraceSpan> TrackSpans(int track) const;

  /// Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Spans are emitted grouped by track (stable within a track), so the
  /// bytes do not depend on how concurrent runs interleaved their appends:
  /// two recordings of the same simulated work serialize identically.
  std::string ToChromeJson() const;

  MetricsRegistry* metrics() { return &metrics_; }
  const MetricsRegistry* metrics() const { return &metrics_; }
  /// Flat metrics JSON (the registry's ToJson).
  std::string MetricsJson() const { return metrics_.ToJson(); }

 private:
  mutable common::Mutex mu_;
  std::vector<std::string> tracks_ GUARDED_BY(mu_);
  std::vector<int> track_sort_ GUARDED_BY(mu_);
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  MetricsRegistry metrics_;  ///< internally synchronized
};

/// Write `contents` to `path` with stdio. Returns false (and prints to
/// stderr) on failure. Real filesystem — traces are tooling output, not part
/// of the simulation.
bool WriteFile(const std::string& path, std::string_view contents);

}  // namespace hybridndp::obs
