#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hybridndp::obs {

namespace {

std::string RenderNumber(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TraceArg TraceArg::Num(std::string key, double v) {
  return {std::move(key), RenderNumber(v)};
}

TraceArg TraceArg::Num(std::string key, uint64_t v) {
  return {std::move(key), std::to_string(v)};
}

TraceArg TraceArg::Str(std::string key, std::string_view v) {
  // Built with += rather than operator+ chains: gcc 12's -Wrestrict has a
  // false positive on `"literal" + std::string&&` under -O2.
  std::string quoted;
  quoted.reserve(v.size() + 2);
  quoted += '"';
  quoted += JsonEscape(v);
  quoted += '"';
  return {std::move(key), std::move(quoted)};
}

int TraceRecorder::NewTrack(const std::string& name, int sort_index) {
  common::MutexLock lock(mu_);
  tracks_.push_back(name);
  track_sort_.push_back(sort_index);
  return static_cast<int>(tracks_.size()) - 1;
}

void TraceRecorder::Span(int track, std::string name, std::string cat,
                         SimNanos start_ns, SimNanos end_ns,
                         std::vector<TraceArg> args) {
  if (end_ns < start_ns) end_ns = start_ns;
  common::MutexLock lock(mu_);
  spans_.push_back(TraceSpan{track, std::move(name), std::move(cat), start_ns,
                             end_ns, std::move(args)});
}

void TraceRecorder::GapFill(int track, SimNanos start_ns, SimNanos end_ns,
                            const std::string& name, const std::string& cat) {
  // One critical section end to end: computing the gaps and appending them
  // must be atomic, or a Span() racing in on the same track between a
  // read-then-append pair would leave gap spans overlapping it (the
  // lock-discipline bug the GUARDED_BY annotation pass surfaced here).
  common::MutexLock lock(mu_);
  std::vector<std::pair<SimNanos, SimNanos>> covered;
  for (const auto& s : spans_) {
    if (s.track == track && s.end_ns > s.start_ns) {
      covered.emplace_back(s.start_ns, s.end_ns);
    }
  }
  std::sort(covered.begin(), covered.end());
  std::vector<TraceSpan> gaps;
  SimNanos cursor = start_ns;
  for (const auto& [a, b] : covered) {
    if (a > cursor) {
      gaps.push_back(
          TraceSpan{track, name, cat, cursor, std::min(a, end_ns), {}});
    }
    if (b > cursor) cursor = b;
    if (cursor >= end_ns) break;
  }
  if (cursor < end_ns) {
    gaps.push_back(TraceSpan{track, name, cat, cursor, end_ns, {}});
  }
  for (auto& g : gaps) spans_.push_back(std::move(g));
}

SimNanos TraceRecorder::CategoryTotal(int track, std::string_view cat) const {
  common::MutexLock lock(mu_);
  SimNanos total = 0;
  for (const auto& s : spans_) {
    if (s.track == track && s.cat == cat) total += s.duration();
  }
  return total;
}

size_t TraceRecorder::num_tracks() const {
  common::MutexLock lock(mu_);
  return tracks_.size();
}

size_t TraceRecorder::num_spans() const {
  common::MutexLock lock(mu_);
  return spans_.size();
}

std::vector<TraceSpan> TraceRecorder::TrackSpans(int track) const {
  common::MutexLock lock(mu_);
  std::vector<TraceSpan> out;
  for (const auto& s : spans_) {
    if (s.track == track) out.push_back(s);
  }
  return out;
}

std::string TraceRecorder::ToChromeJson() const {
  common::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Track metadata: names + UI ordering. All tracks share pid 1.
  for (size_t t = 0; t < tracks_.size(); ++t) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t + 1
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << JsonEscape(tracks_[t]) << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t + 1
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
       << (track_sort_[t] != 0 ? track_sort_[t]
                               : static_cast<int>(t) + 1)
       << "}}";
  }
  // Complete ('X') events; simulated nanos -> microseconds. Emit grouped by
  // track: spans_ interleaves tracks in whatever order concurrent runs
  // appended, but within one track the order is the (deterministic) order
  // of that run's recording — so grouping canonicalizes the bytes.
  std::vector<const TraceSpan*> ordered;
  ordered.reserve(spans_.size());
  for (const auto& s : spans_) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->track < b->track;
                   });
  for (const TraceSpan* sp : ordered) {
    const TraceSpan& s = *sp;
    sep();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.track + 1 << ",\"name\":\""
       << JsonEscape(s.name) << "\",\"cat\":\"" << JsonEscape(s.cat)
       << "\",\"ts\":" << RenderNumber(s.start_ns / 1e3)
       << ",\"dur\":" << RenderNumber(s.duration() / 1e3);
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << JsonEscape(s.args[i].key) << "\":" << s.args[i].value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

bool WriteFile(const std::string& path, std::string_view contents) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "obs: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const size_t written = fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && fclose(f) == 0;
  if (!ok) fprintf(stderr, "obs: short write to '%s'\n", path.c_str());
  return ok;
}

}  // namespace hybridndp::obs
