// Observability: thread-safe metrics registry (counters + histograms).
//
// Production NDP systems treat the execution breakdown as a first-class
// observable (Taurus logs per-operator pushdown timings, Conduit's scheduler
// consumes per-resource utilization telemetry — see PAPERS.md). This module
// is the passive half of that layer: named counters and histograms any
// subsystem can tally into, exported as one flat JSON document. Metrics
// never feed back into the simulation — recording a value cannot perturb a
// simulated clock, so tier-1 timing semantics are independent of whether a
// registry is attached.
//
// Thread-safety: counters are relaxed atomics, histograms take a small
// per-histogram mutex, and the name->metric maps are guarded by the registry
// mutex. Lookup by name is O(log n); hot paths should hold the returned
// Counter*/Histogram* instead of re-resolving names per event.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"

namespace hybridndp::obs {

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

/// Monotonic (or Set-overwritten) unsigned counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrite with a snapshot value (gauge-style exports, e.g. cache
  /// residency re-exported at the end of every run).
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Power-of-two-bucketed histogram of non-negative samples.
class Histogram {
 public:
  /// Bucket i holds samples in [2^(i-1), 2^i); bucket 0 holds v < 1.
  static constexpr int kNumBuckets = 48;

  void Record(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;

  /// {"count":N,"sum":S,"min":m,"max":M,"buckets":{"8":n, ...}} — bucket
  /// keys are the (exclusive) power-of-two upper bounds; empty buckets are
  /// omitted.
  std::string ToJson() const;

 private:
  mutable common::Mutex mu_;
  uint64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0;
  double min_ GUARDED_BY(mu_) = 0;
  double max_ GUARDED_BY(mu_) = 0;
  std::array<uint64_t, kNumBuckets> buckets_ GUARDED_BY(mu_){};
};

/// Named metric registry. Metrics are created on first use and live as long
/// as the registry; returned pointers are stable.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Value of a counter, or 0 if it was never created (test helper).
  uint64_t CounterValue(const std::string& name) const;

  size_t num_counters() const;
  size_t num_histograms() const;

  /// {"counters":{...},"histograms":{...}} — keys sorted (std::map order),
  /// so the export is deterministic for a given set of recordings.
  std::string ToJson() const;

 private:
  mutable common::Mutex mu_;
  /// Sorted maps on purpose: ToJson iterates them directly, and export
  /// ordering must be canonical (hndp-lint's unordered-serialize rule).
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace hybridndp::obs
