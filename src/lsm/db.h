// The nKV-style LSM key/value store: column families, MemTable flushes,
// leveled compactions (C1 may overlap, C2..Ck do not), bloom/fence-pruned
// reads, snapshots, and the NDP shared-state snapshot export the device
// engine consumes (paper Sect. 2).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "lsm/block_cache.h"
#include "lsm/internal_key.h"
#include "lsm/iterator.h"
#include "lsm/memtable.h"
#include "lsm/sst.h"
#include "lsm/storage.h"
#include "sim/cost.h"

namespace hybridndp::obs {
class MetricsRegistry;
}

namespace hybridndp::lsm {

/// Per-read options: snapshot visibility, cost context, cache, pruning.
struct ReadOptions {
  SequenceNumber snapshot = kMaxSequenceNumber;
  sim::AccessContext* ctx = nullptr;  ///< cost accounting (may be null)
  BlockCache* cache = nullptr;        ///< block cache (may be null)
  bool use_bloom = true;
};

/// DB-wide tuning knobs.
struct DBOptions {
  SstOptions sst;
  uint64_t memtable_bytes = 1 << 20;  ///< C0 flush threshold
  int l0_compaction_trigger = 4;
  uint64_t l1_target_bytes = 4ull << 20;
  double level_multiplier = 10.0;
  int num_levels = 7;
};

using ColumnFamilyId = uint32_t;

/// Levels of one column family's LSM-tree (C1..Ck on persistent storage).
struct Version {
  /// levels[0] = C1 (overlapping, newest file last); levels[i>0] sorted by
  /// smallest key and non-overlapping.
  std::vector<std::vector<FileMetaData>> levels;

  uint64_t LevelBytes(int level) const;
  uint64_t TotalBytes() const;
  uint64_t TotalEntries() const;
};

/// Shared state shipped with an NDP invocation (paper Sect. 2.1): the
/// unflushed in-memory component plus physical placement of all SSTs, so the
/// device can construct a transactionally consistent snapshot on its own.
struct CfSnapshot {
  ColumnFamilyId cf = 0;
  SequenceNumber sequence = 0;
  const MemTable* mem = nullptr;
  std::vector<const MemTable*> immutables;
  Version version;  ///< copy of file metadata (placement info)
};

/// LSM database over a VirtualStorage. Writes (Put/Delete/Flush/Compact) are
/// single-threaded; the read path (Get, NewIterator, GetCfSnapshot) is
/// const-thread-safe once loading is done — concurrent independent runs may
/// read through the same DB as long as no writer is active. The only shared
/// mutable read-side state, the lazily-populated SstReader table, is
/// mutex-protected (see DESIGN.md "Concurrency model").
class DB {
 public:
  DB(VirtualStorage* storage, DBOptions options);
  ~DB();
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  /// Create (or look up) a column family; each CF owns a separate LSM-tree.
  ColumnFamilyId CreateColumnFamily(const std::string& name);
  Result<ColumnFamilyId> FindColumnFamily(const std::string& name) const;

  Status Put(ColumnFamilyId cf, const Slice& key, const Slice& value);
  Status Delete(ColumnFamilyId cf, const Slice& key);

  /// Point lookup through C0, immutables, C1..Ck with bloom/fence pruning.
  Status Get(const ReadOptions& opts, ColumnFamilyId cf, const Slice& key,
             std::string* value) const;

  /// User-key iterator (versions collapsed, tombstones hidden).
  IteratorPtr NewIterator(const ReadOptions& opts, ColumnFamilyId cf) const;

  /// Force-flush C0 (and immutables) of a column family to C1.
  Status Flush(ColumnFamilyId cf);
  /// Flush all column families.
  Status FlushAll();
  /// Compact the column family until all level size targets hold.
  Status CompactAll(ColumnFamilyId cf);

  SequenceNumber LatestSequence() const { return sequence_; }

  /// Export the NDP shared-state snapshot for a column family.
  CfSnapshot GetCfSnapshot(ColumnFamilyId cf) const;

  /// Reader for a file (cached; index parsed once per DB). Host-side use.
  /// Thread-safe: the reader table is guarded by a mutex, except after
  /// OpenAllReaders seals it — then lookups are lock-free until the next
  /// write unseals.
  SstReader* GetReader(FileId id, const FileMetaData& meta) const;

  /// Instantiate and decode the reader of every live SST (no cost charged)
  /// and seal the reader table for lock-free lookups. Called before fanning
  /// runs out over a pool so that no run's simulated timeline depends on
  /// which run touched a file first.
  void OpenAllReaders() const;

  const DBOptions& options() const { return options_; }
  VirtualStorage* storage() { return storage_; }
  const Version& GetVersion(ColumnFamilyId cf) const;

  /// Statistics for tests/benches.
  struct Stats {
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t compacted_bytes = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Snapshot DB-level gauges plus the aggregated SstReadStats of every
  /// instantiated reader into `metrics` under "lsm.*" (Set semantics —
  /// repeat exports overwrite rather than double-count).
  void ExportMetrics(obs::MetricsRegistry* metrics) const;

 private:
  struct ColumnFamily {
    ColumnFamilyId id = 0;
    std::string name;
    std::unique_ptr<MemTable> mem;
    std::vector<std::unique_ptr<MemTable>> immutables;
    Version version;
    size_t compaction_cursor = 0;  ///< round-robin pick within a level
  };

  Status Write(ColumnFamilyId cf, ValueType type, const Slice& key,
               const Slice& value);
  Status MaybeFlush(ColumnFamily* cf);
  Status FlushMemTable(ColumnFamily* cf, const MemTable& mem);
  Status MaybeCompact(ColumnFamily* cf);
  Status CompactLevel(ColumnFamily* cf, int level);
  uint64_t LevelTargetBytes(int level) const;

  /// Files in `level` overlapping [smallest, largest] user-key range.
  std::vector<size_t> OverlappingFiles(const ColumnFamily& cf, int level,
                                       const Slice& smallest,
                                       const Slice& largest) const;

  /// Lock-free lookup used only when readers_sealed_ was observed true.
  /// Suppressed from analysis: the seal protocol guarantees the map is not
  /// mutated between the acquire load of the seal and this read.
  SstReader* FindReaderSealed(FileId id) const NO_THREAD_SAFETY_ANALYSIS;

  VirtualStorage* storage_;
  DBOptions options_;
  SequenceNumber sequence_ = 0;
  std::vector<std::unique_ptr<ColumnFamily>> cfs_;
  std::map<std::string, ColumnFamilyId> cf_names_;
  mutable common::Mutex readers_mu_;
  mutable std::map<FileId, std::unique_ptr<SstReader>> readers_
      GUARDED_BY(readers_mu_);
  /// True when readers_ covers every live SST and no write has happened
  /// since: GetReader may then search the map without taking readers_mu_.
  /// Any write-path mutation clears it.
  mutable std::atomic<bool> readers_sealed_{false};
  Stats stats_;
};

/// Build a merged internal-key iterator over every component of a snapshot,
/// reading SSTs through `ctx`/`cache`. Used by both the host read path and
/// the on-device NDP engine (which passes a device context and its own
/// reader table). `reader_fn` maps file metadata to a live SstReader.
IteratorPtr NewSnapshotInternalIterator(
    const CfSnapshot& snap, sim::AccessContext* ctx, BlockCache* cache,
    const std::function<SstReader*(const FileMetaData&)>& reader_fn);

/// Wrap an internal-key iterator into a user-key iterator visible at `seq`
/// (collapses versions, hides tombstones).
IteratorPtr NewUserKeyIterator(IteratorPtr internal_iter, SequenceNumber seq,
                               sim::AccessContext* ctx);

}  // namespace hybridndp::lsm
