#include "lsm/storage.h"

#include "sim/fault.h"

namespace hybridndp::lsm {

FileId VirtualStorage::AddFile(std::string contents) {
  const FileId id = next_file_id_++;
  FileEntry entry;
  entry.placement.file_id = id;
  entry.placement.size_bytes = contents.size();
  const uint64_t page = hw_->flash.page_bytes;
  entry.placement.num_pages = (contents.size() + page - 1) / page;
  entry.placement.start_page = next_page_;
  next_page_ += entry.placement.num_pages;
  total_bytes_ += contents.size();
  entry.contents = std::move(contents);
  files_.emplace(id, std::move(entry));
  return id;
}

Result<FileId> VirtualStorage::AddFileChecked(std::string contents) {
  HNDP_RETURN_IF_ERROR(
      sim::FaultCheck(sim::FaultSite::kStorageWrite, nullptr));
  return AddFile(std::move(contents));
}

void VirtualStorage::RemoveFile(FileId id) {
  auto it = files_.find(id);
  if (it == files_.end()) return;
  total_bytes_ -= it->second.placement.size_bytes;
  files_.erase(it);
}

const std::string* VirtualStorage::FileContents(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) return nullptr;
  return &it->second.contents;
}

Result<FilePlacement> VirtualStorage::Placement(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("file " + std::to_string(id));
  }
  return it->second.placement;
}

Result<Slice> VirtualStorage::Read(sim::AccessContext* ctx, FileId id,
                                   uint64_t offset, uint64_t n,
                                   bool sequential) const {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("file " + std::to_string(id));
  }
  const std::string& data = it->second.contents;
  if (offset + n > data.size()) {
    return Status::InvalidArgument("read beyond EOF");
  }
  // Fault site: device-internal flash accesses only. Host-path reads stay
  // clean so a permanent device fault can still degrade to host execution.
  if (ctx != nullptr && ctx->actor() == sim::Actor::kDevice &&
      sim::FaultInjector::Enabled()) {
    HNDP_RETURN_IF_ERROR(sim::FaultCheck(sim::FaultSite::kStorageRead, ctx));
  }
  if (ctx != nullptr) {
    if (sequential) {
      // Streaming readers consume consecutive blocks; charge exact bytes so
      // sub-page blocks are not over-billed page by page.
      ctx->ChargeFlashRead(n);
    } else {
      // Random accesses pay full page reads.
      const uint64_t page = hw_->flash.page_bytes;
      const uint64_t first = offset / page;
      const uint64_t last = (offset + n + page - 1) / page;
      for (uint64_t p = first; p < last; ++p) {
        ctx->ChargeFlashRandomRead(page);
      }
    }
  }
  return Slice(data.data() + offset, n);
}

}  // namespace hybridndp::lsm
