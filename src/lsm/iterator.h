// Abstract forward iterator over (internal key, value) pairs, plus helpers.

#pragma once

#include <memory>

#include "common/slice.h"
#include "common/status.h"

namespace hybridndp::lsm {

/// Forward iterator over sorted key/value pairs. Keys at this layer are
/// internal keys unless a component documents otherwise.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Position at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  /// Precondition for key()/value(): Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const { return Status::OK(); }
};

using IteratorPtr = std::unique_ptr<Iterator>;

/// An always-invalid iterator (used for empty components). May carry a
/// non-ok status so callers that cannot propagate an open error directly
/// still surface it through the iterator contract.
class EmptyIterator final : public Iterator {
 public:
  EmptyIterator() = default;
  explicit EmptyIterator(Status status) : status_(std::move(status)) {}

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace hybridndp::lsm
