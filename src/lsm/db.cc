#include "lsm/db.h"

#include <algorithm>
#include <cassert>

#include "lsm/merge_iterator.h"
#include "obs/metrics.h"

namespace hybridndp::lsm {

uint64_t Version::LevelBytes(int level) const {
  if (level < 0 || level >= static_cast<int>(levels.size())) return 0;
  uint64_t total = 0;
  for (const auto& f : levels[level]) total += f.file_size;
  return total;
}

uint64_t Version::TotalBytes() const {
  uint64_t total = 0;
  for (size_t i = 0; i < levels.size(); ++i) total += LevelBytes(static_cast<int>(i));
  return total;
}

uint64_t Version::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& level : levels) {
    for (const auto& f : level) total += f.num_entries;
  }
  return total;
}

DB::DB(VirtualStorage* storage, DBOptions options)
    : storage_(storage), options_(options) {}

DB::~DB() = default;

ColumnFamilyId DB::CreateColumnFamily(const std::string& name) {
  auto it = cf_names_.find(name);
  if (it != cf_names_.end()) return it->second;
  auto cf = std::make_unique<ColumnFamily>();
  cf->id = static_cast<ColumnFamilyId>(cfs_.size());
  cf->name = name;
  cf->mem = std::make_unique<MemTable>();
  cf->version.levels.resize(options_.num_levels);
  cf_names_[name] = cf->id;
  cfs_.push_back(std::move(cf));
  return cfs_.back()->id;
}

Result<ColumnFamilyId> DB::FindColumnFamily(const std::string& name) const {
  auto it = cf_names_.find(name);
  if (it == cf_names_.end()) return Status::NotFound("cf " + name);
  return it->second;
}

Status DB::Put(ColumnFamilyId cf, const Slice& key, const Slice& value) {
  return Write(cf, ValueType::kValue, key, value);
}

Status DB::Delete(ColumnFamilyId cf, const Slice& key) {
  return Write(cf, ValueType::kDeletion, key, Slice());
}

Status DB::Write(ColumnFamilyId cf_id, ValueType type, const Slice& key,
                 const Slice& value) {
  if (cf_id >= cfs_.size()) return Status::InvalidArgument("bad cf");
  readers_sealed_.store(false, std::memory_order_release);
  ColumnFamily* cf = cfs_[cf_id].get();
  cf->mem->Add(++sequence_, type, key, value);
  return MaybeFlush(cf);
}

Status DB::MaybeFlush(ColumnFamily* cf) {
  if (cf->mem->ApproximateMemoryUsage() < options_.memtable_bytes) {
    return Status::OK();
  }
  // C0 full: make it immutable and start a fresh MemTable; flush immediately
  // (single-threaded engine, no background jobs).
  cf->immutables.push_back(std::move(cf->mem));
  cf->mem = std::make_unique<MemTable>();
  HNDP_RETURN_IF_ERROR(FlushMemTable(cf, *cf->immutables.back()));
  cf->immutables.pop_back();
  return MaybeCompact(cf);
}

Status DB::FlushMemTable(ColumnFamily* cf, const MemTable& mem) {
  if (mem.empty()) return Status::OK();
  SstBuilder builder(storage_, options_.sst);
  auto iter = mem.NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    builder.Add(iter->key(), iter->value());
  }
  HNDP_ASSIGN_OR_RETURN(FileMetaData meta, builder.Finish());
  // No merge on flush to C1 (paper Sect. 2.2): files may overlap there.
  cf->version.levels[0].push_back(meta);
  ++stats_.flushes;
  return Status::OK();
}

Status DB::Flush(ColumnFamilyId cf_id) {
  if (cf_id >= cfs_.size()) return Status::InvalidArgument("bad cf");
  readers_sealed_.store(false, std::memory_order_release);
  ColumnFamily* cf = cfs_[cf_id].get();
  for (auto& imm : cf->immutables) {
    HNDP_RETURN_IF_ERROR(FlushMemTable(cf, *imm));
  }
  cf->immutables.clear();
  if (!cf->mem->empty()) {
    HNDP_RETURN_IF_ERROR(FlushMemTable(cf, *cf->mem));
    cf->mem = std::make_unique<MemTable>();
  }
  return MaybeCompact(cf);
}

Status DB::FlushAll() {
  for (auto& cf : cfs_) {
    HNDP_RETURN_IF_ERROR(Flush(cf->id));
  }
  return Status::OK();
}

uint64_t DB::LevelTargetBytes(int level) const {
  // levels[0] is C1 and is governed by file count, not bytes.
  double target = static_cast<double>(options_.l1_target_bytes);
  for (int i = 1; i < level; ++i) target *= options_.level_multiplier;
  return static_cast<uint64_t>(target);
}

Status DB::MaybeCompact(ColumnFamily* cf) {
  bool progress = true;
  while (progress) {
    progress = false;
    if (static_cast<int>(cf->version.levels[0].size()) >=
        options_.l0_compaction_trigger) {
      HNDP_RETURN_IF_ERROR(CompactLevel(cf, 0));
      progress = true;
      continue;
    }
    for (int level = 1; level < options_.num_levels - 1; ++level) {
      if (cf->version.LevelBytes(level) > LevelTargetBytes(level)) {
        HNDP_RETURN_IF_ERROR(CompactLevel(cf, level));
        progress = true;
        break;
      }
    }
  }
  return Status::OK();
}

Status DB::CompactAll(ColumnFamilyId cf_id) {
  if (cf_id >= cfs_.size()) return Status::InvalidArgument("bad cf");
  ColumnFamily* cf = cfs_[cf_id].get();
  // Push everything down level by level until only compaction-stable state
  // remains (used by loaders to reach a realistic steady LSM shape).
  HNDP_RETURN_IF_ERROR(Flush(cf_id));
  while (!cf->version.levels[0].empty()) {
    HNDP_RETURN_IF_ERROR(CompactLevel(cf, 0));
  }
  return MaybeCompact(cf);
}

std::vector<size_t> DB::OverlappingFiles(const ColumnFamily& cf, int level,
                                         const Slice& smallest,
                                         const Slice& largest) const {
  std::vector<size_t> out;
  if (level >= static_cast<int>(cf.version.levels.size())) return out;
  const auto& files = cf.version.levels[level];
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i].LargestUserKey().compare(smallest) < 0) continue;
    if (files[i].SmallestUserKey().compare(largest) > 0) continue;
    out.push_back(i);
  }
  return out;
}

Status DB::CompactLevel(ColumnFamily* cf, int level) {
  auto& src_files = cf->version.levels[level];
  if (src_files.empty()) return Status::OK();
  readers_sealed_.store(false, std::memory_order_release);

  // Pick inputs: all of C1 for level 0; one round-robin file otherwise.
  std::vector<size_t> src_idx;
  if (level == 0) {
    for (size_t i = 0; i < src_files.size(); ++i) src_idx.push_back(i);
  } else {
    src_idx.push_back(cf->compaction_cursor % src_files.size());
    ++cf->compaction_cursor;
  }

  std::string smallest, largest;
  for (size_t i : src_idx) {
    const auto& f = src_files[i];
    if (smallest.empty() || f.SmallestUserKey().compare(Slice(smallest)) < 0) {
      smallest = f.SmallestUserKey().ToString();
    }
    if (largest.empty() || f.LargestUserKey().compare(Slice(largest)) > 0) {
      largest = f.LargestUserKey().ToString();
    }
  }
  const int target = level + 1;
  std::vector<size_t> dst_idx =
      OverlappingFiles(*cf, target, Slice(smallest), Slice(largest));

  // Merge all inputs newest-to-oldest. C1 files: newest was flushed last.
  std::vector<IteratorPtr> inputs;
  std::vector<FileMetaData> consumed;
  for (auto it = src_idx.rbegin(); it != src_idx.rend(); ++it) {
    const FileMetaData& meta = src_files[*it];
    consumed.push_back(meta);
    inputs.push_back(GetReader(meta.file_id, meta)->NewIterator(nullptr, nullptr));
  }
  for (size_t i : dst_idx) {
    const FileMetaData& meta = cf->version.levels[target][i];
    consumed.push_back(meta);
    inputs.push_back(GetReader(meta.file_id, meta)->NewIterator(nullptr, nullptr));
  }

  MergingIterator merged(std::move(inputs), nullptr);
  merged.SeekToFirst();

  const bool bottommost = (target == options_.num_levels - 1);
  std::vector<FileMetaData> outputs;
  std::unique_ptr<SstBuilder> builder;
  std::string prev_user_key;
  bool has_prev = false;
  const uint64_t max_output_bytes = LevelTargetBytes(target) / 4 + (1 << 16);

  while (merged.Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged.key(), &parsed)) {
      return Status::Corruption("compaction: bad key");
    }
    const bool same_as_prev =
        has_prev && parsed.user_key == Slice(prev_user_key);
    if (!same_as_prev) {
      prev_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_prev = true;
      // Keep only the newest version; drop tombstones at the bottom level.
      const bool drop =
          (parsed.type == ValueType::kDeletion) && bottommost;
      if (!drop) {
        if (builder == nullptr) {
          builder = std::make_unique<SstBuilder>(storage_, options_.sst);
        }
        builder->Add(merged.key(), merged.value());
        stats_.compacted_bytes += merged.key().size() + merged.value().size();
        if (builder->EstimatedSize() >= max_output_bytes) {
          HNDP_ASSIGN_OR_RETURN(FileMetaData meta, builder->Finish());
          outputs.push_back(meta);
          builder.reset();
        }
      }
    }
    merged.Next();
  }
  if (builder != nullptr && builder->num_entries() > 0) {
    HNDP_ASSIGN_OR_RETURN(FileMetaData meta, builder->Finish());
    outputs.push_back(meta);
  }

  // Install: remove consumed files, add outputs to the target level sorted.
  auto remove_by_id = [this](std::vector<FileMetaData>* files,
                             const std::vector<FileMetaData>& victims) {
    files->erase(std::remove_if(files->begin(), files->end(),
                                [&](const FileMetaData& f) {
                                  for (const auto& v : victims) {
                                    if (v.file_id == f.file_id) return true;
                                  }
                                  return false;
                                }),
                 files->end());
    for (const auto& v : victims) {
      {
        common::MutexLock lock(readers_mu_);
        readers_.erase(v.file_id);
      }
      storage_->RemoveFile(v.file_id);
    }
  };
  remove_by_id(&cf->version.levels[level], consumed);
  remove_by_id(&cf->version.levels[target], consumed);
  auto& dst = cf->version.levels[target];
  dst.insert(dst.end(), outputs.begin(), outputs.end());
  std::sort(dst.begin(), dst.end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
            });
  ++stats_.compactions;
  return Status::OK();
}

SstReader* DB::FindReaderSealed(FileId id) const {
  auto it = readers_.find(id);
  return it != readers_.end() ? it->second.get() : nullptr;
}

SstReader* DB::GetReader(FileId id, const FileMetaData& meta) const {
  // Sealed fast path: after OpenAllReaders every live SST has an entry and
  // the map is not mutated until the next write, so concurrent runs may
  // search it without the mutex. GetByPk-heavy plans call this per row.
  if (readers_sealed_.load(std::memory_order_acquire)) {
    if (SstReader* hit = FindReaderSealed(id); hit != nullptr) return hit;
  }
  common::MutexLock lock(readers_mu_);
  auto it = readers_.find(id);
  if (it != readers_.end()) return it->second.get();
  // A miss means the table was incomplete after all: drop the seal before
  // mutating so no other thread walks the map while we insert.
  readers_sealed_.store(false, std::memory_order_release);
  auto reader = std::make_unique<SstReader>(storage_, meta);
  SstReader* raw = reader.get();
  readers_[id] = std::move(reader);
  return raw;
}

void DB::OpenAllReaders() const {
  bool all_opened = true;
  for (const auto& cf : cfs_) {
    for (const auto& level : cf->version.levels) {
      for (const auto& meta : level) {
        // No context: decoding charges nothing; later reads through a fresh
        // cache still pay the (cached-or-not) index-block load per run.
        const Status st =
            GetReader(meta.file_id, meta)->EnsureOpened(nullptr, nullptr);
        // Not lost when it fails: the same error re-surfaces on the run's
        // first charged read of this file, where callers handle it.
        if (!st.ok()) all_opened = false;
      }
    }
  }
  // Only seal a fully opened table; a partial one keeps the mutex path so
  // retries can still insert.
  if (all_opened) readers_sealed_.store(true, std::memory_order_release);
}

void DB::ExportMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->counter("lsm.db.flushes")->Set(stats_.flushes);
  metrics->counter("lsm.db.compactions")->Set(stats_.compactions);
  metrics->counter("lsm.db.compacted_bytes")->Set(stats_.compacted_bytes);
  uint64_t files = 0, file_bytes = 0, entries = 0;
  for (const auto& cf : cfs_) {
    for (const auto& level : cf->version.levels) {
      files += level.size();
      for (const auto& meta : level) {
        file_bytes += meta.file_size;
        entries += meta.num_entries;
      }
    }
  }
  metrics->counter("lsm.db.live_files")->Set(files);
  metrics->counter("lsm.db.live_file_bytes")->Set(file_bytes);
  metrics->counter("lsm.db.live_entries")->Set(entries);

  uint64_t block_reads = 0, block_read_bytes = 0, cache_hits = 0,
           index_loads = 0, pinned_seeks = 0;
  {
    common::MutexLock lock(readers_mu_);
    for (const auto& [id, reader] : readers_) {
      (void)id;
      const SstReadStats& rs = reader->read_stats();
      block_reads += rs.block_reads.load(std::memory_order_relaxed);
      block_read_bytes += rs.block_read_bytes.load(std::memory_order_relaxed);
      cache_hits += rs.block_cache_hits.load(std::memory_order_relaxed);
      index_loads += rs.index_loads.load(std::memory_order_relaxed);
      pinned_seeks += rs.pinned_index_seeks.load(std::memory_order_relaxed);
    }
  }
  metrics->counter("lsm.sst.block_reads")->Set(block_reads);
  metrics->counter("lsm.sst.block_read_bytes")->Set(block_read_bytes);
  metrics->counter("lsm.sst.block_cache_hits")->Set(cache_hits);
  metrics->counter("lsm.sst.index_loads")->Set(index_loads);
  metrics->counter("lsm.sst.pinned_index_seeks")->Set(pinned_seeks);
}

const Version& DB::GetVersion(ColumnFamilyId cf) const {
  static const Version kEmpty;
  if (cf >= cfs_.size()) return kEmpty;
  return cfs_[cf]->version;
}

Status DB::Get(const ReadOptions& opts, ColumnFamilyId cf_id, const Slice& key,
               std::string* value) const {
  if (cf_id >= cfs_.size()) return Status::InvalidArgument("bad cf");
  const ColumnFamily* cf = cfs_[cf_id].get();
  const SequenceNumber seq = opts.snapshot;
  bool deleted = false;

  if (cf->mem->Get(key, seq, value, &deleted, opts.ctx)) {
    return deleted ? Status::NotFound() : Status::OK();
  }
  for (auto it = cf->immutables.rbegin(); it != cf->immutables.rend(); ++it) {
    if ((*it)->Get(key, seq, value, &deleted, opts.ctx)) {
      return deleted ? Status::NotFound() : Status::OK();
    }
  }
  // C1: overlapping, search newest (last flushed) first.
  const auto& l0 = cf->version.levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    SstReader* reader = GetReader(it->file_id, *it);
    Status s = reader->Get(opts.ctx, opts.cache, key, seq, value, &deleted,
                           opts.use_bloom);
    if (s.ok()) return deleted ? Status::NotFound() : Status::OK();
    if (!s.IsNotFound()) return s;
  }
  // C2..Ck: at most one candidate file per level.
  for (int level = 1; level < options_.num_levels; ++level) {
    const auto& files = cf->version.levels[level];
    // Binary search the first file whose largest user key >= key.
    auto pos = std::lower_bound(
        files.begin(), files.end(), key,
        [](const FileMetaData& f, const Slice& k) {
          return f.LargestUserKey().compare(k) < 0;
        });
    if (pos == files.end()) continue;
    if (pos->SmallestUserKey().compare(key) > 0) continue;
    SstReader* reader = GetReader(pos->file_id, *pos);
    Status s = reader->Get(opts.ctx, opts.cache, key, seq, value, &deleted,
                           opts.use_bloom);
    if (s.ok()) return deleted ? Status::NotFound() : Status::OK();
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

namespace {

/// Concatenating iterator over the sorted, non-overlapping files of one
/// level (C2..Ck).
class LevelConcatIterator final : public Iterator {
 public:
  LevelConcatIterator(std::vector<FileMetaData> files,
                      std::function<SstReader*(const FileMetaData&)> reader_fn,
                      sim::AccessContext* ctx, BlockCache* cache)
      : files_(std::move(files)),
        reader_fn_(std::move(reader_fn)),
        ctx_(ctx),
        cache_(cache) {}

  bool Valid() const override {
    return file_iter_ != nullptr && file_iter_->Valid();
  }

  void SeekToFirst() override {
    status_ = Status::OK();
    index_ = 0;
    OpenCurrent();
    if (file_iter_ != nullptr) file_iter_->SeekToFirst();
    SkipExhausted();
  }

  void Seek(const Slice& target) override {
    status_ = Status::OK();
    const Slice user = ExtractUserKey(target);
    auto pos = std::lower_bound(files_.begin(), files_.end(), user,
                                [](const FileMetaData& f, const Slice& k) {
                                  return f.LargestUserKey().compare(k) < 0;
                                });
    index_ = static_cast<size_t>(pos - files_.begin());
    OpenCurrent();
    if (file_iter_ != nullptr) file_iter_->Seek(target);
    SkipExhausted();
  }

  void Next() override {
    file_iter_->Next();
    SkipExhausted();
  }

  Slice key() const override { return file_iter_->key(); }
  Slice value() const override { return file_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return file_iter_ != nullptr ? file_iter_->status() : Status::OK();
  }

 private:
  void OpenCurrent() {
    file_iter_.reset();
    if (index_ >= files_.size()) return;
    file_iter_ = reader_fn_(files_[index_])->NewIterator(ctx_, cache_);
  }

  void SkipExhausted() {
    while (file_iter_ != nullptr && !file_iter_->Valid()) {
      // An errored file iterator is NOT exhausted: advancing past it would
      // destroy the failed iterator and silently drop records (the scan
      // would "finish" clean with a partial result). Latch the error and
      // stop; status() keeps reporting it until the next re-seek.
      Status s = file_iter_->status();
      if (!s.ok()) {
        status_ = std::move(s);
        return;
      }
      ++index_;
      OpenCurrent();
      if (file_iter_ != nullptr) file_iter_->SeekToFirst();
    }
  }

  std::vector<FileMetaData> files_;
  std::function<SstReader*(const FileMetaData&)> reader_fn_;
  sim::AccessContext* ctx_;
  BlockCache* cache_;
  size_t index_ = 0;
  IteratorPtr file_iter_;
  Status status_;  ///< latched file-iterator error (survives the skip loop)
};

/// User-key view over an internal-key iterator: collapses versions and hides
/// tombstones at a given snapshot.
class UserKeyIterator final : public Iterator {
 public:
  UserKeyIterator(IteratorPtr inner, SequenceNumber seq,
                  sim::AccessContext* ctx)
      : inner_(std::move(inner)), seq_(seq), ctx_(ctx) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    inner_->SeekToFirst();
    FindNextVisible();
  }

  void Seek(const Slice& user_target) override {
    inner_->Seek(Slice(MakeLookupKey(user_target, seq_)));
    FindNextVisible();
  }

  void Next() override {
    SkipCurrentUserKey();
    FindNextVisible();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return inner_->status(); }

 private:
  void SkipCurrentUserKey() {
    while (inner_->Valid() &&
           ExtractUserKey(inner_->key()) == Slice(key_)) {
      ChargeStep(0);
      inner_->Next();
    }
  }

  /// Per-record iteration work: internal-key parse/compare plus copying the
  /// record out of the block (the dominant CPU share of the paper's
  /// device profile, Table 4: memcmp + compare internal keys).
  void ChargeStep(size_t value_bytes) {
    if (ctx_ == nullptr) return;
    ctx_->Charge(sim::CostKind::kCompareInternalKeys, 1);
    if (value_bytes > 0) {
      ctx_->ChargeCopy(key_.size() + value_bytes);
    }
  }

  void FindNextVisible() {
    valid_ = false;
    while (inner_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(inner_->key(), &parsed)) {
        ChargeStep(0);
        inner_->Next();
        continue;
      }
      if (parsed.sequence > seq_) {  // newer than the snapshot
        ChargeStep(0);
        inner_->Next();
        continue;
      }
      if (parsed.type == ValueType::kDeletion) {
        key_.assign(parsed.user_key.data(), parsed.user_key.size());
        SkipCurrentUserKey();
        continue;
      }
      // assign() reuses the member strings' capacity; ToString() would
      // allocate a fresh temporary for every visible record.
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      const Slice v = inner_->value();
      value_.assign(v.data(), v.size());
      ChargeStep(value_.size());
      valid_ = true;
      return;
    }
  }

  IteratorPtr inner_;
  SequenceNumber seq_;
  sim::AccessContext* ctx_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
};

}  // namespace

IteratorPtr NewSnapshotInternalIterator(
    const CfSnapshot& snap, sim::AccessContext* ctx, BlockCache* cache,
    const std::function<SstReader*(const FileMetaData&)>& reader_fn) {
  std::vector<IteratorPtr> children;
  if (snap.mem != nullptr) children.push_back(snap.mem->NewIterator(ctx));
  for (auto it = snap.immutables.rbegin(); it != snap.immutables.rend(); ++it) {
    children.push_back((*it)->NewIterator(ctx));
  }
  if (!snap.version.levels.empty()) {
    for (const auto& f : snap.version.levels[0]) {
      children.push_back(reader_fn(f)->NewIterator(ctx, cache));
    }
    for (size_t level = 1; level < snap.version.levels.size(); ++level) {
      if (snap.version.levels[level].empty()) continue;
      children.push_back(std::make_unique<LevelConcatIterator>(
          snap.version.levels[level], reader_fn, ctx, cache));
    }
  }
  return std::make_unique<MergingIterator>(std::move(children), ctx);
}

IteratorPtr NewUserKeyIterator(IteratorPtr internal_iter, SequenceNumber seq,
                               sim::AccessContext* ctx) {
  return std::make_unique<UserKeyIterator>(std::move(internal_iter), seq, ctx);
}

IteratorPtr DB::NewIterator(const ReadOptions& opts, ColumnFamilyId cf_id) const {
  if (cf_id >= cfs_.size()) return std::make_unique<EmptyIterator>();
  CfSnapshot snap = GetCfSnapshot(cf_id);
  snap.sequence = opts.snapshot;
  auto internal = NewSnapshotInternalIterator(
      snap, opts.ctx, opts.cache,
      [this](const FileMetaData& meta) {
        return GetReader(meta.file_id, meta);
      });
  return NewUserKeyIterator(std::move(internal), opts.snapshot, opts.ctx);
}

CfSnapshot DB::GetCfSnapshot(ColumnFamilyId cf_id) const {
  CfSnapshot snap;
  if (cf_id >= cfs_.size()) return snap;
  const ColumnFamily* cf = cfs_[cf_id].get();
  snap.cf = cf_id;
  snap.sequence = sequence_;
  snap.mem = cf->mem.get();
  for (const auto& imm : cf->immutables) snap.immutables.push_back(imm.get());
  snap.version = cf->version;
  return snap;
}

}  // namespace hybridndp::lsm
