#include "lsm/block_cache.h"

namespace hybridndp::lsm {

bool BlockCache::Lookup(FileId file, uint64_t offset) {
  auto it = index_.find({file, offset});
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void BlockCache::Insert(FileId file, uint64_t offset, uint64_t bytes) {
  const Key key{file, offset};
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (bytes > capacity_bytes_) return;  // would never fit
  lru_.push_front(Entry{key, bytes});
  index_[key] = lru_.begin();
  used_bytes_ += bytes;
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

void BlockCache::EraseFile(FileId file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == file) {
      used_bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace hybridndp::lsm
