#include "lsm/block_cache.h"

#include <cstring>

#include "common/hash.h"
#include "obs/metrics.h"

namespace hybridndp::lsm {

BlockCache::BlockCache(uint64_t capacity_bytes, int num_shards)
    : capacity_bytes_(capacity_bytes) {
  int n = num_shards;
  if (n <= 0) {
    n = capacity_bytes >= kShardedCapacityMin ? kDefaultShards : 1;
  }
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity_bytes = capacity_bytes / n;
    shards_.push_back(std::move(shard));
  }
}

BlockCache::Shard& BlockCache::ShardFor(FileId file, uint64_t offset) {
  if (shards_.size() == 1) return *shards_[0];
  char key_bytes[16];
  memcpy(key_bytes, &file, 8);
  memcpy(key_bytes + 8, &offset, 8);
  return *shards_[Hash64(key_bytes, sizeof(key_bytes)) % shards_.size()];
}

bool BlockCache::Lookup(FileId file, uint64_t offset) {
  Shard& shard = ShardFor(file, offset);
  common::MutexLock lock(shard.mu);
  auto it = shard.index.find({file, offset});
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return true;
}

void BlockCache::Insert(FileId file, uint64_t offset, uint64_t bytes) {
  Shard& shard = ShardFor(file, offset);
  common::MutexLock lock(shard.mu);
  const Key key{file, offset};
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (bytes > shard.capacity_bytes) return;  // would never fit
  shard.lru.push_front(Entry{key, bytes});
  shard.index[key] = shard.lru.begin();
  shard.used_bytes += bytes;
  while (shard.used_bytes > shard.capacity_bytes && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.used_bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

void BlockCache::EraseFile(FileId file) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    common::MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.first == file) {
        shard.used_bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

uint64_t BlockCache::used_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->used_bytes;
  }
  return total;
}

uint64_t BlockCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t BlockCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

void BlockCache::ExportMetrics(obs::MetricsRegistry* metrics,
                               const std::string& prefix) const {
  if (metrics == nullptr) return;
  metrics->counter(prefix + ".hits")->Set(hits());
  metrics->counter(prefix + ".misses")->Set(misses());
  metrics->counter(prefix + ".used_bytes")->Set(used_bytes());
  metrics->counter(prefix + ".capacity_bytes")->Set(capacity_bytes_);
}

}  // namespace hybridndp::lsm
