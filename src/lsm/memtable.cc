#include "lsm/memtable.h"

#include <cstring>

#include "common/coding.h"

namespace hybridndp::lsm {

struct MemTable::Node {
  const char* entry;  // encoded entry in the arena
  // Variable-height next pointer array (allocated inline, length = height).
  Node* next[1];
};

MemTable::MemTable() : rng_(0x5ee7a11) {
  head_ = NewNode(nullptr, kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
}

MemTable::~MemTable() = default;

MemTable::Node* MemTable::NewNode(const char* entry, int height) {
  char* mem = arena_.Allocate(sizeof(Node) + sizeof(Node*) * (height - 1));
  Node* node = reinterpret_cast<Node*>(mem);
  node->entry = entry;
  return node;
}

int MemTable::RandomHeight() {
  // Increase height with probability 1/4 per level.
  int height = 1;
  while (height < kMaxHeight && rng_.Uniform(4) == 0) ++height;
  return height;
}

Slice MemTable::EntryInternalKey(const char* entry) {
  uint32_t klen = 0;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  return Slice(p, klen);
}

Slice MemTable::EntryValue(const char* entry) {
  uint32_t klen = 0;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  p += klen;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  return Slice(p, vlen);
}

MemTable::Node* MemTable::FindGreaterOrEqual(const Slice& ikey, Node** prev,
                                             sim::AccessContext* ctx) const {
  Node* x = head_;
  int level = max_height_ - 1;
  uint64_t compares = 0;
  Node* result = nullptr;
  while (true) {
    Node* next = x->next[level];
    if (next != nullptr) ++compares;
    if (next != nullptr && CompareInternalKey(EntryInternalKey(next->entry), ikey) < 0) {
      x = next;  // keep searching at this level
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        result = next;
        break;
      }
      --level;
    }
  }
  if (ctx != nullptr && compares > 0) {
    ctx->Charge(sim::CostKind::kCompareInternalKeys, compares);
  }
  return result;
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  // Encode: varint32 ikey_len | ikey | varint32 val_len | val.
  const size_t ikey_len = user_key.size() + 8;
  const size_t encoded_len = VarintLength(ikey_len) + ikey_len +
                             VarintLength(value.size()) + value.size();
  std::string buf;
  buf.reserve(encoded_len);
  PutVarint32(&buf, static_cast<uint32_t>(ikey_len));
  AppendInternalKey(&buf, user_key, seq, type);
  PutVarint32(&buf, static_cast<uint32_t>(value.size()));
  buf.append(value.data(), value.size());

  char* entry = arena_.Allocate(buf.size());
  memcpy(entry, buf.data(), buf.size());

  Node* prev[kMaxHeight];
  const Slice ikey(entry + VarintLength(ikey_len), ikey_len);
  FindGreaterOrEqual(ikey, prev, nullptr);

  const int height = RandomHeight();
  if (height > max_height_) {
    for (int i = max_height_; i < height; ++i) prev[i] = head_;
    max_height_ = height;
  }
  Node* node = NewNode(entry, height);
  for (int i = 0; i < height; ++i) {
    node->next[i] = prev[i]->next[i];
    prev[i]->next[i] = node;
  }
  ++num_entries_;
}

bool MemTable::Get(const Slice& user_key, SequenceNumber seq,
                   std::string* value, bool* deleted,
                   sim::AccessContext* ctx) const {
  const std::string lookup = MakeLookupKey(user_key, seq);
  Node* node = FindGreaterOrEqual(Slice(lookup), nullptr, ctx);
  if (node == nullptr) return false;
  ParsedInternalKey parsed;
  if (!ParseInternalKey(EntryInternalKey(node->entry), &parsed)) return false;
  if (parsed.user_key != user_key) return false;
  if (parsed.type == ValueType::kDeletion) {
    *deleted = true;
    return true;
  }
  *deleted = false;
  const Slice v = EntryValue(node->entry);
  value->assign(v.data(), v.size());
  if (ctx != nullptr) ctx->ChargeCopy(v.size());
  return true;
}

size_t MemTable::ApproximateMemoryUsage() const {
  return arena_.MemoryUsage();
}

// Nested class: has access to MemTable internals.
class MemTable::Iter final : public lsm::Iterator {
 public:
  Iter(const MemTable* mem, sim::AccessContext* ctx) : mem_(mem), ctx_(ctx) {}

  bool Valid() const override { return node_ != nullptr; }
  void SeekToFirst() override { node_ = mem_->head_->next[0]; }
  void Seek(const Slice& target) override {
    node_ = mem_->FindGreaterOrEqual(target, nullptr, ctx_);
  }
  void Next() override { node_ = node_->next[0]; }
  Slice key() const override { return EntryInternalKey(node_->entry); }
  Slice value() const override { return EntryValue(node_->entry); }

 private:
  const MemTable* mem_;
  sim::AccessContext* ctx_;
  const Node* node_ = nullptr;
};

IteratorPtr MemTable::NewIterator(sim::AccessContext* ctx) const {
  return std::make_unique<Iter>(this, ctx);
}

}  // namespace hybridndp::lsm
