// Internal key encoding of the LSM layer (LevelDB/RocksDB convention):
//   user_key | 8-byte trailer = (sequence << 8) | value_type
// Ordering: user key ascending, then sequence descending, so the newest
// version of a key sorts first.

#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace hybridndp::lsm {

using SequenceNumber = uint64_t;

constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum class ValueType : uint8_t {
  kDeletion = 0,
  kValue = 1,
};

inline uint64_t PackSeqAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<uint8_t>(t);
}

/// Append the internal-key encoding of (user_key, seq, type) to *dst.
inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, PackSeqAndType(seq, t));
}

/// Decoded view of an internal key.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = ValueType::kValue;
};

/// Split an internal key into its parts; false if too short.
inline bool ParseInternalKey(const Slice& ikey, ParsedInternalKey* out) {
  if (ikey.size() < 8) return false;
  const uint64_t packed = DecodeFixed64(ikey.data() + ikey.size() - 8);
  out->user_key = Slice(ikey.data(), ikey.size() - 8);
  out->sequence = packed >> 8;
  out->type = static_cast<ValueType>(packed & 0xff);
  return true;
}

inline Slice ExtractUserKey(const Slice& ikey) {
  return Slice(ikey.data(), ikey.size() - 8);
}

/// Total-order comparator over internal keys. Returns <0, 0, >0.
inline int CompareInternalKey(const Slice& a, const Slice& b) {
  const Slice ua = ExtractUserKey(a);
  const Slice ub = ExtractUserKey(b);
  int r = ua.compare(ub);
  if (r != 0) return r;
  const uint64_t pa = DecodeFixed64(a.data() + a.size() - 8);
  const uint64_t pb = DecodeFixed64(b.data() + b.size() - 8);
  // Higher sequence sorts first.
  if (pa > pb) return -1;
  if (pa < pb) return +1;
  return 0;
}

/// An internal key used as a lookup target: user_key with max sequence, so a
/// Seek lands on the newest visible version.
inline std::string MakeLookupKey(const Slice& user_key, SequenceNumber seq) {
  std::string k;
  AppendInternalKey(&k, user_key, seq, ValueType::kValue);
  return k;
}

}  // namespace hybridndp::lsm
