#include "lsm/sst.h"

#include <cassert>

#include "common/coding.h"
#include "sim/fault.h"

namespace hybridndp::lsm {

namespace {
constexpr uint32_t kSstMagic = 0x6e644221;  // "ndB!"
constexpr size_t kFooterSize = 8 * 4 + 4;
}  // namespace

BlockHandle BlockHandle::Decode(const Slice& v) {
  BlockHandle h;
  if (v.size() >= 16) {
    h.offset = DecodeFixed64(v.data());
    h.size = DecodeFixed64(v.data() + 8);
  }
  return h;
}

std::string BlockHandle::Encode() const {
  std::string s;
  PutFixed64(&s, offset);
  PutFixed64(&s, size);
  return s;
}

SstBuilder::SstBuilder(VirtualStorage* storage, SstOptions options)
    : storage_(storage),
      options_(options),
      data_block_(options.restart_interval),
      index_block_(1),
      bloom_(options.bloom_bits_per_key) {}

void SstBuilder::Add(const Slice& ikey, const Slice& value) {
  assert(last_ikey_.empty() || CompareInternalKey(last_ikey_, ikey) < 0);
  if (meta_.num_entries == 0) meta_.smallest = ikey.ToString();
  // Flush before adding when the entry would blow past the size target, but
  // never flush an empty block: an entry larger than the target itself (an
  // oversized value) must still land in a block of its own, otherwise the
  // index would point at a zero-entry block.
  if (data_pending_ &&
      data_block_.CurrentSizeEstimate() + ikey.size() + value.size() + 16 >=
          options_.block_size) {
    FlushDataBlock();
  }
  last_ikey_.assign(ikey.data(), ikey.size());

  bloom_.AddKey(ExtractUserKey(ikey));
  data_block_.Add(ikey, value);
  data_pending_ = true;
  ++meta_.num_entries;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void SstBuilder::FlushDataBlock() {
  if (!data_pending_) return;
  const uint64_t offset = file_.size();
  std::string block = data_block_.Finish();
  file_.append(block);
  BlockHandle handle{offset, block.size()};
  index_block_.Add(Slice(last_ikey_), Slice(handle.Encode()));
  data_pending_ = false;
}

Result<FileMetaData> SstBuilder::Finish() {
  if (meta_.num_entries == 0) {
    return Status::InvalidArgument("empty SST");
  }
  FlushDataBlock();
  meta_.largest = last_ikey_;

  const uint64_t index_off = file_.size();
  std::string index = index_block_.Finish();
  file_.append(index);
  const uint64_t index_sz = index.size();

  const uint64_t bloom_off = file_.size();
  std::string bloom = bloom_.Finish();
  file_.append(bloom);
  const uint64_t bloom_sz = bloom.size();

  PutFixed64(&file_, index_off);
  PutFixed64(&file_, index_sz);
  PutFixed64(&file_, bloom_off);
  PutFixed64(&file_, bloom_sz);
  PutFixed32(&file_, kSstMagic);

  meta_.file_size = file_.size();
  HNDP_ASSIGN_OR_RETURN(meta_.file_id,
                        storage_->AddFileChecked(std::move(file_)));
  return meta_;
}

SstReader::SstReader(const VirtualStorage* storage, const FileMetaData& meta)
    : storage_(storage), meta_(meta) {}

bool SstReader::OutsideKeyRange(const Slice& user_key) const {
  return user_key.compare(meta_.SmallestUserKey()) < 0 ||
         user_key.compare(meta_.LargestUserKey()) > 0;
}

Status SstReader::EnsureOpened(sim::AccessContext* ctx, BlockCache* cache) {
  // Fast path: already decoded (acquire pairs with the release in
  // OpenLocked, making pinned_index_/bloom_ safely visible to all threads).
  if (opened_.load(std::memory_order_acquire)) return Status::OK();
  common::MutexLock lock(open_mu_);
  if (opened_.load(std::memory_order_relaxed)) return Status::OK();
  return OpenLocked(ctx, cache);
}

Status SstReader::OpenLocked(sim::AccessContext* ctx, BlockCache* cache) {
  const std::string* contents = storage_->FileContents(meta_.file_id);
  if (contents == nullptr) {
    return Status::NotFound("sst file missing");
  }
  if (contents->size() < kFooterSize) {
    return Status::Corruption("sst too small");
  }
  const char* footer = contents->data() + contents->size() - kFooterSize;
  const uint64_t index_off = DecodeFixed64(footer);
  const uint64_t index_sz = DecodeFixed64(footer + 8);
  const uint64_t bloom_off = DecodeFixed64(footer + 16);
  const uint64_t bloom_sz = DecodeFixed64(footer + 24);
  const uint32_t magic = DecodeFixed32(footer + 32);
  if (magic != kSstMagic || index_off + index_sz > contents->size() ||
      bloom_off + bloom_sz > contents->size()) {
    return Status::Corruption("bad sst footer");
  }
  // The index block load is a random page read unless cached.
  if (ctx != nullptr) {
    const bool cached = cache != nullptr && cache->Lookup(meta_.file_id, index_off);
    if (!cached) {
      auto rd = storage_->Read(ctx, meta_.file_id, index_off,
                               index_sz + bloom_sz, /*sequential=*/false);
      if (!rd.ok()) return rd.status();
      if (cache != nullptr) cache->Insert(meta_.file_id, index_off, index_sz + bloom_sz);
    }
  }
  read_stats_.index_loads.fetch_add(1, std::memory_order_relaxed);
  // Pin the sparse index: decode it once here (charge-free — the physical
  // load was charged above) so every later seek binary-searches the decoded
  // entries instead of re-parsing varints and prefix compression.
  {
    const BlockReader index_block(Slice(contents->data() + index_off,
                                        index_sz));
    auto it = index_block.NewIterator(nullptr);
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      pinned_index_.push_back(
          {it->key().ToString(), BlockHandle::Decode(it->value())});
    }
  }
  bloom_data_.assign(contents->data() + bloom_off, bloom_sz);
  bloom_ = std::make_unique<BloomFilter>(Slice(bloom_data_));
  opened_.store(true, std::memory_order_release);
  return Status::OK();
}

/// Cursor over the pinned index. Seek mirrors BlockReader::Iter::Seek's
/// charge structure exactly (the index block is built with
/// restart_interval=1, so every entry is a restart point): kSeekDataBlock 1
/// plus kCompareInternalKeys per binary-search step, then
/// kCompareInternalKeys per advancing linear-scan compare (the final
/// non-advancing compare is not counted there either).
class SstReader::PinnedIndexIter {
 public:
  PinnedIndexIter(const std::vector<SstIndexEntry>* entries,
                  sim::AccessContext* ctx, SstReadStats* stats)
      : entries_(entries), ctx_(ctx), stats_(stats) {}

  bool Valid() const { return pos_ < entries_->size(); }
  void SeekToFirst() { pos_ = 0; }
  void Next() { ++pos_; }
  Slice key() const { return Slice((*entries_)[pos_].key); }
  const BlockHandle& handle() const { return (*entries_)[pos_].handle; }

  void Seek(const Slice& target) {
    const size_t n = entries_->size();
    if (n == 0) {
      pos_ = 0;  // invalid: matches the zero-restart early-out (uncharged)
      return;
    }
    stats_->pinned_index_seeks.fetch_add(1, std::memory_order_relaxed);
    size_t left = 0;
    size_t right = n - 1;
    uint64_t compares = 0;
    while (left < right) {
      const size_t mid = (left + right + 1) / 2;
      ++compares;
      if (CompareInternalKey(Slice((*entries_)[mid].key), target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    if (ctx_ != nullptr) {
      ctx_->Charge(sim::CostKind::kSeekDataBlock, 1);
      ctx_->Charge(sim::CostKind::kCompareInternalKeys, compares);
    }
    pos_ = left;
    uint64_t scan_compares = 0;
    while (pos_ < n &&
           CompareInternalKey(Slice((*entries_)[pos_].key), target) < 0) {
      ++scan_compares;
      ++pos_;
    }
    if (ctx_ != nullptr && scan_compares > 0) {
      ctx_->Charge(sim::CostKind::kCompareInternalKeys, scan_compares);
    }
  }

 private:
  const std::vector<SstIndexEntry>* entries_;
  sim::AccessContext* ctx_;
  SstReadStats* stats_;
  size_t pos_ = 0;
};

Result<Slice> SstReader::ReadBlock(sim::AccessContext* ctx, BlockCache* cache,
                                   uint64_t offset, uint64_t size,
                                   bool sequential) {
  const std::string* contents = storage_->FileContents(meta_.file_id);
  if (contents == nullptr) return Status::NotFound("sst file missing");
  if (offset + size > contents->size()) {
    return Status::Corruption("block out of range");
  }
  // Fault site: device-side block reads (before the cache lookup, so cache
  // hits are covered too). Host reads stay clean for graceful fallback.
  if (ctx != nullptr && ctx->actor() == sim::Actor::kDevice &&
      sim::FaultInjector::Enabled()) {
    HNDP_RETURN_IF_ERROR(sim::FaultCheck(sim::FaultSite::kSstRead, ctx));
  }
  if (ctx != nullptr) {
    const bool cached = cache != nullptr && cache->Lookup(meta_.file_id, offset);
    if (!cached) {
      auto rd = storage_->Read(ctx, meta_.file_id, offset, size, sequential);
      if (!rd.ok()) return rd.status();
      if (cache != nullptr) cache->Insert(meta_.file_id, offset, size);
    } else {
      read_stats_.block_cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    read_stats_.block_reads.fetch_add(1, std::memory_order_relaxed);
    read_stats_.block_read_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return Slice(contents->data() + offset, size);
}

Status SstReader::Get(sim::AccessContext* ctx, BlockCache* cache,
                      const Slice& user_key, SequenceNumber seq,
                      std::string* value, bool* deleted, bool use_bloom) {
  if (OutsideKeyRange(user_key)) return Status::NotFound();
  HNDP_RETURN_IF_ERROR(EnsureOpened(ctx, cache));
  if (use_bloom && bloom_ != nullptr && !bloom_->MayContain(user_key)) {
    return Status::NotFound();
  }
  const std::string lookup = MakeLookupKey(user_key, seq);

  // Seek the pinned sparse index for the block that may contain the key.
  PinnedIndexIter index_iter(&pinned_index_, ctx, &read_stats_);
  if (ctx != nullptr) ctx->Charge(sim::CostKind::kSeekIndexBlock, 1);
  index_iter.Seek(Slice(lookup));
  if (!index_iter.Valid()) return Status::NotFound();
  const BlockHandle& handle = index_iter.handle();

  HNDP_ASSIGN_OR_RETURN(Slice block_data,
                        ReadBlock(ctx, cache, handle.offset, handle.size,
                                  /*sequential=*/false));
  BlockReader block(block_data);
  auto iter = block.NewIterator(ctx);
  iter->Seek(Slice(lookup));
  if (!iter->Valid()) return Status::NotFound();
  ParsedInternalKey parsed;
  if (!ParseInternalKey(iter->key(), &parsed)) {
    return Status::Corruption("bad internal key");
  }
  if (parsed.user_key != user_key) return Status::NotFound();
  if (parsed.type == ValueType::kDeletion) {
    *deleted = true;
    return Status::OK();
  }
  *deleted = false;
  value->assign(iter->value().data(), iter->value().size());
  if (ctx != nullptr) ctx->ChargeCopy(iter->value().size());
  return Status::OK();
}

/// Two-level iterator: walks the index block; per index entry, opens the
/// data block (charging its load) and iterates it.
class SstReader::TwoLevelIter final : public Iterator {
 public:
  TwoLevelIter(SstReader* reader, sim::AccessContext* ctx, BlockCache* cache)
      : reader_(reader),
        ctx_(ctx),
        cache_(cache),
        index_iter_(&reader->pinned_index_, ctx, &reader->read_stats_) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_.SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyBlocks();
  }

  void Seek(const Slice& target) override {
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kSeekIndexBlock, 1);
    index_iter_.Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyBlocks();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyBlocks();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitDataBlock() {
    data_iter_.reset();
    block_.reset();
    if (!index_iter_.Valid()) return;
    const BlockHandle& handle = index_iter_.handle();
    auto rd = reader_->ReadBlock(ctx_, cache_, handle.offset, handle.size,
                                 /*sequential=*/true);
    if (!rd.ok()) {
      status_ = rd.status();
      return;
    }
    block_ = std::make_unique<BlockReader>(*rd);
    data_iter_ = block_->NewIterator(ctx_);
  }

  /// Move to the next non-exhausted data block.
  void SkipEmptyBlocks() {
    while (data_iter_ != nullptr && !data_iter_->Valid()) {
      index_iter_.Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  SstReader* reader_;
  sim::AccessContext* ctx_;
  BlockCache* cache_;
  PinnedIndexIter index_iter_;
  std::unique_ptr<BlockReader> block_;
  IteratorPtr data_iter_;
  Status status_;
};

IteratorPtr SstReader::NewIterator(sim::AccessContext* ctx, BlockCache* cache) {
  Status s = EnsureOpened(ctx, cache);
  // Surface the open failure through the iterator's status() instead of
  // silently yielding an empty (Valid()==false) stream.
  if (!s.ok()) return std::make_unique<EmptyIterator>(std::move(s));
  return std::make_unique<TwoLevelIter>(this, ctx, cache);
}

}  // namespace hybridndp::lsm
