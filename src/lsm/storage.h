// Virtual flash storage: holds SST file contents in memory and tracks their
// physical page placement on the simulated flash array. The page placement
// (address-mapping table) is what an NDP invocation ships to the device so
// it can access DB objects without host interaction (paper Sect. 2.1).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "sim/cost.h"

namespace hybridndp::lsm {

using FileId = uint64_t;

/// Physical placement of one file on the flash array.
struct FilePlacement {
  FileId file_id = 0;
  uint64_t start_page = 0;
  uint64_t num_pages = 0;
  uint64_t size_bytes = 0;
};

/// In-memory flash array with page-granular file allocation. All reads are
/// charged to the caller's AccessContext so host (BLK/NATIVE) and device
/// (internal) paths pay their respective costs.
class VirtualStorage {
 public:
  explicit VirtualStorage(const sim::HwParams* hw) : hw_(hw) {}

  /// Store a new immutable file; returns its id.
  FileId AddFile(std::string contents);

  /// Fault-checkable variant of AddFile: fails (FaultSite::kStorageWrite)
  /// instead of storing when an injected write fault exhausts its retries.
  Result<FileId> AddFileChecked(std::string contents);

  /// Remove a file (after compaction). Pages are reclaimed logically.
  void RemoveFile(FileId id);

  /// Raw contents (no cost charge) — for building readers.
  const std::string* FileContents(FileId id) const;

  /// Placement info for NDP invocations.
  Result<FilePlacement> Placement(FileId id) const;

  /// Charge the cost of reading `n` bytes at `offset` of file `id` through
  /// ctx's I/O path. `sequential` selects streaming vs random-page pricing.
  /// Returns a view into the file contents.
  Result<Slice> Read(sim::AccessContext* ctx, FileId id, uint64_t offset,
                     uint64_t n, bool sequential) const;

  uint64_t TotalBytes() const { return total_bytes_; }
  size_t NumFiles() const { return files_.size(); }
  const sim::HwParams& hw() const { return *hw_; }

 private:
  struct FileEntry {
    std::string contents;
    FilePlacement placement;
  };

  const sim::HwParams* hw_;
  std::map<FileId, FileEntry> files_;
  FileId next_file_id_ = 1;
  uint64_t next_page_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace hybridndp::lsm
