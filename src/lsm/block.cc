#include "lsm/block.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"
#include "lsm/internal_key.h"

namespace hybridndp::lsm {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(std::max(1, restart_interval)) {
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  last_key_.clear();
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // Shared-prefix compress against the previous key.
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  ++counter_;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

std::string BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  std::string out = std::move(buffer_);
  Reset();
  return out;
}

BlockReader::BlockReader(Slice contents)
    : data_(contents.data()), size_(contents.size()) {
  if (size_ < 4) {
    size_ = 0;
    return;
  }
  num_restarts_ = DecodeFixed32(data_ + size_ - 4);
  const uint64_t trailer = 4ull + 4ull * num_restarts_;
  if (trailer > size_) {
    size_ = 0;
    num_restarts_ = 0;
    return;
  }
  restarts_offset_ = static_cast<uint32_t>(size_ - trailer);
}

class BlockReader::Iter final : public Iterator {
 public:
  Iter(const BlockReader* block, sim::AccessContext* ctx)
      : block_(block), ctx_(ctx) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override { SeekToRestart(0); }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last restart with key <
    // target, then linear scan.
    uint32_t left = 0;
    uint32_t right = block_->num_restarts_ == 0 ? 0 : block_->num_restarts_ - 1;
    if (block_->num_restarts_ == 0) {
      valid_ = false;
      return;
    }
    uint64_t compares = 0;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      Slice mid_key = RestartKey(mid);
      ++compares;
      if (CompareInternalKey(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    if (ctx_ != nullptr) {
      ctx_->Charge(sim::CostKind::kSeekDataBlock, 1);
      ctx_->Charge(sim::CostKind::kCompareInternalKeys, compares);
    }
    SeekToRestart(left);
    uint64_t scan_compares = 0;
    while (valid_ && CompareInternalKey(key(), target) < 0) {
      ++scan_compares;
      ParseNext();
    }
    if (ctx_ != nullptr && scan_compares > 0) {
      ctx_->Charge(sim::CostKind::kCompareInternalKeys, scan_compares);
    }
  }

  void Next() override {
    assert(valid_);
    ParseNext();
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  Slice RestartKey(uint32_t index) {
    // Restart entries have shared == 0, so the key is stored verbatim.
    const char* p =
        block_->data_ + DecodeFixed32(block_->data_ + block_->restarts_offset_ +
                                      4 * index);
    const char* limit = block_->data_ + block_->restarts_offset_;
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    p = GetVarint32Ptr(p, limit, &shared);
    p = GetVarint32Ptr(p, limit, &non_shared);
    p = GetVarint32Ptr(p, limit, &value_len);
    return Slice(p, non_shared);
  }

  void SeekToRestart(uint32_t index) {
    key_.clear();
    value_ = Slice();
    if (index >= block_->num_restarts_) {
      valid_ = false;
      return;
    }
    next_offset_ =
        DecodeFixed32(block_->data_ + block_->restarts_offset_ + 4 * index);
    valid_ = true;
    ParseNext();
  }

  /// Parse the entry at next_offset_ into key_/value_.
  void ParseNext() {
    if (next_offset_ >= block_->restarts_offset_) {
      valid_ = false;
      return;
    }
    const char* p = block_->data_ + next_offset_;
    const char* limit = block_->data_ + block_->restarts_offset_;
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
    if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared + value_len > limit ||
        shared > key_.size()) {
      valid_ = false;
      status_ = Status::Corruption("bad block entry");
      return;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_len);
    next_offset_ = static_cast<uint32_t>((p + non_shared + value_len) -
                                         block_->data_);
  }

  const BlockReader* block_;
  sim::AccessContext* ctx_;
  bool valid_ = false;
  uint32_t next_offset_ = 0;
  std::string key_;
  Slice value_;
  Status status_;
};

IteratorPtr BlockReader::NewIterator(sim::AccessContext* ctx) const {
  if (size_ == 0) return std::make_unique<EmptyIterator>();
  return std::make_unique<Iter>(this, ctx);
}

}  // namespace hybridndp::lsm
