// Skiplist-based MemTable: the C0 component of each column family's
// LSM-tree. Entries are arena-allocated and encoded as
//   varint32 internal_key_len | internal_key | varint32 value_len | value

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/internal_key.h"
#include "lsm/iterator.h"
#include "sim/cost.h"

namespace hybridndp::lsm {

/// In-memory sorted write buffer. Single-writer; readers may hold iterators
/// while writes continue (skiplist property), though the engine is
/// single-threaded anyway.
class MemTable {
 public:
  MemTable();
  ~MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Insert a (key, seq, type, value) entry.
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup of the newest version visible at `seq`.
  /// Returns true if the key was found (value set, or *deleted = true).
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* value,
           bool* deleted, sim::AccessContext* ctx) const;

  /// Iterator over internal keys in sorted order.
  IteratorPtr NewIterator(sim::AccessContext* ctx = nullptr) const;

  size_t ApproximateMemoryUsage() const;
  uint64_t num_entries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

 private:
  struct Node;
  class Iter;
  static constexpr int kMaxHeight = 12;

  Node* NewNode(const char* entry, int height);
  int RandomHeight();
  /// First node whose entry key >= `ikey`; fills prev[] when non-null.
  Node* FindGreaterOrEqual(const Slice& ikey, Node** prev,
                           sim::AccessContext* ctx) const;
  static Slice EntryInternalKey(const char* entry);
  static Slice EntryValue(const char* entry);

  Arena arena_;
  Rng rng_;
  Node* head_;
  int max_height_ = 1;
  uint64_t num_entries_ = 0;
};

}  // namespace hybridndp::lsm
