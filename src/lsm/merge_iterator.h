// K-way merging iterator over sorted child iterators (internal-key order).

#pragma once

#include <vector>

#include "lsm/internal_key.h"
#include "lsm/iterator.h"
#include "sim/cost.h"

namespace hybridndp::lsm {

/// Merges children in internal-key order. Children must be individually
/// sorted; duplicate internal keys do not occur (sequence numbers are
/// unique), so no tie-breaking is needed.
class MergingIterator final : public Iterator {
 public:
  MergingIterator(std::vector<IteratorPtr> children, sim::AccessContext* ctx)
      : children_(std::move(children)), ctx_(ctx) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    current_->Next();
    FindSmallest();
  }

  /// The winning key is cached by FindSmallest: key() is the hottest call
  /// on this iterator (several times per merged record, through two virtual
  /// hops otherwise), and the slice stays valid until current_ advances.
  Slice key() const override { return key_; }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    Slice smallest_key;
    uint64_t compares = 0;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr) {
        smallest = child.get();
        smallest_key = child->key();
      } else {
        ++compares;
        const Slice child_key = child->key();
        if (CompareInternalKey(child_key, smallest_key) < 0) {
          smallest = child.get();
          smallest_key = child_key;
        }
      }
    }
    if (ctx_ != nullptr && compares > 0) {
      ctx_->Charge(sim::CostKind::kCompareInternalKeys, compares);
    }
    current_ = smallest;
    key_ = smallest_key;
  }

  std::vector<IteratorPtr> children_;
  sim::AccessContext* ctx_;
  Iterator* current_ = nullptr;
  Slice key_;
};

}  // namespace hybridndp::lsm
