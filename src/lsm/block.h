// Sorted key/value block with shared-prefix compression and restart points
// (LevelDB block format). Data blocks and index blocks of SSTs use this.
//
// Entry:   varint32 shared | varint32 non_shared | varint32 value_len |
//          key_suffix | value
// Trailer: fixed32 restart_offset[num_restarts] | fixed32 num_restarts

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "lsm/iterator.h"
#include "sim/cost.h"

namespace hybridndp::lsm {

/// Builds one serialized block from keys added in sorted order.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Serialize and reset.
  std::string Finish();

  /// Bytes the block would occupy if finished now.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return counter_ == 0 && buffer_.empty(); }
  void Reset();

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  std::string last_key_;
};

/// Read-side view over a serialized block. The underlying bytes must outlive
/// the reader and any iterator obtained from it.
class BlockReader {
 public:
  /// Validates the trailer; invalid blocks yield empty iterators.
  explicit BlockReader(Slice contents);

  /// Iterate entries; `cmp_ctx`, when set, is charged for seek comparisons
  /// (kSeekDataBlock per restart-binary-search, kCompareInternalKeys per
  /// linear-scan comparison).
  IteratorPtr NewIterator(sim::AccessContext* ctx = nullptr) const;

  bool valid() const { return num_restarts_ > 0 || size_ == 0; }
  size_t size() const { return size_; }

 private:
  class Iter;

  const char* data_ = nullptr;
  size_t size_ = 0;
  uint32_t restarts_offset_ = 0;
  uint32_t num_restarts_ = 0;
};

}  // namespace hybridndp::lsm
