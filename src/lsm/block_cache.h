// LRU block cache. Because file contents live in VirtualStorage memory for
// the lifetime of the simulation, the cache tracks *residency* only: a hit
// means the block is in host/device DRAM and the read charges no flash/PCIe
// cost. Capacity is in bytes of cached block data.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>

#include "lsm/storage.h"

namespace hybridndp::lsm {

/// LRU residency cache over (file_id, block_offset) keys.
class BlockCache {
 public:
  explicit BlockCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns true on hit and refreshes recency.
  bool Lookup(FileId file, uint64_t offset);

  /// Insert a block of `bytes`; evicts LRU entries beyond capacity.
  void Insert(FileId file, uint64_t offset, uint64_t bytes);

  /// Drop all blocks of a file (after compaction deletes it).
  void EraseFile(FileId file);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<FileId, uint64_t>;
  struct Entry {
    Key key;
    uint64_t bytes;
  };

  uint64_t capacity_bytes_;
  uint64_t used_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::map<Key, std::list<Entry>::iterator> index_;
};

}  // namespace hybridndp::lsm
