// LRU block cache. Because file contents live in VirtualStorage memory for
// the lifetime of the simulation, the cache tracks *residency* only: a hit
// means the block is in host/device DRAM and the read charges no flash/PCIe
// cost. Capacity is in bytes of cached block data.
//
// The cache is lock-striped for concurrent runs: keys hash to one of N
// shards, each with its own mutex, LRU list and byte budget (capacity/N).
// Shard selection is a pure function of the key, so a single-threaded run
// sees a deterministic hit/miss sequence regardless of how many other runs
// share the cache. Small caches (< kShardedCapacityMin) collapse to one
// shard, which is byte-for-byte the classic global-LRU behaviour.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "lsm/storage.h"

namespace hybridndp::obs {
class MetricsRegistry;
}

namespace hybridndp::lsm {

/// LRU residency cache over (file_id, block_offset) keys.
class BlockCache {
 public:
  /// `num_shards` <= 0 picks automatically: 1 shard for small caches (exact
  /// global LRU), kDefaultShards for caches large enough that a per-shard
  /// budget still holds many blocks.
  explicit BlockCache(uint64_t capacity_bytes, int num_shards = 0);

  /// Returns true on hit and refreshes recency.
  bool Lookup(FileId file, uint64_t offset);

  /// Insert a block of `bytes`; evicts LRU entries beyond the shard budget.
  void Insert(FileId file, uint64_t offset, uint64_t bytes);

  /// Drop all blocks of a file (after compaction deletes it).
  void EraseFile(FileId file);

  uint64_t used_bytes() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t hits() const;
  uint64_t misses() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Snapshot hit/miss/residency gauges into `metrics` as
  /// `<prefix>.hits|misses|used_bytes|capacity_bytes` (Set semantics:
  /// re-exporting overwrites, so end-of-run exports never double-count).
  void ExportMetrics(obs::MetricsRegistry* metrics,
                     const std::string& prefix) const;

  static constexpr int kDefaultShards = 16;
  static constexpr uint64_t kShardedCapacityMin = 4ull << 20;

 private:
  using Key = std::pair<FileId, uint64_t>;
  struct Entry {
    Key key;
    uint64_t bytes;
  };
  struct Shard {
    mutable common::Mutex mu;
    /// Per-shard budget; fixed at construction, read-only afterwards.
    uint64_t capacity_bytes = 0;
    uint64_t used_bytes GUARDED_BY(mu) = 0;
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recent
    std::map<Key, std::list<Entry>::iterator> index GUARDED_BY(mu);
  };

  Shard& ShardFor(FileId file, uint64_t offset);

  uint64_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hybridndp::lsm
