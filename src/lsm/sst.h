// Sorted String Table: immutable, sorted file of internal-key/value pairs.
//
// Layout:
//   [data block]*            BlockBuilder format, ~block_size bytes each
//   [index block]            last-key-per-block -> BlockHandle
//   [bloom filter]           over user keys
//   footer: fixed64 index_off | fixed64 index_sz |
//           fixed64 bloom_off | fixed64 bloom_sz | fixed32 magic
//
// The index block is the paper's "sparse index"; the smallest/largest keys
// recorded per file act as fence pointers (min/max filters).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bloom.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/internal_key.h"
#include "lsm/iterator.h"
#include "lsm/storage.h"
#include "sim/cost.h"

namespace hybridndp::lsm {

/// Metadata of one SST as tracked by the version set (fence pointers live
/// here: smallest/largest internal keys).
struct FileMetaData {
  FileId file_id = 0;
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  std::string smallest;  ///< smallest internal key
  std::string largest;   ///< largest internal key

  Slice SmallestUserKey() const { return ExtractUserKey(Slice(smallest)); }
  Slice LargestUserKey() const { return ExtractUserKey(Slice(largest)); }
};

/// Decode an index-block value into (offset, size).
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  static BlockHandle Decode(const Slice& v);
  std::string Encode() const;
};

/// One pinned (pre-decoded) sparse-index entry: last internal key of a data
/// block and the block's location.
struct SstIndexEntry {
  std::string key;
  BlockHandle handle;
};

/// Options shared by SST building and reading.
struct SstOptions {
  uint32_t block_size = 4096;  ///< target data block bytes (tbl_nbs)
  int restart_interval = 16;
  int bloom_bits_per_key = 10;
};

/// Serializes internal keys added in sorted order into the SST format and
/// registers the file with a VirtualStorage.
class SstBuilder {
 public:
  SstBuilder(VirtualStorage* storage, SstOptions options);

  /// Keys must arrive in increasing internal-key order.
  void Add(const Slice& ikey, const Slice& value);

  /// Finalize and register the file. Returns its metadata.
  Result<FileMetaData> Finish();

  uint64_t num_entries() const { return meta_.num_entries; }
  uint64_t EstimatedSize() const {
    return file_.size() + data_block_.CurrentSizeEstimate();
  }

 private:
  void FlushDataBlock();

  VirtualStorage* storage_;
  SstOptions options_;
  std::string file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  FileMetaData meta_;
  std::string last_ikey_;
  bool data_pending_ = false;
};

/// Cumulative read-side tallies of one SstReader. Relaxed atomics: readers
/// are shared across concurrent runs, and the counts are observability-only
/// (exported via DB::ExportMetrics) — they never feed the cost model, so
/// they cannot perturb any simulated clock.
struct SstReadStats {
  std::atomic<uint64_t> block_reads{0};       ///< data blocks fetched
  std::atomic<uint64_t> block_read_bytes{0};  ///< bytes of those blocks
  std::atomic<uint64_t> block_cache_hits{0};  ///< block reads a cache absorbed
  std::atomic<uint64_t> index_loads{0};       ///< index+bloom decode loads
  /// Seeks answered from the pinned (pre-decoded) index — every index seek
  /// after the one-time decode at open.
  std::atomic<uint64_t> pinned_index_seeks{0};
};

/// Read-side access to one SST. Readers are cheap to construct; the index
/// block and bloom filter are decoded lazily on first use and their loads
/// are charged to the providing context. Once opened, a reader is immutable
/// and safe to share across threads; the lazy open itself is double-checked
/// under a mutex, so concurrent first touches are race-free (use
/// DB::OpenAllReaders before a parallel fan-out to also keep the *charging*
/// of the open independent of thread schedule).
class SstReader {
 public:
  SstReader(const VirtualStorage* storage, const FileMetaData& meta);

  /// Decode footer/index/bloom if not yet done; charges the index-block load
  /// to `ctx` (unless cached or ctx is null). Thread-safe.
  Status EnsureOpened(sim::AccessContext* ctx, BlockCache* cache);

  /// Point lookup of user_key at snapshot `seq`. On hit, fills value or sets
  /// *deleted. `cache`, when non-null, absorbs block loads.
  /// Returns kNotFound if the key is not in this file.
  Status Get(sim::AccessContext* ctx, BlockCache* cache, const Slice& user_key,
             SequenceNumber seq, std::string* value, bool* deleted,
             bool use_bloom = true);

  /// Two-level iterator over the whole file (internal keys).
  IteratorPtr NewIterator(sim::AccessContext* ctx, BlockCache* cache);

  const FileMetaData& meta() const { return meta_; }

  /// True if `user_key` is outside [smallest, largest] (fence pointer check).
  bool OutsideKeyRange(const Slice& user_key) const;

  const SstReadStats& read_stats() const { return read_stats_; }

 private:
  class TwoLevelIter;
  class PinnedIndexIter;

  /// Charge + fetch one data block.
  Result<Slice> ReadBlock(sim::AccessContext* ctx, BlockCache* cache,
                          uint64_t offset, uint64_t size, bool sequential);

  /// Decode footer/index/bloom into the pinned fields and publish them by
  /// storing opened_ (release). Only ever called under open_mu_ with
  /// opened_ still false.
  Status OpenLocked(sim::AccessContext* ctx, BlockCache* cache)
      REQUIRES(open_mu_);

  const VirtualStorage* storage_;
  FileMetaData meta_;
  std::atomic<bool> opened_{false};
  common::Mutex open_mu_;
  // Write-once publication protocol, not plain mutex-guarded state: the
  // three fields below are written inside OpenLocked (REQUIRES(open_mu_))
  // and become immutable the moment opened_ is stored with release order;
  // readers only touch them after an acquire load of opened_, so their
  // lock-free reads cannot race the initialization.
  /// The sparse index, decoded once at open and pinned for the reader's
  /// lifetime: index seeks binary-search this form instead of re-parsing
  /// the serialized block (prefix compression, varints) on every lookup.
  std::vector<SstIndexEntry> pinned_index_;
  std::string bloom_data_;
  std::unique_ptr<BloomFilter> bloom_;
  mutable SstReadStats read_stats_;
};

}  // namespace hybridndp::lsm
