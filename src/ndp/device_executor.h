// On-device NDP execution (paper Sect. 4.2, Fig. 8): core 1 runs the
// offloaded PQEP as a volcano pipeline over the shipped snapshots, staging
// results through the multi-slot shared buffer. The executor runs the
// pipeline for real (correct tuples) while charging every action to a
// device AccessContext; batch boundaries at shared-buffer-slot granularity
// carry device-clock timestamps that the cooperative layer merges with the
// host timeline.

#pragma once

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "lsm/block_cache.h"
#include "nkv/ndp_command.h"
#include "obs/metrics.h"
#include "sim/cost.h"

namespace hybridndp::ndp {

/// One shared-buffer slot's worth of output.
struct DeviceBatch {
  size_t stream = 0;      ///< output stream (scans_only: one per table)
  uint64_t rows = 0;
  uint64_t bytes = 0;
  SimNanos work_ns = 0;  ///< device work to produce this batch
};

/// Result of one NDP invocation.
struct DeviceRunResult {
  /// Schema per output stream (one stream for pipelined plans; one per
  /// table for scans_only commands).
  std::vector<rel::Schema> stream_schemas;
  std::vector<std::vector<std::string>> stream_rows;
  std::vector<DeviceBatch> batches;  ///< in device production order
  sim::CostCounters counters;        ///< Table 4 breakdown
  SimNanos total_work_ns = 0;
  uint64_t reserved_buffer_bytes = 0;
  bool pointer_cache = false;        ///< cache-format choice (Sect. 4.2)
  /// Non-ok when the device died mid-run on a fault-class error (injected
  /// I/O fault past its retry budget). The result then carries whatever
  /// batches were produced before the failure; the cooperative layer
  /// poisons the shared buffer at fail_time_ns so blocked consumers wake.
  Status device_status;
  SimNanos fail_time_ns = 0;  ///< device clock at the failure

  const rel::Schema& schema() const { return stream_schemas.at(0); }
  const std::vector<std::string>& rows() const { return stream_rows.at(0); }
  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& s : stream_rows) n += s.size();
    return n;
  }
  uint64_t total_bytes() const {
    uint64_t n = 0;
    for (const auto& b : batches) n += b.bytes;
    return n;
  }
};

/// Executes NDP commands against the flash array (core 1 of the paper's
/// dual-core COSMOS+ model; core 0's relay work is modelled by the
/// cooperative layer's per-fetch latency).
class DeviceExecutor {
 public:
  DeviceExecutor(const lsm::VirtualStorage* storage, const sim::HwParams* hw)
      : storage_(storage), hw_(hw) {}

  /// Validate resources, build the pipeline, run it to completion.
  /// `metrics`, when non-null, receives device-side observability tallies
  /// (invocations, result rows/bytes, batch-size histograms, Table-4
  /// counters). Recording is passive — it never touches a simulated clock.
  Result<DeviceRunResult> Execute(const nkv::NdpCommand& cmd,
                                  obs::MetricsRegistry* metrics = nullptr)
      const;

  /// Memory check only (used by the planner to cap split depth).
  Status CheckResources(const nkv::NdpCommand& cmd) const;

 private:
  /// Build the scan (leaf) operator for one table access.
  exec::OperatorPtr BuildScan(const nkv::NdpTableAccess& access,
                              const rel::TableAccessor* accessor,
                              const nkv::NdpCommand& cmd,
                              lsm::ReadOptions opts) const;

  const lsm::VirtualStorage* storage_;
  const sim::HwParams* hw_;
};

}  // namespace hybridndp::ndp
