#include "ndp/device_executor.h"

#include "sim/fault.h"

namespace hybridndp::ndp {

using exec::OperatorPtr;
using nkv::JoinAlgo;
using nkv::NdpCommand;
using nkv::NdpTableAccess;

namespace {

/// Output schema of a scans_only leaf without running it (used to keep the
/// stream layout intact when the device dies before reaching a table).
rel::Schema ProjectedLeafSchema(const NdpTableAccess& access,
                                const rel::TableAccessor* accessor) {
  rel::Schema aliased = exec::AliasSchema(accessor->schema(), access.alias);
  if (access.projection.empty()) return aliased;
  std::vector<int> cols;
  for (const auto& name : access.projection) {
    const int idx = aliased.Find(name);
    if (idx >= 0) cols.push_back(idx);
  }
  return aliased.Project(cols);
}

}  // namespace

Status DeviceExecutor::CheckResources(const NdpCommand& cmd) const {
  const uint64_t reserved = cmd.ReservedBufferBytes();
  if (reserved > hw_->mem.device_ndp_budget_bytes) {
    return Status::ResourceExhausted(
        "NDP pipeline needs " + std::to_string(reserved >> 10) +
        " KiB, budget is " +
        std::to_string(hw_->mem.device_ndp_budget_bytes >> 10) + " KiB");
  }
  if (cmd.tables.empty()) {
    return Status::InvalidArgument("NDP command without tables");
  }
  if (!cmd.scans_only && cmd.joins.size() + 1 != cmd.tables.size()) {
    return Status::InvalidArgument("NDP pipeline join/table count mismatch");
  }
  if (cmd.scans_only && !cmd.joins.empty()) {
    return Status::InvalidArgument("scans_only command must not carry joins");
  }
  return Status::OK();
}

exec::OperatorPtr DeviceExecutor::BuildScan(const NdpTableAccess& access,
                                            const rel::TableAccessor* accessor,
                                            const NdpCommand& cmd,
                                            lsm::ReadOptions opts) const {
  (void)cmd;
  if (access.use_index_scan) {
    return std::make_unique<exec::IndexScanOp>(
        accessor, access.alias, access.index_no, opts, access.index_lo,
        access.index_hi, access.predicate, access.projection);
  }
  return std::make_unique<exec::TableScanOp>(accessor, access.alias, opts,
                                             access.predicate,
                                             access.projection);
}

Result<DeviceRunResult> DeviceExecutor::Execute(
    const NdpCommand& cmd, obs::MetricsRegistry* metrics) const {
  HNDP_RETURN_IF_ERROR(CheckResources(cmd));

  DeviceRunResult result;
  result.reserved_buffer_bytes = cmd.ReservedBufferBytes();
  // Cache-format switch (paper Sect. 4.2): with > 2 tables the pipeline
  // stores pointers instead of full records in the intermediate caches.
  result.pointer_cache = cmd.force_cache_format == 0
                             ? cmd.tables.size() > 2
                             : cmd.force_cache_format == 2;

  sim::AccessContext ctx(hw_, sim::Actor::kDevice, sim::IoPath::kInternal);
  if (result.pointer_cache) ctx.SetCopyFactor(0.15);

  // The device-side block buffer: index/data blocks staged in temporary
  // storage (sized by the selection buffers).
  lsm::BlockCache device_cache(cmd.buffers.selection_buffer_bytes *
                               std::max<size_t>(1, cmd.tables.size()));

  lsm::ReadOptions opts;
  opts.ctx = &ctx;
  opts.cache = &device_cache;
  opts.snapshot = cmd.snapshot;
  // By default the NDP engine does not probe bloom filters (paper
  // Sect. 2.2: they were already used on the host side); the device_bloom
  // extension enables in-situ probing.
  opts.use_bloom = cmd.device_bloom;

  // Device-side accessors over the shipped snapshots.
  std::vector<std::unique_ptr<nkv::DeviceTableAccessor>> accessors;
  accessors.reserve(cmd.tables.size());
  for (const auto& t : cmd.tables) {
    accessors.push_back(
        std::make_unique<nkv::DeviceTableAccessor>(storage_, &t));
  }

  // Drain one operator into batches of shared-slot granularity. This stays
  // a plain Next() loop on purpose: a batch-native NextBatch would look
  // ahead past the slot boundary and shift work attribution between
  // DeviceBatch windows, and routing the rows through a RowBatch adapter
  // would only add a copy per row — the DeviceBatch itself is the batch
  // the host-side StallingSourceOp consumes batch-wise.
  auto drain = [&](exec::Operator* op, size_t stream) -> Status {
    Status st = op->Open();
    std::vector<std::string> rows;
    const size_t rs = op->output_schema().row_size();
    // Slot granularity in rows: rows are fixed-size, so the row path's
    // byte threshold cuts after exactly ceil(slot_bytes / row_size) rows.
    const size_t rows_per_slot =
        rs > 0 ? static_cast<size_t>(
                     (cmd.buffers.shared_slot_bytes + rs - 1) / rs)
               : size_t{1};
    uint64_t pending_rows = 0;
    SimNanos mark = ctx.now();
    std::string row_buf;
    if (st.ok()) {
      while (op->Next(&row_buf)) {
        // Core 1 copies the root result into a shared-buffer slot (Fig. 8).
        ctx.ChargeCopy(rs);
        rows.push_back(row_buf);
        if (++pending_rows == rows_per_slot) {
          result.batches.push_back(DeviceBatch{
              stream, pending_rows, pending_rows * rs, ctx.now() - mark});
          mark = ctx.now();
          pending_rows = 0;
        }
      }
      // Next() returning false is end-of-stream OR a device-side failure
      // parked in an operator; recover the distinction here.
      st = exec::TreeStatus(*op);
    }
    // Rows produced before a failure stay in the result (partial batches
    // reached the shared buffer before the device died).
    if (pending_rows > 0 || result.batches.empty() ||
        result.batches.back().stream != stream) {
      result.batches.push_back(DeviceBatch{stream, pending_rows,
                                           pending_rows * rs,
                                           ctx.now() - mark});
    }
    result.stream_schemas.push_back(op->output_schema());
    result.stream_rows.push_back(std::move(rows));
    op->Close();
    return st;
  };

  // Fault site: the NDP invocation itself (command relay / core-1 dispatch).
  Status exec_status = sim::FaultCheck(sim::FaultSite::kDeviceExec, &ctx);

  if (!exec_status.ok() && cmd.scans_only) {
    // Died before the first leaf: keep the stream layout intact below.
  } else if (cmd.scans_only) {
    // Split H0: every leaf is an independent NDP selection; the single NDP
    // core processes them sequentially in join order.
    for (size_t i = 0; i < cmd.tables.size(); ++i) {
      auto scan = BuildScan(cmd.tables[i], accessors[i].get(), cmd, opts);
      exec_status = drain(scan.get(), i);
      if (!exec_status.ok()) break;
    }
  } else if (exec_status.ok()) {
    // Left-deep pipeline: scan(t0) join t1 join t2 ... [agg] [project].
    OperatorPtr acc = BuildScan(cmd.tables[0], accessors[0].get(), cmd, opts);
    for (size_t j = 0; j < cmd.joins.size(); ++j) {
      const auto& stage = cmd.joins[j];
      const auto& inner = cmd.tables[j + 1];
      switch (stage.algo) {
        case JoinAlgo::kBNLJI:
          acc = std::make_unique<exec::BlockNLIndexJoinOp>(
              std::move(acc), stage.outer_key_col, accessors[j + 1].get(),
              inner.alias, stage.inner_join_col, opts, inner.predicate,
              inner.projection, cmd.buffers.join_buffer_bytes, &ctx);
          if (stage.residual != nullptr) {
            acc = std::make_unique<exec::FilterOp>(std::move(acc),
                                                   stage.residual, &ctx);
          }
          break;
        case JoinAlgo::kBNLJ:
          acc = std::make_unique<exec::BlockNLJoinOp>(
              std::move(acc),
              BuildScan(inner, accessors[j + 1].get(), cmd, opts), stage.keys,
              stage.residual, cmd.buffers.join_buffer_bytes, &ctx);
          break;
        case JoinAlgo::kNLJ:
          acc = std::make_unique<exec::NestedLoopJoinOp>(
              std::move(acc),
              BuildScan(inner, accessors[j + 1].get(), cmd, opts), stage.keys,
              stage.residual, &ctx);
          break;
        case JoinAlgo::kGHJ:
          acc = std::make_unique<exec::GraceHashJoinOp>(
              std::move(acc),
              BuildScan(inner, accessors[j + 1].get(), cmd, opts), stage.keys,
              stage.residual, /*num_partitions=*/8, &ctx);
          break;
      }
    }
    if (cmd.has_agg) {
      acc = std::make_unique<exec::GroupByAggOp>(std::move(acc),
                                                 cmd.group_cols, cmd.aggs,
                                                 &ctx);
    }
    if (!cmd.output_projection.empty()) {
      acc = std::make_unique<exec::ProjectOp>(std::move(acc),
                                              cmd.output_projection, &ctx);
    }
    exec_status = drain(acc.get(), 0);
  }

  if (!exec_status.ok()) {
    // Fault-class failures (injected I/O faults past their retry budget,
    // aborted commands) return a *partial* result: the cooperative layer
    // needs the batches that made it to the shared buffer plus the failure
    // time to poison the remaining schedule. Anything else (planning or
    // resource bugs) is a hard error.
    if (!exec_status.IsIOError() && !exec_status.IsAborted()) {
      return exec_status;
    }
    result.device_status = exec_status;
    result.fail_time_ns = ctx.now();
    if (cmd.scans_only) {
      // Fill the streams the device never reached with empty outputs so the
      // host-side plan shape (one source per table) stays valid.
      while (result.stream_schemas.size() < cmd.tables.size()) {
        const size_t i = result.stream_schemas.size();
        result.stream_schemas.push_back(
            ProjectedLeafSchema(cmd.tables[i], accessors[i].get()));
        result.stream_rows.emplace_back();
      }
    } else if (result.stream_schemas.empty()) {
      result.stream_schemas.emplace_back();
      result.stream_rows.emplace_back();
    }
  }

  result.counters = ctx.counters();
  result.total_work_ns = ctx.now();

  if (metrics != nullptr) {
    metrics->counter("ndp.invocations")->Add(1);
    metrics->counter("ndp.tables")->Add(cmd.tables.size());
    metrics->counter("ndp.result_rows")->Add(result.total_rows());
    metrics->counter("ndp.result_bytes")->Add(result.total_bytes());
    metrics->counter("ndp.batches")->Add(result.batches.size());
    if (result.pointer_cache) metrics->counter("ndp.pointer_cache_runs")->Add(1);
    obs::Histogram* batch_rows = metrics->histogram("ndp.batch_rows");
    obs::Histogram* batch_bytes = metrics->histogram("ndp.batch_bytes");
    for (const auto& b : result.batches) {
      batch_rows->Record(static_cast<double>(b.rows));
      batch_bytes->Record(static_cast<double>(b.bytes));
    }
    for (int i = 0; i < sim::kNumCostKinds; ++i) {
      const auto kind = static_cast<sim::CostKind>(i);
      if (result.counters.Units(kind) == 0) continue;
      metrics->counter(std::string("ndp.op_units.") + sim::CostKindName(kind))
          ->Add(result.counters.Units(kind));
    }
  }
  return result;
}

}  // namespace hybridndp::ndp
