#include "sim/cost.h"

#include <sstream>

namespace hybridndp::sim {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kMemcmp:
      return "memcmp";
    case CostKind::kCompareInternalKeys:
      return "compare internal keys";
    case CostKind::kSeekIndexBlock:
      return "seek index block";
    case CostKind::kSelectionProcessing:
      return "selection processing";
    case CostKind::kSeekDataBlock:
      return "seek data block";
    case CostKind::kFlashLoad:
      return "flash load";
    case CostKind::kOther:
      return "other";
    case CostKind::kHashBuild:
      return "hash build";
    case CostKind::kHashProbe:
      return "hash probe";
    case CostKind::kCopy:
      return "copy";
    case CostKind::kRecordEval:
      return "record eval";
    case CostKind::kAggUpdate:
      return "agg update";
    case CostKind::kTransfer:
      return "transfer";
    case CostKind::kNumKinds:
      break;
  }
  return "?";
}

std::string CostCounters::BreakdownString() const {
  const SimNanos total = TotalTime();
  std::ostringstream os;
  for (int i = 0; i < kNumCostKinds; ++i) {
    const SimNanos t = PicosToNanos(time_ps[i]);
    if (t <= 0) continue;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "  " << CostKindName(static_cast<CostKind>(i)) << ": "
       << (total > 0 ? t / total * 100.0 : 0.0) << "%  ("
       << units[i] << " units, " << t / kNanosPerMilli << " ms)\n";
  }
  return os.str();
}

SimNanos AccessContext::PathOverhead(uint64_t bytes, bool random) const {
  switch (path_) {
    case IoPath::kInternal:
      return 0;
    case IoPath::kNative:
      return hw_->pcie.TransferTime(bytes);
    case IoPath::kBlk: {
      SimNanos t = hw_->pcie.TransferTime(bytes) * hw_->blk_stack_overhead;
      t += hw_->blk_syscall_ns * (random ? 1.0 : 1.0 + bytes / (128.0 * 1024));
      return t;
    }
  }
  return 0;
}

void AccessContext::ChargeFlashRead(uint64_t bytes) {
  // host_flash_clock < ndp_flash_clock models the slower effective flash
  // access rate seen from the host (interface stack in front of the array).
  const double fcf =
      path_ == IoPath::kInternal ? hw_->ndp_flash_clock : hw_->host_flash_clock;
  SimNanos t = hw_->flash.InternalReadTime(bytes) / fcf;
  t += PathOverhead(bytes, /*random=*/false);
  counters_.Add(CostKind::kFlashLoad, bytes, t);
  clock_.Advance(t);
}

void AccessContext::ChargeFlashRandomRead(uint64_t bytes) {
  const double fcf =
      path_ == IoPath::kInternal ? hw_->ndp_flash_clock : hw_->host_flash_clock;
  SimNanos t = hw_->flash.RandomPageReadTime() / fcf;
  t += PathOverhead(bytes, /*random=*/true);
  counters_.Add(CostKind::kFlashLoad, bytes, t);
  clock_.Advance(t);
}

void AccessContext::ChargeTransfer(uint64_t bytes) {
  const SimNanos t = hw_->pcie.TransferTime(bytes);
  counters_.Add(CostKind::kTransfer, bytes, t);
  clock_.Advance(t);
}

}  // namespace hybridndp::sim
