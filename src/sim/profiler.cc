#include "sim/profiler.h"

#include <sstream>

namespace hybridndp::sim {

namespace {

/// Synthetic compute kernel standing in for CoreMark: a fixed mix of compare,
/// hash, and eval work per "iteration". The same kernel runs under both CPU
/// models; only the ratio matters downstream.
double RunComputeKernel(const HwParams& hw, Actor actor) {
  // The kernel measures raw compute (CoreMark style): strip the SQL-engine
  // cycle factor, which only applies to query processing.
  HwParams bare = hw;
  bare.host_cpu.engine_cycle_factor = 1.0;
  bare.device_cpu.engine_cycle_factor = 1.0;
  AccessContext ctx(&bare, actor, IoPath::kInternal);
  constexpr int kIters = 1000;
  for (int i = 0; i < kIters; ++i) {
    ctx.Charge(CostKind::kMemcmp, 64);
    ctx.Charge(CostKind::kCompareInternalKeys, 4);
    ctx.Charge(CostKind::kRecordEval, 2);
    ctx.Charge(CostKind::kHashProbe, 2);
  }
  const SimNanos per_iter = ctx.now() / kIters;
  // Normalize so the host lands near its CoreMark score; the paper only uses
  // the host:device ratio. 92343 it/s <-> host kernel iteration time.
  return kNanosPerSec / per_iter / 2391.0;
}

double MeasureMemcpy(const HwParams& hw, Actor actor) {
  AccessContext ctx(&hw, actor, IoPath::kInternal);
  // memcpy across various buffer sizes (64 KiB ... 16 MiB).
  uint64_t total = 0;
  for (uint64_t sz = 64 << 10; sz <= (16u << 20); sz *= 4) {
    ctx.ChargeCopy(sz);
    total += sz;
  }
  return static_cast<double>(total) / (ctx.now() / kNanosPerSec) / 1e9;
}

double MeasureSeqRead(const HwParams& hw, IoPath path) {
  AccessContext ctx(&hw, path == IoPath::kInternal ? Actor::kDevice : Actor::kHost,
                    path);
  const uint64_t bytes = 256ull << 20;
  ctx.ChargeFlashRead(bytes);
  return static_cast<double>(bytes) / (ctx.now() / kNanosPerSec) / 1e9;
}

double MeasureRandRead(const HwParams& hw) {
  AccessContext ctx(&hw, Actor::kDevice, IoPath::kInternal);
  constexpr int kOps = 4096;
  for (int i = 0; i < kOps; ++i) {
    ctx.ChargeFlashRandomRead(hw.flash.page_bytes);
  }
  return kOps / (ctx.now() / kNanosPerSec);
}

}  // namespace

ProfileReport HardwareProfiler::Run() const {
  ProfileReport r;
  r.host_coremark = RunComputeKernel(platform_, Actor::kHost);
  r.device_coremark = RunComputeKernel(platform_, Actor::kDevice);
  r.host_memcpy_gbps = MeasureMemcpy(platform_, Actor::kHost);
  r.device_memcpy_gbps = MeasureMemcpy(platform_, Actor::kDevice);
  r.internal_seq_read_gbps = MeasureSeqRead(platform_, IoPath::kInternal);
  r.internal_rand_read_iops = MeasureRandRead(platform_);
  r.host_native_seq_read_gbps = MeasureSeqRead(platform_, IoPath::kNative);
  r.host_blk_seq_read_gbps = MeasureSeqRead(platform_, IoPath::kBlk);

  {
    AccessContext ctx(&platform_, Actor::kHost, IoPath::kNative);
    ctx.ChargeTransfer(4 << 10);
    r.pcie_small_xfer_us = ctx.now() / kNanosPerMicro;
  }
  {
    AccessContext ctx(&platform_, Actor::kHost, IoPath::kNative);
    const uint64_t bytes = 64ull << 20;
    ctx.ChargeTransfer(bytes);
    r.pcie_large_xfer_gbps =
        static_cast<double>(bytes) / (ctx.now() / kNanosPerSec) / 1e9;
  }
  return r;
}

HwParams HardwareProfiler::DeriveParams(const ProfileReport& report) const {
  HwParams hw = platform_;
  // Flash clock factors: relative effective flash rates seen by each side.
  const double internal = report.internal_seq_read_gbps;
  if (internal > 0) {
    hw.ndp_flash_clock = 1.0;
    hw.host_flash_clock = report.host_native_seq_read_gbps / internal;
  }
  // memcpy efficiency feeds the CPU model directly.
  hw.host_cpu.memcpy_bytes_per_sec = report.host_memcpy_gbps * 1e9;
  hw.device_cpu.memcpy_bytes_per_sec = report.device_memcpy_gbps * 1e9;
  // Compute ratio re-derived from the kernel scores.
  if (report.device_coremark > 0) {
    hw.host_cpu.effective_hz = hw.device_cpu.effective_hz *
                               (report.host_coremark / report.device_coremark);
  }
  return hw;
}

std::string ProfileReport::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "ProfileReport{\n"
     << "  compute kernel: host=" << host_coremark
     << " it/s, device=" << device_coremark
     << " it/s (ratio " << (device_coremark > 0 ? host_coremark / device_coremark : 0)
     << "x)\n"
     << "  memcpy: host=" << host_memcpy_gbps << " GB/s, device="
     << device_memcpy_gbps << " GB/s\n"
     << "  flash: internal_seq=" << internal_seq_read_gbps
     << " GB/s, internal_rand=" << internal_rand_read_iops
     << " IOPS, host_native_seq=" << host_native_seq_read_gbps
     << " GB/s, host_blk_seq=" << host_blk_seq_read_gbps << " GB/s\n"
     << "  pcie: 4KiB xfer=" << pcie_small_xfer_us
     << " us, streaming=" << pcie_large_xfer_gbps << " GB/s\n"
     << "}";
  return os.str();
}

}  // namespace hybridndp::sim
