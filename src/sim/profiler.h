// Hardware profiling micro-benchmark (paper Sect. 3.1): determines the
// parameter set of the hardware model before DBMS startup. CPU and memory
// characteristics come from memcpy runs over various buffer sizes and a
// floating-point kernel; flash performance from a random read/write mix;
// interconnect speed from handshake transfers of different sizes. The
// resulting values are placed in the DBMS parameter set (HwParams).

#pragma once

#include <string>

#include "sim/cost.h"
#include "sim/hw_model.h"

namespace hybridndp::sim {

/// Raw measurements taken by one profiler run.
struct ProfileReport {
  // CPU / memory.
  double host_coremark = 0;    ///< synthetic compute kernel, it/s
  double device_coremark = 0;  ///< synthetic compute kernel, it/s
  double host_memcpy_gbps = 0;
  double device_memcpy_gbps = 0;

  // Flash.
  double internal_seq_read_gbps = 0;
  double internal_rand_read_iops = 0;
  double host_native_seq_read_gbps = 0;
  double host_blk_seq_read_gbps = 0;

  // Interconnect (handshake transfers of different sizes).
  double pcie_small_xfer_us = 0;   ///< 4 KiB round trip
  double pcie_large_xfer_gbps = 0; ///< 64 MiB streaming

  std::string ToString() const;
};

/// Runs the profiling micro-benchmarks against the (simulated) platform and
/// returns both the raw report and an HwParams whose derived fields
/// (flash clock ratios, memcpy efficiency, compute ratio) are set from the
/// measurements — the paper's "parameter values in Table 2".
class HardwareProfiler {
 public:
  explicit HardwareProfiler(const HwParams& platform) : platform_(platform) {}

  ProfileReport Run() const;

  /// Translate a report into hardware-model parameters.
  HwParams DeriveParams(const ProfileReport& report) const;

 private:
  HwParams platform_;
};

}  // namespace hybridndp::sim
