#include "sim/hw_model.h"

#include <cmath>
#include <sstream>

namespace hybridndp::sim {

double PcieModel::BytesPerSec() const {
  // Per-lane raw gigatransfers/sec and encoding efficiency per generation.
  double gt_per_lane;
  double encoding;
  switch (version) {
    case 1:
      gt_per_lane = 2.5;
      encoding = 0.8;  // 8b/10b
      break;
    case 2:
      gt_per_lane = 5.0;
      encoding = 0.8;
      break;
    case 3:
      gt_per_lane = 8.0;
      encoding = 128.0 / 130.0;
      break;
    case 4:
      gt_per_lane = 16.0;
      encoding = 128.0 / 130.0;
      break;
    default:
      gt_per_lane = 32.0;
      encoding = 128.0 / 130.0;
      break;
  }
  // GT/s * encoding / 8 bits = GB/s per lane; apply protocol efficiency.
  const double protocol_efficiency = 0.85;
  return gt_per_lane * encoding / 8.0 * 1e9 * lanes * protocol_efficiency;
}

SimNanos FlashModel::InternalReadTime(uint64_t bytes) const {
  // Sequential streaming overlaps reads across channels; fractional pages
  // keep repeated sub-page reads from over-charging (block reads within one
  // page are pipelined by the controller).
  const double pages =
      static_cast<double>(bytes) / static_cast<double>(page_bytes);
  const double per_page = read_page_latency_ns + page_handling_ns;
  return pages * per_page / channels;
}

double FlashModel::InternalBytesPerSec() const {
  const double per_page = read_page_latency_ns + page_handling_ns;
  return static_cast<double>(page_bytes) * channels / per_page * kNanosPerSec;
}

HwParams HwParams::PaperDefaults() {
  HwParams hw;
  // Host: 4-core 3.4 GHz i5, CoreMark 92343 it/s.
  hw.host_cpu.clock_hz = 3.4e9;
  hw.host_cpu.cores = 4;
  hw.host_cpu.coremark_score = 92343;
  hw.host_cpu.effective_hz = 20.8e9;  // 667 MHz * (92343 / 2964)
  hw.host_cpu.memcpy_bytes_per_sec = 8e9;
  hw.host_cpu.engine_cycle_factor = 2.0;  // interpreted SQL engine

  // Device NDP core: single ARM A9 @ 667 MHz, CoreMark 2964 it/s.
  hw.device_cpu.clock_hz = 667e6;
  hw.device_cpu.cores = 1;
  hw.device_cpu.coremark_score = 2964;
  hw.device_cpu.effective_hz = 667e6;
  hw.device_cpu.memcpy_bytes_per_sec = 0.8e9;

  return hw;
}

std::string HwParams::ToString() const {
  std::ostringstream os;
  os << "HwParams{\n"
     << "  FLASH: page=" << flash.page_bytes << "B channels=" << flash.channels
     << " tR=" << flash.read_page_latency_ns / 1000.0 << "us"
     << " internal_bw=" << flash.InternalBytesPerSec() / 1e9 << "GB/s"
     << " ndp_fcf=" << ndp_flash_clock << " host_fcf=" << host_flash_clock
     << " fsw=" << flash_weight << "\n"
     << "  CPU: host=" << host_cpu.clock_hz / 1e9 << "GHz x" << host_cpu.cores
     << " (coremark " << host_cpu.coremark_score << ")"
     << " device=" << device_cpu.clock_hz / 1e6 << "MHz x" << device_cpu.cores
     << " (coremark " << device_cpu.coremark_score << ")"
     << " ratio=" << ComputeRatio() << "x\n"
     << "  MEM: host=" << (mem.host_bytes >> 20) << "MB device="
     << (mem.device_total_bytes >> 20) << "MB ndp_budget="
     << (mem.device_ndp_budget_bytes >> 20) << "MB sel_buf="
     << (mem.device_selection_bytes >> 10) << "KB join_buf="
     << (mem.device_join_bytes >> 10) << "KB\n"
     << "  PCIE: gen" << pcie.version << " x" << pcie.lanes << " = "
     << pcie.BytesPerSec() / 1e9 << "GB/s cmd_lat="
     << pcie.command_latency_ns / 1000.0 << "us\n"
     << "}";
  return os.str();
}

}  // namespace hybridndp::sim
