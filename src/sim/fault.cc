#include "sim/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/metrics.h"

namespace hybridndp::sim {

namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "storage.read", "storage.write", "sst.read", "device.exec", "coop.slot",
};

/// splitmix64 — deterministic, statistically solid for per-op coin flips.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  errno = 0;
  const unsigned long long v = strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseProb(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  errno = 0;
  const double v = strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

/// number + optional ns/us/ms suffix -> simulated nanoseconds.
bool ParseDuration(std::string_view s, SimNanos* out) {
  double scale = 1.0;
  if (s.size() >= 2) {
    const std::string_view suffix = s.substr(s.size() - 2);
    if (suffix == "ns") {
      s.remove_suffix(2);
    } else if (suffix == "us") {
      scale = 1e3;
      s.remove_suffix(2);
    } else if (suffix == "ms") {
      scale = 1e6;
      s.remove_suffix(2);
    }
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  errno = 0;
  const double v = strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || v < 0) return false;
  *out = v * scale;
  return true;
}

Status BadSpec(std::string_view what, std::string_view token) {
  return Status::InvalidArgument("HNDP_FAULTS: " + std::string(what) + " '" +
                                 std::string(token) + "'");
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

bool ParseFaultSite(std::string_view name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

Result<FaultConfig> FaultConfig::Parse(std::string_view spec) {
  FaultConfig cfg;
  for (std::string_view clause : Split(spec, ';')) {
    clause = Trim(clause);
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      return BadSpec("clause missing ':'", clause);
    }
    const std::string_view site_name = Trim(clause.substr(0, colon));
    const std::string_view items = clause.substr(colon + 1);

    if (site_name == "retry") {
      for (std::string_view item : Split(items, ',')) {
        item = Trim(item);
        if (item.empty()) continue;
        if (item.substr(0, 7) == "budget=") {
          uint64_t v = 0;
          if (!ParseUint(item.substr(7), &v) || v > 1000) {
            return BadSpec("bad retry budget", item);
          }
          cfg.retry_budget = static_cast<int>(v);
        } else if (item.substr(0, 8) == "backoff=") {
          if (!ParseDuration(item.substr(8), &cfg.backoff_ns)) {
            return BadSpec("bad retry backoff", item);
          }
        } else {
          return BadSpec("unknown retry item", item);
        }
      }
      continue;
    }

    FaultSite site;
    if (!ParseFaultSite(site_name, &site)) {
      return BadSpec("unknown fault site", site_name);
    }
    FaultPolicy& p = cfg.sites[static_cast<int>(site)];
    for (std::string_view item : Split(items, ',')) {
      item = Trim(item);
      if (item.empty()) continue;
      if (item == "always") {
        if (p.armed()) return BadSpec("conflicting triggers", clause);
        p.trigger = FaultPolicy::Trigger::kAlways;
      } else if (item.substr(0, 4) == "nth=") {
        if (p.armed()) return BadSpec("conflicting triggers", clause);
        if (!ParseUint(item.substr(4), &p.nth) || p.nth == 0) {
          return BadSpec("bad nth", item);
        }
        p.trigger = FaultPolicy::Trigger::kNth;
      } else if (item.substr(0, 5) == "prob=") {
        if (p.armed()) return BadSpec("conflicting triggers", clause);
        if (!ParseProb(item.substr(5), &p.prob)) {
          return BadSpec("bad prob", item);
        }
        p.trigger = FaultPolicy::Trigger::kProb;
      } else if (item.substr(0, 6) == "stall=") {
        if (!ParseDuration(item.substr(6), &p.stall_ns) || p.stall_ns <= 0) {
          return BadSpec("bad stall", item);
        }
      } else if (item.substr(0, 5) == "seed=") {
        if (!ParseUint(item.substr(5), &p.seed)) {
          return BadSpec("bad seed", item);
        }
      } else {
        return BadSpec("unknown policy item", item);
      }
    }
    if (!p.armed()) {
      return BadSpec("clause has no trigger (nth=/prob=/always)", clause);
    }
  }
  return cfg;
}

std::atomic<bool> FaultInjector::enabled_{false};

FaultInjector& FaultInjector::Global() {
  // hndp-lint: allow(raw-new) leak-on-purpose process singleton
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Configure(const FaultConfig& cfg) {
  {
    common::MutexLock lock(mu_);
    config_ = cfg;
  }
  ResetCounters();
  enabled_.store(cfg.any_armed(), std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  enabled_.store(false, std::memory_order_relaxed);
  {
    common::MutexLock lock(mu_);
    config_ = FaultConfig{};
  }
  ResetCounters();
}

FaultConfig FaultInjector::config() const {
  common::MutexLock lock(mu_);
  return config_;
}

Status FaultInjector::InitFromEnv() {
  const char* spec = std::getenv("HNDP_FAULTS");
  if (spec == nullptr || *spec == '\0') {
    Disarm();
    return Status::OK();
  }
  auto cfg = FaultConfig::Parse(spec);
  if (!cfg.ok()) return cfg.status();
  Configure(*cfg);
  return Status::OK();
}

FaultInjector::SiteStats FaultInjector::Stats(FaultSite site) const {
  const AtomicSiteStats& a = stats_[static_cast<int>(site)];
  SiteStats s;
  s.ops = a.ops.load(std::memory_order_relaxed);
  s.injected = a.injected.load(std::memory_order_relaxed);
  s.stalls = a.stalls.load(std::memory_order_relaxed);
  s.retries = a.retries.load(std::memory_order_relaxed);
  s.exhausted = a.exhausted.load(std::memory_order_relaxed);
  return s;
}

void FaultInjector::ResetCounters() {
  for (auto& s : stats_) {
    s.ops.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
    s.stalls.store(0, std::memory_order_relaxed);
    s.retries.store(0, std::memory_order_relaxed);
    s.exhausted.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::Fires(const FaultPolicy& policy, FaultSite site) {
  AtomicSiteStats& s = stats_[static_cast<int>(site)];
  const uint64_t op = s.ops.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (policy.trigger) {
    case FaultPolicy::Trigger::kNever:
      return false;
    case FaultPolicy::Trigger::kNth:
      return op == policy.nth;
    case FaultPolicy::Trigger::kProb: {
      const uint64_t h =
          Mix64(policy.seed ^ (static_cast<uint64_t>(site) << 56) ^ op);
      // Top 53 bits -> uniform double in [0, 1).
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      return u < policy.prob;
    }
    case FaultPolicy::Trigger::kAlways:
      return true;
  }
  return false;
}

Status FaultInjector::Check(FaultSite site, AccessContext* ctx) {
  FaultPolicy policy;
  int retry_budget;
  SimNanos backoff;
  {
    // One short critical section to snapshot the (small) policy + retry
    // knobs; the retry loop below then runs lock-free. Only armed runs pay
    // this — the disarmed fast path never reaches Check.
    common::MutexLock lock(mu_);
    policy = config_.sites[static_cast<int>(site)];
    retry_budget = config_.retry_budget;
    backoff = config_.backoff_ns;
  }
  if (!policy.armed()) return Status::OK();
  AtomicSiteStats& s = stats_[static_cast<int>(site)];
  if (!Fires(policy, site)) return Status::OK();

  if (policy.stall_ns > 0) {
    // Latency spike: the operation succeeds, just late.
    s.stalls.fetch_add(1, std::memory_order_relaxed);
    if (ctx != nullptr) ctx->ChargeLatency(policy.stall_ns);
    return Status::OK();
  }

  s.injected.fetch_add(1, std::memory_order_relaxed);
  // Transient-error model: retry with doubling simulated backoff. Each
  // attempt is a fresh draw against the same policy, so nth-style faults
  // recover on the first retry while always/high-prob faults exhaust the
  // budget and surface as a permanent IOError.
  for (int attempt = 1; attempt <= retry_budget; ++attempt) {
    s.retries.fetch_add(1, std::memory_order_relaxed);
    if (ctx != nullptr) ctx->ChargeLatency(backoff);
    backoff *= 2;
    if (!Fires(policy, site)) return Status::OK();
    s.injected.fetch_add(1, std::memory_order_relaxed);
  }
  s.exhausted.fetch_add(1, std::memory_order_relaxed);
  return Status::IOError(std::string("injected fault at ") +
                         FaultSiteName(site) + " (retry budget " +
                         std::to_string(retry_budget) + " exhausted)");
}

void FaultInjector::ExportMetrics(obs::MetricsRegistry* reg) const {
  if (reg == nullptr || !Enabled()) return;
  const FaultConfig cfg = config();
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (!cfg.sites[i].armed()) continue;
    const SiteStats st = Stats(static_cast<FaultSite>(i));
    const std::string site = kSiteNames[i];
    reg->counter("hndp.fault.ops." + site)->Set(st.ops);
    reg->counter("hndp.fault.injected." + site)->Set(st.injected);
    reg->counter("hndp.fault.stalls." + site)->Set(st.stalls);
    reg->counter("hndp.retry.attempts." + site)->Set(st.retries);
    reg->counter("hndp.retry.exhausted." + site)->Set(st.exhausted);
  }
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& cfg)
    : prev_config_(FaultInjector::Global().config()),
      prev_enabled_(FaultInjector::Enabled()) {
  FaultInjector::Global().Configure(cfg);
}

ScopedFaultInjection::ScopedFaultInjection(std::string_view spec)
    : prev_config_(FaultInjector::Global().config()),
      prev_enabled_(FaultInjector::Enabled()) {
  auto cfg = FaultConfig::Parse(spec);
  if (!cfg.ok()) {
    fprintf(stderr, "ScopedFaultInjection: %s\n",
            cfg.status().ToString().c_str());
    abort();
  }
  FaultInjector::Global().Configure(*cfg);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  if (prev_enabled_) {
    FaultInjector::Global().Configure(prev_config_);
  } else {
    FaultInjector::Global().Disarm();
  }
}

}  // namespace hybridndp::sim
