// The generalized hardware model of hybridNDP (paper Sect. 3.1, Table 2).
//
// It abstracts a smart-storage setting into four component models — FLASH,
// CPU, MEMORY, INTERCONNECT — whose parameters are either profiled
// (sim/profiler.h) or configured. Default values reproduce the paper's
// evaluation platform: a 4-core 3.4 GHz Intel i5 host with 4 GB RAM and a
// COSMOS+ OpenSSD (Zynq 7045; 2x ARM A9 @ 667 MHz; 1 GB DRAM; MLC flash in
// SLC mode) attached over PCIe 2.0 x8. The host:device compute throughput
// ratio follows the paper's CoreMark measurements (92343 vs 2964 it/s).

#pragma once

#include <cstdint>
#include <string>

#include "common/sim_clock.h"

namespace hybridndp::sim {

/// Interconnect model: PCIe version + lane count -> bandwidth and latency
/// (the paper's cf_pcie cost function inputs hw_IPV, hw_IPL).
struct PcieModel {
  int version = 2;  ///< hw_IPV
  int lanes = 8;    ///< hw_IPL
  /// Per-command round-trip software+hardware latency (native NVMe path).
  SimNanos command_latency_ns = 8'000;

  /// Effective unidirectional bandwidth in bytes/second, accounting for the
  /// line encoding of the generation (8b/10b for Gen1/2, 128b/130b after).
  double BytesPerSec() const;

  /// Time to move `bytes` across the link in one command.
  SimNanos TransferTime(uint64_t bytes) const {
    return command_latency_ns + static_cast<SimNanos>(bytes) / BytesPerSec() * kNanosPerSec;
  }
};

/// Flash model: geometry and timing of the NAND array. The device-internal
/// access path (NDP engine) sees channel-parallel reads with no interface
/// stack; the host path pays the interconnect on top.
struct FlashModel {
  uint64_t page_bytes = 16 * 1024;
  int channels = 8;                      ///< Parallel channels for streaming.
  SimNanos read_page_latency_ns = 25'000;  ///< SLC-mode page read (tR).
  /// Per-page controller/FTL handling overhead.
  SimNanos page_handling_ns = 2'000;

  /// Device-internal time to read `bytes` sequentially (channel-parallel).
  SimNanos InternalReadTime(uint64_t bytes) const;
  /// Device-internal time for one random page read (single channel).
  SimNanos RandomPageReadTime() const {
    return read_page_latency_ns + page_handling_ns;
  }
  /// Sustained internal bandwidth in bytes/sec.
  double InternalBytesPerSec() const;
};

/// CPU model of one actor (host or device NDP core). Timing is throughput
/// based: `effective_hz` is the rate at which the actor retires abstract
/// work cycles; the host:device ratio is calibrated against CoreMark
/// (hw_CCF x IPC). Memcpy has its own rate (hw_CME) because bulk copies
/// behave differently from branchy compare work on both platforms.
struct CpuModel {
  double clock_hz = 3.4e9;        ///< hw_CCF
  int cores = 4;                  ///< hw_CCN
  double coremark_score = 92343;  ///< measured it/s (paper Sect. 5)
  /// Abstract work cycles retired per second by one core.
  double effective_hz = 20.8e9;
  /// Bulk copy throughput (hw_CME), bytes/sec.
  double memcpy_bytes_per_sec = 8e9;
  /// Per-operation cycle multiplier of the query engine running on this
  /// actor. The host executes the MySQL/MyRocks interpreted row pipeline
  /// (handler API, format conversions — thousands of cycles per row); the
  /// on-device NDP engine is lean compiled code (factor 1). Calibrated so
  /// that full-NDP execution lands near the NATIVE stack on scan-dominated
  /// queries (paper Fig. 11B / Fig. 14).
  double engine_cycle_factor = 1.0;

  SimNanos TimeForCycles(double cycles) const {
    return cycles * engine_cycle_factor / effective_hz * kNanosPerSec;
  }
  SimNanos TimeForCopy(uint64_t bytes) const {
    return static_cast<SimNanos>(bytes) / memcpy_bytes_per_sec * kNanosPerSec;
  }
};

/// Memory sizes and weighting factors used by the split-point computation
/// (paper eqs. 10-11).
struct MemoryModel {
  uint64_t host_bytes = 4ull << 30;        ///< hw_MSH
  uint64_t device_total_bytes = 1ull << 30;
  /// Per-operator on-device reservations (paper Sect. 5: 17 MB per selection,
  /// 7 MB per join at full scale; scaled with the dataset).
  uint64_t device_selection_bytes = 17ull << 20;  ///< hw_MSS
  uint64_t device_join_bytes = 7ull << 20;        ///< hw_MSJ
  /// Usable NDP buffer budget (paper: ~400 MB of the 1 GB DRAM).
  uint64_t device_ndp_budget_bytes = 400ull << 20;
  double mem_weight = 1.0;  ///< ndp_hw_MSW
};

/// Full hardware model (paper Table 2).
struct HwParams {
  // FLASH
  double ndp_flash_clock = 1.0;   ///< ndp_hw_FCF: relative flash access rate, device path
  double host_flash_clock = 0.55; ///< host_hw_FCF: relative flash access rate, host path
  double flash_weight = 1.0;      ///< hw_FSW: flash weighting for hybrid-idx
  FlashModel flash;

  // CPU
  CpuModel host_cpu;
  CpuModel device_cpu;

  // MEMORY
  MemoryModel mem;

  // INTERCONNECT
  PcieModel pcie;

  /// Extra cost factor for the BLK (file-system) stack relative to NATIVE:
  /// page cache copies, syscalls, generic block layer (paper Fig. 10).
  double blk_stack_overhead = 1.12;
  SimNanos blk_syscall_ns = 2'000;

  /// Host : device compute throughput ratio (CoreMark based).
  double ComputeRatio() const {
    return host_cpu.effective_hz / device_cpu.effective_hz;
  }

  /// Default parameters matching the paper's platform.
  static HwParams PaperDefaults();

  std::string ToString() const;
};

}  // namespace hybridndp::sim
