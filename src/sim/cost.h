// Cost accounting: every physical action in the engine (flash page loads,
// key comparisons, memcmp bytes, index seeks, PCIe transfers, ...) is charged
// to an AccessContext, which advances the owning actor's simulated clock and
// tallies per-category counters. The categories follow the device-side
// breakdown the paper reports in Table 4.

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/sim_clock.h"
#include "sim/hw_model.h"

namespace hybridndp::sim {

/// Who executes the work.
enum class Actor : uint8_t { kHost = 0, kDevice = 1 };

/// Which I/O stack the actor uses to reach flash (paper Fig. 10).
enum class IoPath : uint8_t {
  kBlk = 0,       ///< host via ext4 + block layer (baseline BLK)
  kNative = 1,    ///< host via native NVMe, no FS abstractions (NATIVE)
  kInternal = 2,  ///< device-internal access (NDP engine)
};

/// Cost categories. The first seven mirror the paper's Table 4 device
/// breakdown; the remainder cover host-side and cross-cutting work.
enum class CostKind : uint8_t {
  kMemcmp = 0,              ///< predicate/value byte comparisons (unit: bytes)
  kCompareInternalKeys,     ///< LSM internal-key comparisons (unit: count)
  kSeekIndexBlock,          ///< sparse-index binary-search seeks (unit: count)
  kSelectionProcessing,     ///< per-record selection framework (unit: records)
  kSeekDataBlock,           ///< data-block restart-point seeks (unit: count)
  kFlashLoad,               ///< flash page loads (unit: bytes)
  kOther,                   ///< misc bookkeeping (unit: cycles)
  kHashBuild,               ///< hash-table inserts (unit: count)
  kHashProbe,               ///< hash-table probes (unit: count)
  kCopy,                    ///< memcpy/materialization (unit: bytes)
  kRecordEval,              ///< generic row evaluation (unit: records)
  kAggUpdate,               ///< aggregate updates (unit: count)
  kTransfer,                ///< interconnect transfers (unit: bytes)
  kNumKinds,
};

constexpr int kNumCostKinds = static_cast<int>(CostKind::kNumKinds);

/// Display name for a cost kind (matches Table 4 vocabulary).
const char* CostKindName(CostKind kind);

/// Per-category tallies: units and simulated time.
struct CostCounters {
  std::array<uint64_t, kNumCostKinds> units{};
  std::array<SimNanos, kNumCostKinds> time_ns{};

  void Add(CostKind kind, uint64_t u, SimNanos t) {
    units[static_cast<int>(kind)] += u;
    time_ns[static_cast<int>(kind)] += t;
  }
  uint64_t Units(CostKind kind) const {
    return units[static_cast<int>(kind)];
  }
  SimNanos Time(CostKind kind) const {
    return time_ns[static_cast<int>(kind)];
  }
  SimNanos TotalTime() const {
    SimNanos t = 0;
    for (auto v : time_ns) t += v;
    return t;
  }
  void Merge(const CostCounters& other) {
    for (int i = 0; i < kNumCostKinds; ++i) {
      units[i] += other.units[i];
      time_ns[i] += other.time_ns[i];
    }
  }
  void Reset() {
    units.fill(0);
    time_ns.fill(0);
  }
  /// Percent-of-total rendering in the style of paper Table 4 (right).
  std::string BreakdownString() const;
};

/// Abstract work cycles per unit of each cost kind. Cycle constants are
/// platform-independent; actors differ via CpuModel::effective_hz, which is
/// CoreMark-calibrated (in-order ARM A9 vs out-of-order i5).
struct CostCycleTable {
  double memcmp_per_byte = 1.2;
  double compare_internal_key = 16;
  double seek_index_block = 600;
  double selection_per_record = 60;
  double seek_data_block = 400;
  double hash_build = 60;
  double hash_probe = 40;
  double record_eval = 80;
  double agg_update = 30;
};

/// Charges costs against one actor's simulated clock.
class AccessContext {
 public:
  AccessContext(const HwParams* hw, Actor actor, IoPath path)
      : hw_(hw), actor_(actor), path_(path) {}

  Actor actor() const { return actor_; }
  IoPath path() const { return path_; }
  const HwParams& hw() const { return *hw_; }
  SimClock& clock() { return clock_; }
  SimNanos now() const { return clock_.now(); }
  const CostCounters& counters() const { return counters_; }
  CostCounters* mutable_counters() { return &counters_; }

  /// Charge `units` of CPU-type work of the given kind.
  void Charge(CostKind kind, uint64_t units_count);

  /// Charge a sequential flash read of `bytes`, routed through this
  /// context's I/O path (internal only / +PCIe / +PCIe +FS overhead).
  void ChargeFlashRead(uint64_t bytes);

  /// Charge a random single-page flash access (index/data block point read).
  void ChargeFlashRandomRead(uint64_t bytes);

  /// Charge a device->host transfer of `bytes` over the interconnect (used
  /// for NDP result shipping; host-side stacks already pay PCIe on reads).
  void ChargeTransfer(uint64_t bytes);

  /// Charge an explicit bulk copy.
  void ChargeCopy(uint64_t bytes);

  /// Charge a fixed latency (e.g. NDP command setup).
  void ChargeLatency(SimNanos ns) { clock_.Advance(ns); }

  /// Scale factor applied to kCopy charges. The on-device pointer-cache
  /// format (paper Sect. 4.2) stores addresses instead of full records in
  /// intermediate caches; the device executor models it by discounting
  /// intermediate copies.
  void SetCopyFactor(double f) { copy_factor_ = f; }
  double copy_factor() const { return copy_factor_; }

  void ResetCosts() {
    counters_.Reset();
    clock_.Reset();
  }

 private:
  const CpuModel& cpu() const {
    return actor_ == Actor::kHost ? hw_->host_cpu : hw_->device_cpu;
  }
  /// Interconnect + stack overhead for moving flash data to this actor.
  SimNanos PathOverhead(uint64_t bytes, bool random) const;

  const HwParams* hw_;
  Actor actor_;
  IoPath path_;
  double copy_factor_ = 1.0;
  SimClock clock_;
  CostCounters counters_;
  CostCycleTable cycles_;
};

}  // namespace hybridndp::sim
