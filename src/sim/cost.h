// Cost accounting: every physical action in the engine (flash page loads,
// key comparisons, memcmp bytes, index seeks, PCIe transfers, ...) is charged
// to an AccessContext, which advances the owning actor's simulated clock and
// tallies per-category counters. The categories follow the device-side
// breakdown the paper reports in Table 4.

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/sim_clock.h"
#include "sim/hw_model.h"

namespace hybridndp::sim {

/// Who executes the work.
enum class Actor : uint8_t { kHost = 0, kDevice = 1 };

/// Which I/O stack the actor uses to reach flash (paper Fig. 10).
enum class IoPath : uint8_t {
  kBlk = 0,       ///< host via ext4 + block layer (baseline BLK)
  kNative = 1,    ///< host via native NVMe, no FS abstractions (NATIVE)
  kInternal = 2,  ///< device-internal access (NDP engine)
};

/// Cost categories. The first seven mirror the paper's Table 4 device
/// breakdown; the remainder cover host-side and cross-cutting work.
enum class CostKind : uint8_t {
  kMemcmp = 0,              ///< predicate/value byte comparisons (unit: bytes)
  kCompareInternalKeys,     ///< LSM internal-key comparisons (unit: count)
  kSeekIndexBlock,          ///< sparse-index binary-search seeks (unit: count)
  kSelectionProcessing,     ///< per-record selection framework (unit: records)
  kSeekDataBlock,           ///< data-block restart-point seeks (unit: count)
  kFlashLoad,               ///< flash page loads (unit: bytes)
  kOther,                   ///< misc bookkeeping (unit: cycles)
  kHashBuild,               ///< hash-table inserts (unit: count)
  kHashProbe,               ///< hash-table probes (unit: count)
  kCopy,                    ///< memcpy/materialization (unit: bytes)
  kRecordEval,              ///< generic row evaluation (unit: records)
  kAggUpdate,               ///< aggregate updates (unit: count)
  kTransfer,                ///< interconnect transfers (unit: bytes)
  kNumKinds,
};

constexpr int kNumCostKinds = static_cast<int>(CostKind::kNumKinds);

/// Display name for a cost kind (matches Table 4 vocabulary).
const char* CostKindName(CostKind kind);

/// Per-category tallies: units and simulated time. Time is stored as
/// integer picoseconds (quantized per charge, see SimPicos) so that sums are
/// exact and independent of charge order; nanoseconds at the API boundary.
struct CostCounters {
  std::array<uint64_t, kNumCostKinds> units{};
  std::array<SimPicos, kNumCostKinds> time_ps{};

  void Add(CostKind kind, uint64_t u, SimNanos t) {
    units[static_cast<int>(kind)] += u;
    time_ps[static_cast<int>(kind)] += NanosToPicos(t);
  }
  /// Add an already-quantized total (see AccessContext::ChargeRepeated).
  void AddQuantized(CostKind kind, uint64_t u, SimPicos ps) {
    units[static_cast<int>(kind)] += u;
    time_ps[static_cast<int>(kind)] += ps;
  }
  uint64_t Units(CostKind kind) const {
    return units[static_cast<int>(kind)];
  }
  SimNanos Time(CostKind kind) const {
    return PicosToNanos(time_ps[static_cast<int>(kind)]);
  }
  SimNanos TotalTime() const {
    SimPicos t = 0;
    for (auto v : time_ps) t += v;
    return PicosToNanos(t);
  }
  void Merge(const CostCounters& other) {
    for (int i = 0; i < kNumCostKinds; ++i) {
      units[i] += other.units[i];
      time_ps[i] += other.time_ps[i];
    }
  }
  void Reset() {
    units.fill(0);
    time_ps.fill(0);
  }
  /// Percent-of-total rendering in the style of paper Table 4 (right).
  std::string BreakdownString() const;
};

/// Abstract work cycles per unit of each cost kind. Cycle constants are
/// platform-independent; actors differ via CpuModel::effective_hz, which is
/// CoreMark-calibrated (in-order ARM A9 vs out-of-order i5).
struct CostCycleTable {
  double memcmp_per_byte = 1.2;
  double compare_internal_key = 16;
  double seek_index_block = 600;
  double selection_per_record = 60;
  double seek_data_block = 400;
  double hash_build = 60;
  double hash_probe = 40;
  double record_eval = 80;
  double agg_update = 30;
};

/// Charges costs against one actor's simulated clock.
class AccessContext {
 public:
  AccessContext(const HwParams* hw, Actor actor, IoPath path)
      : hw_(hw), actor_(actor), path_(path) {
    // Per-kind cycle factors, indexed by CostKind for the inline Charge.
    // kFlashLoad/kCopy/kTransfer never read their slot (special-cased).
    cycles_per_unit_ = {cycles_.memcmp_per_byte,
                        cycles_.compare_internal_key,
                        cycles_.seek_index_block,
                        cycles_.selection_per_record,
                        cycles_.seek_data_block,
                        0.0,  // kFlashLoad
                        1.0,  // kOther: raw cycles
                        cycles_.hash_build,
                        cycles_.hash_probe,
                        0.0,  // kCopy
                        cycles_.record_eval,
                        cycles_.agg_update,
                        0.0};  // kTransfer
  }

  Actor actor() const { return actor_; }
  IoPath path() const { return path_; }
  const HwParams& hw() const { return *hw_; }
  SimClock& clock() { return clock_; }
  SimNanos now() const { return clock_.now(); }
  const CostCounters& counters() const { return counters_; }
  CostCounters* mutable_counters() { return &counters_; }

  /// Charge `units` of CPU-type work of the given kind. Inline: this is the
  /// hottest function in the engine (one call per row per operator, tens of
  /// millions per bench run). The cycle math matches CostCycleTable member
  /// by member, so simulated values are unaffected by the inlining.
  void Charge(CostKind kind, uint64_t units_count) {
    switch (kind) {
      case CostKind::kCopy: {
        const SimNanos t = cpu().TimeForCopy(units_count) * copy_factor_;
        counters_.Add(kind, units_count, t);
        clock_.Advance(t);
        return;
      }
      case CostKind::kFlashLoad:
      case CostKind::kTransfer:
      case CostKind::kNumKinds:
        // Charged via the dedicated Charge{FlashRead,Transfer} entry points.
        return;
      default: {
        const double cycles =
            cycles_per_unit_[static_cast<int>(kind)] * units_count;
        const SimNanos t = cpu().TimeForCycles(cycles);
        counters_.Add(kind, units_count, t);
        clock_.Advance(t);
      }
    }
  }

  /// Charge `n` repetitions of an identical charge (`units_each` units of
  /// `kind`) in one step. Bit-identical to calling Charge(kind, units_each)
  /// n times: every repetition quantizes to the same integer-picosecond
  /// value, so their sum is exactly n times that quantum. This is how the
  /// batch path amortizes per-row accounting (DESIGN.md §10): a batch of
  /// uniform rows pays one multiply instead of n float-to-pico conversions.
  void ChargeRepeated(CostKind kind, uint64_t units_each, uint64_t n) {
    if (n == 0) return;
    SimNanos t;
    switch (kind) {
      case CostKind::kCopy:
        t = cpu().TimeForCopy(units_each) * copy_factor_;
        break;
      case CostKind::kFlashLoad:
      case CostKind::kTransfer:
      case CostKind::kNumKinds:
        // Charged via the dedicated Charge{FlashRead,Transfer} entry points.
        return;
      default:
        t = cpu().TimeForCycles(cycles_per_unit_[static_cast<int>(kind)] *
                                units_each);
    }
    const SimPicos total_ps =
        static_cast<SimPicos>(n) * NanosToPicos(t);
    counters_.AddQuantized(kind, units_each * n, total_ps);
    clock_.AdvancePicos(total_ps);
  }

  /// Charge `n` identical bulk copies of `bytes_each` (see ChargeRepeated).
  void ChargeCopyRepeated(uint64_t bytes_each, uint64_t n) {
    ChargeRepeated(CostKind::kCopy, bytes_each, n);
  }

  /// Charge a sequential flash read of `bytes`, routed through this
  /// context's I/O path (internal only / +PCIe / +PCIe +FS overhead).
  void ChargeFlashRead(uint64_t bytes);

  /// Charge a random single-page flash access (index/data block point read).
  void ChargeFlashRandomRead(uint64_t bytes);

  /// Charge a device->host transfer of `bytes` over the interconnect (used
  /// for NDP result shipping; host-side stacks already pay PCIe on reads).
  void ChargeTransfer(uint64_t bytes);

  /// Charge an explicit bulk copy.
  void ChargeCopy(uint64_t bytes) { Charge(CostKind::kCopy, bytes); }

  /// Charge a fixed latency (e.g. NDP command setup).
  void ChargeLatency(SimNanos ns) { clock_.Advance(ns); }

  /// Scale factor applied to kCopy charges. The on-device pointer-cache
  /// format (paper Sect. 4.2) stores addresses instead of full records in
  /// intermediate caches; the device executor models it by discounting
  /// intermediate copies.
  void SetCopyFactor(double f) { copy_factor_ = f; }
  double copy_factor() const { return copy_factor_; }

  void ResetCosts() {
    counters_.Reset();
    clock_.Reset();
  }

 private:
  const CpuModel& cpu() const {
    return actor_ == Actor::kHost ? hw_->host_cpu : hw_->device_cpu;
  }
  /// Interconnect + stack overhead for moving flash data to this actor.
  SimNanos PathOverhead(uint64_t bytes, bool random) const;

  const HwParams* hw_;
  Actor actor_;
  IoPath path_;
  double copy_factor_ = 1.0;
  SimClock clock_;
  CostCounters counters_;
  CostCycleTable cycles_;
  std::array<double, kNumCostKinds> cycles_per_unit_{};
};

}  // namespace hybridndp::sim
