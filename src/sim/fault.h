// Deterministic fault injection for the simulated storage stack.
//
// Production NDP deployments must survive device-side failures (Taurus
// degrades to plain storage reads when pushdown fails; Conduit tolerates
// per-resource compute faults — see PAPERS.md). This module provides the
// error model: named injection sites in the storage/device/coop layers,
// armed via the HNDP_FAULTS environment variable with seeded, deterministic
// policies. When no faults are armed the fast path is a single relaxed
// atomic load and the simulation is bit-identical to a build without the
// layer.
//
// Spec grammar (semicolon-separated clauses):
//
//   HNDP_FAULTS = clause (';' clause)*
//   clause      = site ':' item (',' item)*
//   site        = storage.read | storage.write | sst.read
//               | device.exec | coop.slot | retry
//   item        = 'nth=' N        -- fire on the N-th operation (1-based)
//               | 'prob=' P       -- fire each op with probability P (seeded)
//               | 'always'        -- fire on every operation
//               | 'stall=' DUR    -- latency spike instead of an error
//               | 'seed=' S       -- per-site PRNG seed (prob trigger)
//   retry items = 'budget=' K     -- max retry attempts per error (default 3)
//               | 'backoff=' DUR  -- first retry backoff, doubles (def 20us)
//   DUR         = number with optional ns|us|ms suffix (default ns)
//
// Example: HNDP_FAULTS='device.exec:nth=2;sst.read:prob=0.3,seed=7'
//
// Semantics of one FaultCheck(site, ctx):
//  * policy does not fire        -> OK, no simulated-time effect
//  * stall policy fires          -> charge stall_ns latency to ctx, OK
//  * error policy fires          -> bounded retry loop: each attempt charges
//    an exponentially growing backoff to ctx and re-evaluates the policy;
//    recovery returns OK (transient fault), budget exhaustion returns
//    Status::IOError (permanent fault, surfaced to the caller).
//
// All decisions derive from per-site operation counters and fixed seeds, so
// a given HNDP_FAULTS spec replays identically run over run.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "sim/cost.h"

namespace hybridndp::obs {
class MetricsRegistry;
}  // namespace hybridndp::obs

namespace hybridndp::sim {

/// Named injection sites, one per fallible layer of the storage stack.
enum class FaultSite : uint8_t {
  kStorageRead = 0,  ///< lsm::Storage::Read, device-side accesses only
  kStorageWrite,     ///< lsm::Storage file append (SST flush)
  kSstRead,          ///< SstReader block read, device-side accesses only
  kDeviceExec,       ///< ndp::DeviceExecutor command execution
  kCoopSlot,         ///< shared result-buffer slot handoff (hybrid/coop)
  kNumSites,
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kNumSites);

/// Spec name of a site ("storage.read", ...).
const char* FaultSiteName(FaultSite site);

/// Inverse of FaultSiteName. Returns false for unknown names.
bool ParseFaultSite(std::string_view name, FaultSite* out);

/// When and how one site misbehaves.
struct FaultPolicy {
  enum class Trigger : uint8_t {
    kNever = 0,  ///< site disarmed
    kNth,        ///< fire exactly on operation number `nth` (1-based)
    kProb,       ///< fire each operation with probability `prob`
    kAlways,     ///< fire on every operation
  };

  Trigger trigger = Trigger::kNever;
  uint64_t nth = 0;
  double prob = 0.0;
  uint64_t seed = 0;
  /// > 0: the fault is a latency spike of this many simulated nanoseconds
  /// instead of an error (the operation still succeeds).
  SimNanos stall_ns = 0;

  bool armed() const { return trigger != Trigger::kNever; }
};

/// Full injector configuration: one policy per site plus the retry knobs.
struct FaultConfig {
  std::array<FaultPolicy, kNumFaultSites> sites{};
  /// Max retry attempts after an injected error before giving up.
  int retry_budget = 3;
  /// Simulated backoff charged before the first retry; doubles per attempt.
  SimNanos backoff_ns = 20'000;

  bool any_armed() const {
    for (const auto& p : sites) {
      if (p.armed()) return true;
    }
    return false;
  }

  /// Parse the HNDP_FAULTS grammar documented at the top of this header.
  static Result<FaultConfig> Parse(std::string_view spec);
};

/// Process-wide fault injector. Disarmed by default; armed explicitly via
/// Configure (tests) or InitFromEnv (benches/CLI). All counters are atomics
/// so concurrent strategy runs may evaluate sites in any order; decisions
/// depend only on the per-site operation number each evaluation draws.
class FaultInjector {
 public:
  /// Per-site tallies, exported as hndp.fault.* / hndp.retry.* metrics.
  struct SiteStats {
    uint64_t ops = 0;        ///< FaultCheck evaluations (incl. retries)
    uint64_t injected = 0;   ///< error faults fired
    uint64_t stalls = 0;     ///< stall faults fired
    uint64_t retries = 0;    ///< retry attempts made
    uint64_t exhausted = 0;  ///< retry budgets exhausted (error surfaced)
  };

  static FaultInjector& Global();

  /// Fast path: false means no site anywhere is armed and FaultCheck is a
  /// no-op. Relaxed atomic; safe to call from any thread.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Install `cfg` and reset all counters. Must not race with execution.
  void Configure(const FaultConfig& cfg);

  /// Disarm every site (FaultCheck returns to the single-load fast path).
  void Disarm();

  /// Configure from the HNDP_FAULTS environment variable. Returns the parse
  /// status (OK and disarmed when the variable is unset/empty).
  Status InitFromEnv();

  /// Snapshot of the installed configuration (copied under the config
  /// mutex; a reference would escape the lock).
  FaultConfig config() const;
  SiteStats Stats(FaultSite site) const;
  void ResetCounters();

  /// One injection decision, including the retry loop. See header comment.
  /// `ctx` may be null (no simulated-time effects are modelled then).
  Status Check(FaultSite site, AccessContext* ctx);

  /// Export per-armed-site gauges into `reg`:
  ///   hndp.fault.ops.<site>, hndp.fault.injected.<site>,
  ///   hndp.fault.stalls.<site>, hndp.retry.attempts.<site>,
  ///   hndp.retry.exhausted.<site>
  /// No-op when disarmed, so zero-fault metric exports are unchanged.
  void ExportMetrics(obs::MetricsRegistry* reg) const;

 private:
  struct AtomicSiteStats {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> stalls{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> exhausted{0};
  };

  /// Draw the next operation number for `site` and decide whether the
  /// policy fires on it.
  bool Fires(const FaultPolicy& policy, FaultSite site);

  static std::atomic<bool> enabled_;

  /// Guards the installed configuration. Check() copies the (small)
  /// per-site policy + retry knobs once per armed evaluation, so the
  /// retry loop itself runs lock-free; stats_ are plain atomics.
  mutable common::Mutex mu_;
  FaultConfig config_ GUARDED_BY(mu_);
  std::array<AtomicSiteStats, kNumFaultSites> stats_;
};

/// Convenience wrapper over FaultInjector::Global().Check — the call every
/// injection site makes. Inlined single-load no-op while disarmed.
inline Status FaultCheck(FaultSite site, AccessContext* ctx) {
  if (!FaultInjector::Enabled()) return Status::OK();
  return FaultInjector::Global().Check(site, ctx);
}

/// RAII: install a config on the global injector for one scope (tests),
/// restoring the previous configuration (and armed state) on exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& cfg);
  /// Parse + install; aborts on a malformed spec (test-only convenience).
  explicit ScopedFaultInjection(std::string_view spec);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultConfig prev_config_;
  bool prev_enabled_;
};

}  // namespace hybridndp::sim
