// Batch-execution plumbing shared by all operators: the default NextBatch
// adapter over Next(), and the batched drain.

#include "exec/operator.h"

namespace hybridndp::exec {

RowBatch* Operator::NextBatch(size_t max_rows) {
  return FillBatchViaNext(max_rows);
}

Status TreeStatus(const Operator& root) {
  if (!root.status().ok()) return root.status();
  Status s;
  root.ForEachChild([&s](const Operator& child) {
    if (s.ok()) s = TreeStatus(child);
  });
  return s;
}

RowBatch* Operator::FillBatchViaNext(size_t max_rows) {
  adapter_batch_.Reset(&output_schema(), max_rows);
  while (!adapter_batch_.full()) {
    if (!Next(&adapter_row_)) break;
    adapter_batch_.AppendCopy(adapter_row_.data());
  }
  return adapter_batch_.num_active() > 0 ? &adapter_batch_ : nullptr;
}

Result<std::vector<std::string>> CollectAllBatched(Operator* op,
                                                   size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  HNDP_RETURN_IF_ERROR(op->Open());
  std::vector<std::string> rows;
  const size_t row_size = op->output_schema().row_size();
  while (RowBatch* b = op->NextBatch(batch_rows)) {
    for (size_t k = 0; k < b->num_active(); ++k) {
      rows.emplace_back(b->active_row(k), row_size);
    }
  }
  op->Close();
  // nullptr means end-of-stream OR error; disambiguate before returning.
  HNDP_RETURN_IF_ERROR(TreeStatus(*op));
  return rows;
}

}  // namespace hybridndp::exec
