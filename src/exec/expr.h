// Predicate/expression trees over fixed-size rows. Expressions are built
// against column *names* and bound to a concrete Schema before evaluation
// (plans re-bind when schemas change shape through joins). The planner
// introspects expressions to estimate selectivities (calc_sel).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/schema.h"
#include "sim/cost.h"

namespace hybridndp::exec {

using rel::RowView;
using rel::Schema;

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

enum class ExprKind : uint8_t {
  kCmpInt,     ///< column <op> int literal
  kCmpStr,     ///< column <op> string literal
  kCmpCol,     ///< column <op> column (same row; used post-join)
  kLike,       ///< column LIKE pattern ('%' wildcards), or NOT LIKE
  kInStr,      ///< column IN (string list)
  kInInt,      ///< column IN (int list)
  kBetween,    ///< int column BETWEEN lo AND hi
  kAnd,
  kOr,
  kNot,
  kIsNotNull,  ///< column non-empty / non-zero
};

/// One expression node. Trees are immutable after construction; Bind()
/// resolves column names to indexes for a given schema (stored per node).
class Expr {
 public:
  using Ptr = std::shared_ptr<Expr>;

  ExprKind kind;
  std::string column;        ///< lhs column name (leaf nodes)
  std::string column2;       ///< rhs column name (kCmpCol)
  CmpOp op = CmpOp::kEq;
  int64_t int_value = 0;     ///< rhs int (kCmpInt), lo (kBetween)
  int64_t int_value2 = 0;    ///< hi (kBetween)
  std::string str_value;     ///< rhs string / LIKE pattern
  std::vector<std::string> str_list;  ///< kInStr
  std::vector<int64_t> int_list;      ///< kInInt
  bool negated = false;      ///< NOT LIKE
  std::vector<Ptr> children; ///< kAnd / kOr / kNot

  // Bound state (set by Bind).
  int col_index = -1;
  int col_index2 = -1;

  /// Resolve column names against `schema`. Fails if a referenced column is
  /// missing.
  Status Bind(const Schema& schema);

  /// Deep copy of the tree. Bind() writes per-node state, so a tree shared
  /// between concurrently executing plans must be cloned per run.
  Ptr Clone() const;

  /// Evaluate against a bound row; charges comparison costs to ctx when set.
  bool Eval(const RowView& row, sim::AccessContext* ctx) const;

  /// Collect all referenced column names.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Human-readable rendering for plan explains.
  std::string ToString() const;

  // ---- constructors ----
  static Ptr CmpInt(std::string col, CmpOp op, int64_t v);
  static Ptr CmpStr(std::string col, CmpOp op, std::string v);
  static Ptr CmpCol(std::string col, CmpOp op, std::string col2);
  static Ptr Like(std::string col, std::string pattern, bool negated = false);
  static Ptr InStr(std::string col, std::vector<std::string> values);
  static Ptr InInt(std::string col, std::vector<int64_t> values);
  static Ptr Between(std::string col, int64_t lo, int64_t hi);
  static Ptr And(std::vector<Ptr> children);
  static Ptr Or(std::vector<Ptr> children);
  static Ptr Not(Ptr child);
  static Ptr IsNotNull(std::string col);

  /// Split a (possibly nested) AND tree into conjuncts.
  static void SplitConjuncts(const Ptr& expr, std::vector<Ptr>* out);
};

/// SQL LIKE with '%' (any run) and '_' (single char) against a value.
bool LikeMatch(const Slice& value, const Slice& pattern);

}  // namespace hybridndp::exec
