// Volcano-model physical operators (paper Sect. 4.2 uses the same model on
// device). Every operator charges its work to an AccessContext, so the same
// operator tree runs under host or device cost models depending on the
// context it was built with.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "exec/expr.h"
#include "exec/row_batch.h"
#include "lsm/db.h"
#include "rel/table.h"
#include "sim/cost.h"

namespace hybridndp::exec {

using rel::Schema;
using rel::TableAccessor;

/// Append the concatenated bytes of `cols` of `row` into *out (cleared
/// first). Reusing a caller-owned buffer keeps the per-row join probe path
/// free of heap allocations.
void KeyBytesInto(const Schema& schema, const std::vector<int>& cols,
                  const char* row, std::string* out);

/// Allocating convenience variant (cold paths, tests).
std::string KeyBytes(const Schema& schema, const std::vector<int>& cols,
                     const char* row);

/// Heterogeneous (transparent) string hashing so std::string-keyed hash
/// tables can be probed with a std::string_view over a reused buffer.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(Hash64(s.data(), s.size()));
  }
};

/// Join-side hash table: key bytes -> row index, string_view-probeable.
using RowIndexMap = std::unordered_multimap<std::string, size_t,
                                            TransparentStringHash,
                                            std::equal_to<>>;

/// Base volcano operator: Open / Next / Close, plus Rewind for join inners.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& output_schema() const = 0;
  virtual Status Open() = 0;
  /// Produce the next output row into *row (resized to the output schema's
  /// row size). Returns false when exhausted.
  virtual bool Next(std::string* row) = 0;
  virtual void Close() {}
  /// Restart the stream from the beginning (used by nested-loop inners;
  /// re-reads storage, which re-charges I/O unless a cache absorbs it).
  virtual Status Rewind() = 0;

  virtual std::string Describe() const = 0;

  /// Batch-at-a-time interface (DESIGN.md §10). Returns a batch of up to
  /// `max_rows` rows owned by this operator — valid until the next
  /// NextBatch/FillBatchViaNext call on it — or nullptr when the stream is
  /// exhausted. A non-null batch may carry zero active rows (e.g. a filter
  /// that rejected a whole input batch); callers loop.
  ///
  /// Contract for batch-native overrides: charge exactly the per-row costs
  /// the Next() path charges, and never pull a new child batch after rows
  /// have been placed in the output batch (return the partial batch
  /// instead). Together with the integer-picosecond clock this keeps batch
  /// execution metric-identical to row execution even across the
  /// cooperative layer's stall points.
  virtual RowBatch* NextBatch(size_t max_rows);

  /// Non-virtual adapter: fill a batch by looping this operator's Next().
  /// Used as the default NextBatch and by drains that need row-pull
  /// semantics regardless of overrides (the device executor's shared-slot
  /// drain, where batch-internal lookahead would shift work attribution
  /// across slot boundaries).
  RowBatch* FillBatchViaNext(size_t max_rows);

  /// Visit each direct child (observability traversal of a finished PQEP —
  /// e.g. per-operator rows-produced aggregates). Leaves visit nothing.
  virtual void ForEachChild(
      const std::function<void(const Operator&)>& fn) const {
    (void)fn;
  }

  uint64_t rows_produced() const { return rows_produced_; }

  /// Error recorded while producing rows. The bool/pointer Next/NextBatch
  /// signatures have no error channel, so an operator that hits a non-ok
  /// child/iterator Status ends its stream (returns false / nullptr) and
  /// parks the Status here. Drains must check TreeStatus() after exhaustion
  /// to distinguish end-of-stream from failure.
  const Status& status() const { return status_; }

 protected:
  uint64_t rows_produced_ = 0;
  Status status_;

 private:
  RowBatch adapter_batch_;   ///< storage for the default NextBatch
  std::string adapter_row_;  ///< reused row buffer for the adapter loop
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Rename a table schema's columns to "alias.column".
Schema AliasSchema(const Schema& schema, const std::string& alias);

/// Equi-join key pair (column names in the left/right schemas).
struct JoinKey {
  std::string left_col;
  std::string right_col;
};

/// Full scan of a table's primary column family with optional early
/// selection (predicate) and early projection (kept columns).
/// Output columns are named "alias.col".
class TableScanOp final : public Operator {
 public:
  /// `projection`: output column names (aliased); empty = all columns.
  TableScanOp(const TableAccessor* table, std::string alias, lsm::ReadOptions opts,
              Expr::Ptr predicate, std::vector<std::string> projection);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  /// Batch-native: decodes up to max_rows qualifying rows per call straight
  /// from the block iterator into the batch (no std::string per row).
  RowBatch* NextBatch(size_t max_rows) override;
  Status Rewind() override { return Open(); }
  std::string Describe() const override;

  uint64_t rows_scanned() const { return rows_scanned_; }

 private:
  const TableAccessor* table_;
  std::string alias_;
  lsm::ReadOptions opts_;
  Schema aliased_schema_;  ///< full table schema with aliased names
  Expr::Ptr predicate_;
  Schema out_schema_;
  std::vector<int> out_cols_;  ///< indexes into the table schema
  std::vector<std::string> projection_names_;
  lsm::IteratorPtr iter_;
  uint64_t rows_scanned_ = 0;
  RowBatch batch_;
};

/// Secondary-index range scan: walks the index column family for entries in
/// [lo, hi] on the indexed column, fetches each row from the primary CF by
/// the primary key stored in the index entry, then applies the residual
/// predicate and projection.
class IndexScanOp final : public Operator {
 public:
  IndexScanOp(const TableAccessor* table, std::string alias, size_t index_no,
              lsm::ReadOptions opts, int64_t lo, int64_t hi,
              Expr::Ptr residual, std::vector<std::string> projection);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  RowBatch* NextBatch(size_t max_rows) override;
  Status Rewind() override { return Open(); }
  std::string Describe() const override;

 private:
  const TableAccessor* table_;
  std::string alias_;
  size_t index_no_;
  lsm::ReadOptions opts_;
  int64_t lo_, hi_;
  Schema aliased_schema_;
  Expr::Ptr residual_;
  Schema out_schema_;
  std::vector<int> out_cols_;
  std::vector<std::string> projection_names_;
  lsm::IteratorPtr iter_;
  std::string end_key_;
  std::string base_row_buf_;  ///< reused primary-row fetch buffer
  RowBatch batch_;
};

/// Row source over a materialized vector (used to feed device-produced
/// intermediate results into the host PQEP — paper Fig. 7.D).
class VectorSourceOp final : public Operator {
 public:
  VectorSourceOp(Schema schema, const std::vector<std::string>* rows)
      : schema_(std::move(schema)), rows_(rows) {}

  const Schema& output_schema() const override { return schema_; }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  bool Next(std::string* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    ++rows_produced_;
    return true;
  }
  RowBatch* NextBatch(size_t max_rows) override {
    if (pos_ >= rows_->size()) return nullptr;
    batch_.Reset(&schema_, max_rows);
    while (!batch_.full() && pos_ < rows_->size()) {
      batch_.AppendCopy((*rows_)[pos_++].data());
      ++rows_produced_;
    }
    return &batch_;
  }
  Status Rewind() override { return Open(); }
  std::string Describe() const override { return "VectorSource"; }

 private:
  Schema schema_;
  const std::vector<std::string>* rows_;
  size_t pos_ = 0;
  RowBatch batch_;
};

/// Filter (selection on an arbitrary input).
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, Expr::Ptr predicate, sim::AccessContext* ctx);

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override;
  bool Next(std::string* row) override;
  /// Batch-native: narrows the child batch's selection vector in place —
  /// survivors are never copied. The returned batch is the child's.
  RowBatch* NextBatch(size_t max_rows) override;
  Status Rewind() override;
  std::string Describe() const override;
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*child_);
  }

 private:
  OperatorPtr child_;
  Expr::Ptr predicate_;
  sim::AccessContext* ctx_;
};

/// Projection by output column names.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<std::string> columns,
            sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  Status Rewind() override;
  std::string Describe() const override;
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*child_);
  }

  RowBatch* NextBatch(size_t max_rows) override;

 private:
  OperatorPtr child_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  std::vector<int> cols_;
  std::vector<std::string> projection_names_;
  std::string child_row_;
  RowBatch batch_;
};

/// Classic tuple-at-a-time nested loop join (paper: NLJ).
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr outer, OperatorPtr inner,
                   std::vector<JoinKey> keys, Expr::Ptr residual,
                   sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  Status Rewind() override;
  std::string Describe() const override { return "NLJ"; }
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*outer_);
    fn(*inner_);
  }

 private:
  Status BindKeys();

  OperatorPtr outer_, inner_;
  std::vector<JoinKey> keys_;
  Expr::Ptr residual_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  std::vector<std::pair<int, int>> key_cols_;  ///< (outer idx, inner idx)
  std::string outer_row_;
  std::string inner_row_;  ///< reused across Next() calls
  bool have_outer_ = false;
};

/// Block nested loop join: buffers a block of outer rows, builds a hash
/// table over it (paper Sect. 5: "BNL-join builds a hash table in the
/// buffer"), and streams the inner input once per block. The buffer size is
/// the on-device join buffer (hw_MSJ) or a host join buffer.
class BlockNLJoinOp final : public Operator {
 public:
  BlockNLJoinOp(OperatorPtr outer, OperatorPtr inner, std::vector<JoinKey> keys,
                Expr::Ptr residual, uint64_t buffer_bytes,
                sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  Status Rewind() override;
  std::string Describe() const override { return "BNLJ"; }
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*outer_);
    fn(*inner_);
  }

  /// Batch-native: fills the outer block with bounded batch pulls (exact
  /// byte threshold, same block composition as the row path), builds the
  /// hash table once per block, and probes whole inner batches — one
  /// KeyBytesInto + hash per inner row.
  RowBatch* NextBatch(size_t max_rows) override;

  uint64_t blocks_used() const { return blocks_; }

 private:
  Status LoadNextBlock();
  Status LoadNextBlockBatched();

  OperatorPtr outer_, inner_;
  std::vector<JoinKey> keys_;
  Expr::Ptr residual_;
  uint64_t buffer_bytes_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  std::vector<std::pair<int, int>> key_cols_;
  std::vector<int> outer_key_cols_, inner_key_cols_;  ///< resolved in Open()

  std::vector<std::string> block_;  ///< buffered outer rows
  RowIndexMap hash_;
  bool outer_exhausted_ = false;
  bool block_active_ = false;
  std::string inner_row_;
  std::string key_buf_;  ///< reused probe/build key buffer
  bool have_inner_ = false;
  std::pair<RowIndexMap::iterator, RowIndexMap::iterator> match_range_;
  uint64_t blocks_ = 0;
  RowBatch batch_;                       ///< output batch
  RowBatch* inner_batch_ = nullptr;      ///< child-owned probe batch
  size_t inner_pos_ = 0;                 ///< cursor into inner_batch_
  const char* inner_row_ptr_ = nullptr;  ///< current probe row (batch mode)
};

/// Indexed block nested loop join (paper: BNLJI): the inner side is a base
/// table looked up through its primary key or a secondary index on the join
/// column (on-device secondary-index processing, paper Fig. 9).
class BlockNLIndexJoinOp final : public Operator {
 public:
  /// `inner_join_col` is a column name in the *table* schema (unaliased).
  BlockNLIndexJoinOp(OperatorPtr outer, std::string outer_key_col,
                     const TableAccessor* inner_table, std::string inner_alias,
                     std::string inner_join_col, lsm::ReadOptions inner_opts,
                     Expr::Ptr inner_residual,
                     std::vector<std::string> inner_projection,
                     uint64_t buffer_bytes, sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  Status Rewind() override;
  std::string Describe() const override;
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*outer_);
  }

  RowBatch* NextBatch(size_t max_rows) override;

  uint64_t index_lookups() const { return lookups_; }

 private:
  Status LoadNextBlock();
  Status LoadNextBlockBatched();
  /// Collect matching inner rows for the current outer row into matches_.
  Status FetchMatches(const RowView& outer_row);

  OperatorPtr outer_;
  std::string outer_key_col_;
  const TableAccessor* inner_table_;
  std::string inner_alias_;
  int inner_join_col_ = -1;
  int inner_index_no_ = -1;  ///< -1 = primary key lookup
  lsm::ReadOptions inner_opts_;
  Schema inner_aliased_schema_;
  Expr::Ptr inner_residual_;
  Schema inner_out_schema_;
  std::vector<int> inner_out_cols_;
  uint64_t buffer_bytes_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  int outer_key_idx_ = -1;

  std::deque<std::string> block_;
  lsm::IteratorPtr index_iter_;  ///< reused across lookups
  bool outer_exhausted_ = false;
  std::vector<std::string> matches_;  ///< projected inner rows
  size_t match_pos_ = 0;
  std::string current_outer_;
  std::string pk_prefix_buf_;  ///< reused secondary-index seek key
  std::string base_row_buf_;   ///< reused primary-row fetch buffer
  bool have_outer_ = false;
  uint64_t lookups_ = 0;
  RowBatch batch_;
};

/// Grace hash join: both inputs are hash-partitioned to (simulated) storage,
/// then each partition pair is joined with an in-memory hash table.
class GraceHashJoinOp final : public Operator {
 public:
  GraceHashJoinOp(OperatorPtr left, OperatorPtr right,
                  std::vector<JoinKey> keys, Expr::Ptr residual,
                  int num_partitions, sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  Status Rewind() override;
  std::string Describe() const override { return "GHJ"; }
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*left_);
    fn(*right_);
  }

  RowBatch* NextBatch(size_t max_rows) override;

 private:
  Status Partition();
  Status PartitionBatched(size_t max_rows);
  Status StartPartition(size_t p);

  OperatorPtr left_, right_;
  std::vector<JoinKey> keys_;
  Expr::Ptr residual_;
  int num_partitions_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  std::vector<std::pair<int, int>> key_cols_;
  std::vector<int> left_key_cols_, right_key_cols_;  ///< resolved in Open()

  std::vector<std::vector<std::string>> left_parts_, right_parts_;
  size_t part_ = 0;
  RowIndexMap hash_;
  std::string key_buf_;  ///< reused partition/build/probe key buffer
  size_t probe_pos_ = 0;
  std::pair<RowIndexMap::iterator, RowIndexMap::iterator> match_range_;
  bool in_match_ = false;
  bool partitioned_ = false;
  RowBatch batch_;
};

/// Aggregate functions over one column.
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;  ///< ignored for COUNT(*)
  std::string output_name;
};

/// Hash GROUP BY + aggregation; with no group columns, a single global
/// aggregate row is produced.
class GroupByAggOp final : public Operator {
 public:
  GroupByAggOp(OperatorPtr child, std::vector<std::string> group_cols,
               std::vector<AggSpec> aggs, sim::AccessContext* ctx);

  const Schema& output_schema() const override { return out_schema_; }
  Status Open() override;
  bool Next(std::string* row) override;
  RowBatch* NextBatch(size_t max_rows) override;
  Status Rewind() override;
  std::string Describe() const override { return "GroupByAgg"; }
  void ForEachChild(
      const std::function<void(const Operator&)>& fn) const override {
    fn(*child_);
  }

 private:
  struct AggState {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min_int = 0;
    int64_t max_int = 0;
    std::string min_str, max_str;
    bool seen = false;
  };

  Status Consume();
  Status ConsumeBatched(size_t max_rows);
  /// Shared per-row aggregation step (row and batch consume paths). Charges
  /// per-row costs against `ctx` when non-null (the batch path passes null
  /// and bulk-charges per batch); returns whether a new group was inserted.
  bool UpdateGroups(const RowView& view, const char* row_data,
                    sim::AccessContext* ctx);
  /// Render the group at emit_it_ into a zeroed row buffer of
  /// out_schema_.row_size() bytes (shared by Next and NextBatch).
  void EmitGroupInto(char* dst) const;

  OperatorPtr child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  sim::AccessContext* ctx_;
  Schema out_schema_;
  std::vector<int> group_idx_;
  std::vector<int> agg_idx_;
  std::string key_buf_;  ///< reused group-key buffer
  std::map<std::string, std::vector<AggState>> groups_;
  std::map<std::string, std::vector<AggState>>::iterator emit_it_;
  bool consumed_ = false;
  RowBatch batch_;
};

/// First non-ok status() in a preorder walk of the operator tree (OK when
/// every operator is clean). Errors swallowed by the bool Next contract are
/// recovered here.
Status TreeStatus(const Operator& root);

/// Drain an operator to completion, collecting rows.
Result<std::vector<std::string>> CollectAll(Operator* op);

/// Drain an operator to completion through the batch interface,
/// `batch_rows` rows per pull. Produces the same rows in the same order as
/// CollectAll and — by the NextBatch contract — the same simulated metrics.
Result<std::vector<std::string>> CollectAllBatched(Operator* op,
                                                   size_t batch_rows);

}  // namespace hybridndp::exec
