#include "exec/expr.h"

#include <sstream>

namespace hybridndp::exec {

namespace {
bool CompareOrdered(int r, CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return r == 0;
    case CmpOp::kNe:
      return r != 0;
    case CmpOp::kLt:
      return r < 0;
    case CmpOp::kLe:
      return r <= 0;
    case CmpOp::kGt:
      return r > 0;
    case CmpOp::kGe:
      return r >= 0;
  }
  return false;
}

const char* OpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}
}  // namespace

bool LikeMatch(const Slice& value, const Slice& pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Status Expr::Bind(const Schema& schema) {
  for (auto& child : children) {
    HNDP_RETURN_IF_ERROR(child->Bind(schema));
  }
  if (!column.empty()) {
    col_index = schema.Find(column);
    if (col_index < 0) {
      return Status::InvalidArgument("unknown column: " + column);
    }
  }
  if (!column2.empty()) {
    col_index2 = schema.Find(column2);
    if (col_index2 < 0) {
      return Status::InvalidArgument("unknown column: " + column2);
    }
  }
  return Status::OK();
}

Expr::Ptr Expr::Clone() const {
  auto copy = std::make_shared<Expr>(*this);
  for (auto& child : copy->children) child = child->Clone();
  return copy;
}

bool Expr::Eval(const RowView& row, sim::AccessContext* ctx) const {
  switch (kind) {
    case ExprKind::kCmpInt: {
      if (ctx != nullptr) ctx->Charge(sim::CostKind::kMemcmp, 4);
      const int32_t v = row.GetInt(col_index);
      const int r = v < int_value ? -1 : (v > int_value ? 1 : 0);
      return CompareOrdered(r, op);
    }
    case ExprKind::kCmpStr: {
      const Slice v = row.GetString(col_index);
      if (ctx != nullptr) {
        ctx->Charge(sim::CostKind::kMemcmp,
                    std::min(v.size(), str_value.size()) + 1);
      }
      return CompareOrdered(v.compare(Slice(str_value)), op);
    }
    case ExprKind::kCmpCol: {
      const auto& col_a = row.schema().column(col_index);
      if (col_a.type == rel::ColType::kInt32) {
        if (ctx != nullptr) ctx->Charge(sim::CostKind::kMemcmp, 4);
        const int32_t a = row.GetInt(col_index);
        const int32_t b = row.GetInt(col_index2);
        const int r = a < b ? -1 : (a > b ? 1 : 0);
        return CompareOrdered(r, op);
      }
      const Slice a = row.GetString(col_index);
      const Slice b = row.GetString(col_index2);
      if (ctx != nullptr) {
        ctx->Charge(sim::CostKind::kMemcmp, std::min(a.size(), b.size()) + 1);
      }
      return CompareOrdered(a.compare(b), op);
    }
    case ExprKind::kLike: {
      const Slice v = row.GetString(col_index);
      if (ctx != nullptr) {
        // LIKE scans the value, possibly with backtracking; charge linear.
        ctx->Charge(sim::CostKind::kMemcmp, v.size() + str_value.size());
      }
      const bool m = LikeMatch(v, Slice(str_value));
      return negated ? !m : m;
    }
    case ExprKind::kInStr: {
      const Slice v = row.GetString(col_index);
      for (const auto& candidate : str_list) {
        if (ctx != nullptr) {
          ctx->Charge(sim::CostKind::kMemcmp,
                      std::min(v.size(), candidate.size()) + 1);
        }
        if (v == Slice(candidate)) return true;
      }
      return false;
    }
    case ExprKind::kInInt: {
      const int32_t v = row.GetInt(col_index);
      if (ctx != nullptr) {
        ctx->Charge(sim::CostKind::kMemcmp, 4 * int_list.size());
      }
      for (int64_t candidate : int_list) {
        if (v == candidate) return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      if (ctx != nullptr) ctx->Charge(sim::CostKind::kMemcmp, 8);
      const int32_t v = row.GetInt(col_index);
      return v >= int_value && v <= int_value2;
    }
    case ExprKind::kAnd:
      for (const auto& child : children) {
        if (!child->Eval(row, ctx)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const auto& child : children) {
        if (child->Eval(row, ctx)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !children[0]->Eval(row, ctx);
    case ExprKind::kIsNotNull: {
      if (ctx != nullptr) ctx->Charge(sim::CostKind::kMemcmp, 4);
      if (row.schema().column(col_index).type == rel::ColType::kInt32) {
        return row.GetInt(col_index) != 0;
      }
      return !row.GetString(col_index).empty();
    }
  }
  return false;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (!column.empty()) out->push_back(column);
  if (!column2.empty()) out->push_back(column2);
  for (const auto& child : children) child->CollectColumns(out);
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kCmpInt:
      os << column << " " << OpName(op) << " " << int_value;
      break;
    case ExprKind::kCmpStr:
      os << column << " " << OpName(op) << " '" << str_value << "'";
      break;
    case ExprKind::kCmpCol:
      os << column << " " << OpName(op) << " " << column2;
      break;
    case ExprKind::kLike:
      os << column << (negated ? " NOT LIKE '" : " LIKE '") << str_value
         << "'";
      break;
    case ExprKind::kInStr: {
      os << column << " IN (";
      for (size_t i = 0; i < str_list.size(); ++i) {
        os << (i ? ", '" : "'") << str_list[i] << "'";
      }
      os << ")";
      break;
    }
    case ExprKind::kInInt: {
      os << column << " IN (";
      for (size_t i = 0; i < int_list.size(); ++i) {
        os << (i ? ", " : "") << int_list[i];
      }
      os << ")";
      break;
    }
    case ExprKind::kBetween:
      os << column << " BETWEEN " << int_value << " AND " << int_value2;
      break;
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = kind == ExprKind::kAnd ? " AND " : " OR ";
      os << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        os << (i ? sep : "") << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kNot:
      os << "NOT (" << children[0]->ToString() << ")";
      break;
    case ExprKind::kIsNotNull:
      os << column << " IS NOT NULL";
      break;
  }
  return os.str();
}

Expr::Ptr Expr::CmpInt(std::string col, CmpOp op, int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmpInt;
  e->column = std::move(col);
  e->op = op;
  e->int_value = v;
  return e;
}

Expr::Ptr Expr::CmpStr(std::string col, CmpOp op, std::string v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmpStr;
  e->column = std::move(col);
  e->op = op;
  e->str_value = std::move(v);
  return e;
}

Expr::Ptr Expr::CmpCol(std::string col, CmpOp op, std::string col2) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmpCol;
  e->column = std::move(col);
  e->op = op;
  e->column2 = std::move(col2);
  return e;
}

Expr::Ptr Expr::Like(std::string col, std::string pattern, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLike;
  e->column = std::move(col);
  e->str_value = std::move(pattern);
  e->negated = negated;
  return e;
}

Expr::Ptr Expr::InStr(std::string col, std::vector<std::string> values) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInStr;
  e->column = std::move(col);
  e->str_list = std::move(values);
  return e;
}

Expr::Ptr Expr::InInt(std::string col, std::vector<int64_t> values) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInInt;
  e->column = std::move(col);
  e->int_list = std::move(values);
  return e;
}

Expr::Ptr Expr::Between(std::string col, int64_t lo, int64_t hi) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->column = std::move(col);
  e->int_value = lo;
  e->int_value2 = hi;
  return e;
}

Expr::Ptr Expr::And(std::vector<Ptr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

Expr::Ptr Expr::Or(std::vector<Ptr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

Expr::Ptr Expr::Not(Ptr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

Expr::Ptr Expr::IsNotNull(std::string col) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNotNull;
  e->column = std::move(col);
  return e;
}

void Expr::SplitConjuncts(const Ptr& expr, std::vector<Ptr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kAnd) {
    for (const auto& child : expr->children) SplitConjuncts(child, out);
  } else {
    out->push_back(expr);
  }
}

}  // namespace hybridndp::exec
