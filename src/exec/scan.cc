#include <algorithm>

#include "exec/operator.h"

namespace hybridndp::exec {

Schema AliasSchema(const Schema& schema, const std::string& alias) {
  std::vector<rel::Column> cols;
  cols.reserve(schema.num_columns());
  for (const auto& c : schema.columns()) {
    rel::Column renamed = c;
    renamed.name = alias.empty() ? c.name : alias + "." + c.name;
    cols.push_back(std::move(renamed));
  }
  return Schema(std::move(cols));
}

namespace {

/// Resolve projection names to column indexes; empty projection = all.
Status ResolveProjection(const Schema& schema,
                         const std::vector<std::string>& projection,
                         std::vector<int>* out_cols, Schema* out_schema) {
  out_cols->clear();
  if (projection.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      out_cols->push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& name : projection) {
      const int idx = schema.Find(name);
      if (idx < 0) {
        return Status::InvalidArgument("projection column not found: " + name);
      }
      out_cols->push_back(idx);
    }
  }
  *out_schema = schema.Project(*out_cols);
  return Status::OK();
}

/// Copy projected fields of `row` (in `schema`) into a pre-sized buffer.
void ProjectRowInto(const Schema& schema, const std::vector<int>& cols,
                    const Schema& out_schema, const char* row, char* dst,
                    sim::AccessContext* ctx) {
  for (size_t i = 0; i < cols.size(); ++i) {
    const auto& col = schema.column(cols[i]);
    memcpy(dst + out_schema.offset(i), row + schema.offset(cols[i]), col.size);
  }
  if (ctx != nullptr) ctx->ChargeCopy(out_schema.row_size());
}

/// Copy projected fields of `row` (in `schema`) into *out.
void ProjectRow(const Schema& schema, const std::vector<int>& cols,
                const Schema& out_schema, const char* row, std::string* out,
                sim::AccessContext* ctx) {
  if (out->size() != out_schema.row_size()) out->resize(out_schema.row_size());
  ProjectRowInto(schema, cols, out_schema, row, out->data(), ctx);
}

}  // namespace

// ---------------------------------------------------------------- TableScan

TableScanOp::TableScanOp(const TableAccessor* table, std::string alias,
                         lsm::ReadOptions opts, Expr::Ptr predicate,
                         std::vector<std::string> projection)
    : table_(table),
      alias_(std::move(alias)),
      opts_(opts),
      predicate_(std::move(predicate)) {
  aliased_schema_ = AliasSchema(table_->schema(), alias_);
  // Projection resolution cannot fail silently later: defer error to Open().
  Status s = ResolveProjection(aliased_schema_, projection, &out_cols_,
                               &out_schema_);
  (void)s;  // re-checked in Open()
  projection_names_ = projection;
}

Status TableScanOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(ResolveProjection(aliased_schema_, projection_names_,
                                         &out_cols_, &out_schema_));
  if (predicate_ != nullptr) {
    HNDP_RETURN_IF_ERROR(predicate_->Bind(aliased_schema_));
  }
  iter_ = table_->NewScanIterator(opts_);
  iter_->SeekToFirst();
  return Status::OK();
}

bool TableScanOp::Next(std::string* row) {
  while (iter_ != nullptr && iter_->Valid()) {
    const Slice value = iter_->value();
    const RowView view(value.data(), &aliased_schema_);
    ++rows_scanned_;
    if (opts_.ctx != nullptr) {
      opts_.ctx->Charge(sim::CostKind::kSelectionProcessing, 1);
    }
    const bool pass =
        predicate_ == nullptr || predicate_->Eval(view, opts_.ctx);
    if (pass) {
      ProjectRow(aliased_schema_, out_cols_, out_schema_, value.data(), row,
                 opts_.ctx);
      iter_->Next();
      ++rows_produced_;
      return true;
    }
    iter_->Next();
  }
  // Exhausted or failed: an iterator error (e.g. an injected device-side
  // read fault) also leaves Valid() false, so park the status for drains.
  if (iter_ != nullptr && status_.ok()) status_ = iter_->status();
  return false;
}

RowBatch* TableScanOp::NextBatch(size_t max_rows) {
  batch_.Reset(&out_schema_, max_rows);
  // Per-row selection and copy charges are identical for every row, so the
  // batch pays them once per batch via ChargeRepeated (bit-identical: only
  // additive charges interleave inside the loop, and sums of quantized
  // charges are order-independent).
  uint64_t scanned = 0;
  while (!batch_.full() && iter_ != nullptr && iter_->Valid()) {
    const Slice value = iter_->value();
    const RowView view(value.data(), &aliased_schema_);
    ++scanned;
    const bool pass =
        predicate_ == nullptr || predicate_->Eval(view, opts_.ctx);
    if (pass) {
      ProjectRowInto(aliased_schema_, out_cols_, out_schema_, value.data(),
                     batch_.AppendRow(), nullptr);
      ++rows_produced_;
    }
    iter_->Next();
  }
  rows_scanned_ += scanned;
  if (opts_.ctx != nullptr) {
    opts_.ctx->ChargeRepeated(sim::CostKind::kSelectionProcessing, 1, scanned);
    opts_.ctx->ChargeCopyRepeated(out_schema_.row_size(), batch_.num_active());
  }
  if (iter_ != nullptr && !batch_.full() && status_.ok()) {
    status_ = iter_->status();
  }
  return batch_.num_active() > 0 ? &batch_ : nullptr;
}

std::string TableScanOp::Describe() const {
  std::string s = "TableScan(" + table_->name();
  if (!alias_.empty()) s += " AS " + alias_;
  if (predicate_ != nullptr) s += ", " + predicate_->ToString();
  s += ")";
  return s;
}

// ---------------------------------------------------------------- IndexScan

IndexScanOp::IndexScanOp(const TableAccessor* table, std::string alias,
                         size_t index_no, lsm::ReadOptions opts, int64_t lo,
                         int64_t hi, Expr::Ptr residual,
                         std::vector<std::string> projection)
    : table_(table),
      alias_(std::move(alias)),
      index_no_(index_no),
      opts_(opts),
      lo_(lo),
      hi_(hi),
      residual_(std::move(residual)),
      projection_names_(std::move(projection)) {
  aliased_schema_ = AliasSchema(table_->schema(), alias_);
}

Status IndexScanOp::Open() {
  status_ = Status::OK();
  const int col = table_->def().indexes[index_no_].col;
  if (table_->schema().column(col).type != rel::ColType::kInt32) {
    return Status::NotSupported("index range scan requires int column");
  }
  HNDP_RETURN_IF_ERROR(ResolveProjection(aliased_schema_, projection_names_,
                                         &out_cols_, &out_schema_));
  if (residual_ != nullptr) {
    HNDP_RETURN_IF_ERROR(residual_->Bind(aliased_schema_));
  }
  iter_ = table_->NewIndexIterator(opts_, index_no_);
  std::string start;
  PutOrderedInt32(&start, static_cast<int32_t>(lo_));
  iter_->Seek(Slice(start));
  end_key_.clear();
  PutOrderedInt32(&end_key_, static_cast<int32_t>(hi_));
  return Status::OK();
}

bool IndexScanOp::Next(std::string* row) {
  while (iter_ != nullptr && iter_->Valid()) {
    const Slice ikey = iter_->key();
    if (ikey.size() < 8) {
      iter_->Next();
      continue;
    }
    // key = ordered secondary value (4B) | ordered primary key (4B).
    if (memcmp(ikey.data(), end_key_.data(), 4) > 0) break;  // past range
    const int32_t pk = GetOrderedInt32(ikey.data() + ikey.size() - 4);
    iter_->Next();

    Status s = table_->GetByPk(opts_, pk, &base_row_buf_);
    if (s.IsNotFound()) continue;  // dangling index entry
    if (!s.ok()) {
      status_ = std::move(s);  // real failure, not a stale entry: stop
      return false;
    }
    const RowView view(base_row_buf_.data(), &aliased_schema_);
    if (opts_.ctx != nullptr) {
      opts_.ctx->Charge(sim::CostKind::kSelectionProcessing, 1);
    }
    if (residual_ != nullptr && !residual_->Eval(view, opts_.ctx)) continue;
    ProjectRow(aliased_schema_, out_cols_, out_schema_, base_row_buf_.data(),
               row, opts_.ctx);
    ++rows_produced_;
    return true;
  }
  if (iter_ != nullptr && status_.ok()) status_ = iter_->status();
  return false;
}

RowBatch* IndexScanOp::NextBatch(size_t max_rows) {
  batch_.Reset(&out_schema_, max_rows);
  // Uniform per-row charges amortized over the batch (see TableScanOp).
  uint64_t fetched = 0;
  while (!batch_.full() && iter_ != nullptr && iter_->Valid()) {
    const Slice ikey = iter_->key();
    if (ikey.size() < 8) {
      iter_->Next();
      continue;
    }
    if (memcmp(ikey.data(), end_key_.data(), 4) > 0) break;  // past range
    const int32_t pk = GetOrderedInt32(ikey.data() + ikey.size() - 4);
    iter_->Next();

    Status s = table_->GetByPk(opts_, pk, &base_row_buf_);
    if (s.IsNotFound()) continue;  // dangling index entry
    if (!s.ok()) {
      status_ = std::move(s);
      break;  // deliver rows already placed, then end the stream
    }
    const RowView view(base_row_buf_.data(), &aliased_schema_);
    ++fetched;
    if (residual_ != nullptr && !residual_->Eval(view, opts_.ctx)) continue;
    ProjectRowInto(aliased_schema_, out_cols_, out_schema_,
                   base_row_buf_.data(), batch_.AppendRow(), nullptr);
    ++rows_produced_;
  }
  if (opts_.ctx != nullptr) {
    opts_.ctx->ChargeRepeated(sim::CostKind::kSelectionProcessing, 1, fetched);
    opts_.ctx->ChargeCopyRepeated(out_schema_.row_size(), batch_.num_active());
  }
  if (iter_ != nullptr && !batch_.full() && status_.ok()) {
    status_ = iter_->status();
  }
  return batch_.num_active() > 0 ? &batch_ : nullptr;
}

std::string IndexScanOp::Describe() const {
  return "IndexScan(" + table_->name() + "." +
         table_->def().indexes[index_no_].name + " in [" +
         std::to_string(lo_) + "," + std::to_string(hi_) + "])";
}

// ---------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, Expr::Ptr predicate,
                   sim::AccessContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {}

Status FilterOp::Open() {
  HNDP_RETURN_IF_ERROR(child_->Open());
  return predicate_->Bind(child_->output_schema());
}

bool FilterOp::Next(std::string* row) {
  while (child_->Next(row)) {
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kRecordEval, 1);
    const RowView view(row->data(), &child_->output_schema());
    if (predicate_->Eval(view, ctx_)) {
      ++rows_produced_;
      return true;
    }
  }
  return false;
}

RowBatch* FilterOp::NextBatch(size_t max_rows) {
  RowBatch* b = child_->NextBatch(max_rows);
  if (b == nullptr) return nullptr;
  const Schema& schema = child_->output_schema();
  uint32_t* sel = b->mutable_sel();
  size_t n_out = 0;
  const size_t n_in = b->num_active();
  // One eval charge per input row, identical each time: pay once per batch.
  if (ctx_ != nullptr) ctx_->ChargeRepeated(sim::CostKind::kRecordEval, 1, n_in);
  for (size_t k = 0; k < n_in; ++k) {
    const uint32_t idx = sel[k];
    const RowView view(b->row(idx), &schema);
    if (predicate_->Eval(view, ctx_)) {
      sel[n_out++] = idx;
      ++rows_produced_;
    }
  }
  b->SetNumActive(n_out);
  return b;  // possibly zero active rows; callers loop
}

Status FilterOp::Rewind() { return child_->Rewind(); }

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ---------------------------------------------------------------- Project

ProjectOp::ProjectOp(OperatorPtr child, std::vector<std::string> columns,
                     sim::AccessContext* ctx)
    : child_(std::move(child)), ctx_(ctx), projection_names_(std::move(columns)) {}

Status ProjectOp::Open() {
  HNDP_RETURN_IF_ERROR(child_->Open());
  return ResolveProjection(child_->output_schema(), projection_names_, &cols_,
                           &out_schema_);
}

bool ProjectOp::Next(std::string* row) {
  if (!child_->Next(&child_row_)) return false;
  ProjectRow(child_->output_schema(), cols_, out_schema_, child_row_.data(),
             row, ctx_);
  ++rows_produced_;
  return true;
}

RowBatch* ProjectOp::NextBatch(size_t max_rows) {
  RowBatch* b = child_->NextBatch(max_rows);
  if (b == nullptr) return nullptr;
  batch_.Reset(&out_schema_, max_rows);
  const Schema& in_schema = child_->output_schema();
  const size_t n = b->num_active();
  for (size_t k = 0; k < n; ++k) {
    ProjectRowInto(in_schema, cols_, out_schema_, b->active_row(k),
                   batch_.AppendRow(), nullptr);
    ++rows_produced_;
  }
  // n identical projection copies, charged in one step.
  if (ctx_ != nullptr) ctx_->ChargeCopyRepeated(out_schema_.row_size(), n);
  return &batch_;  // 1:1 with the child batch; no refill (stall alignment)
}

Status ProjectOp::Rewind() { return child_->Rewind(); }

std::string ProjectOp::Describe() const {
  return "Project(" + std::to_string(cols_.size()) + " cols)";
}

Result<std::vector<std::string>> CollectAll(Operator* op) {
  HNDP_RETURN_IF_ERROR(op->Open());
  std::vector<std::string> rows;
  std::string row;
  while (op->Next(&row)) rows.push_back(row);
  op->Close();
  // Next() returning false means end-of-stream OR failure; disambiguate.
  HNDP_RETURN_IF_ERROR(TreeStatus(*op));
  return rows;
}

}  // namespace hybridndp::exec
