#include <cassert>

#include "common/hash.h"
#include "exec/operator.h"

namespace hybridndp::exec {

namespace {

/// Resolve equi-join key columns against the two input schemas.
Status ResolveKeys(const std::vector<JoinKey>& keys, const Schema& left,
                   const Schema& right,
                   std::vector<std::pair<int, int>>* out) {
  out->clear();
  for (const auto& key : keys) {
    const int l = left.Find(key.left_col);
    const int r = right.Find(key.right_col);
    if (l < 0) {
      return Status::InvalidArgument("join key not in left: " + key.left_col);
    }
    if (r < 0) {
      return Status::InvalidArgument("join key not in right: " +
                                     key.right_col);
    }
    if (left.column(l).size != right.column(r).size) {
      return Status::InvalidArgument("join key width mismatch: " +
                                     key.left_col + " vs " + key.right_col);
    }
    out->push_back({l, r});
  }
  return Status::OK();
}

/// Concatenate two rows into the combined schema layout.
void ConcatRows(const Schema& left, const Schema& right, const char* lrow,
                const char* rrow, std::string* out, sim::AccessContext* ctx) {
  const size_t total = left.row_size() + right.row_size();
  if (out->size() != total) out->resize(total);
  memcpy(out->data(), lrow, left.row_size());
  memcpy(out->data() + left.row_size(), rrow, right.row_size());
  if (ctx != nullptr) ctx->ChargeCopy(total);
}

/// ConcatRows into a pre-sized batch slot (same charge).
void ConcatRowsInto(const Schema& left, const Schema& right, const char* lrow,
                    const char* rrow, char* dst, sim::AccessContext* ctx) {
  memcpy(dst, lrow, left.row_size());
  memcpy(dst + left.row_size(), rrow, right.row_size());
  if (ctx != nullptr) ctx->ChargeCopy(left.row_size() + right.row_size());
}

std::vector<int> LeftCols(const std::vector<std::pair<int, int>>& kc) {
  std::vector<int> out;
  for (const auto& [l, r] : kc) out.push_back(l);
  return out;
}
std::vector<int> RightCols(const std::vector<std::pair<int, int>>& kc) {
  std::vector<int> out;
  for (const auto& [l, r] : kc) out.push_back(r);
  return out;
}

}  // namespace

void KeyBytesInto(const Schema& schema, const std::vector<int>& cols,
                  const char* row, std::string* out) {
  out->clear();
  for (int c : cols) {
    out->append(row + schema.offset(c), schema.column(c).size);
  }
}

std::string KeyBytes(const Schema& schema, const std::vector<int>& cols,
                     const char* row) {
  std::string key;
  KeyBytesInto(schema, cols, row, &key);
  return key;
}

// ----------------------------------------------------------- NestedLoopJoin

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr outer, OperatorPtr inner,
                                   std::vector<JoinKey> keys,
                                   Expr::Ptr residual, sim::AccessContext* ctx)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      ctx_(ctx) {}

Status NestedLoopJoinOp::BindKeys() {
  HNDP_RETURN_IF_ERROR(ResolveKeys(keys_, outer_->output_schema(),
                                   inner_->output_schema(), &key_cols_));
  out_schema_ =
      Schema::Concat(outer_->output_schema(), inner_->output_schema());
  if (residual_ != nullptr) {
    HNDP_RETURN_IF_ERROR(residual_->Bind(out_schema_));
  }
  return Status::OK();
}

Status NestedLoopJoinOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(outer_->Open());
  HNDP_RETURN_IF_ERROR(inner_->Open());
  HNDP_RETURN_IF_ERROR(BindKeys());
  have_outer_ = false;
  return Status::OK();
}

Status NestedLoopJoinOp::Rewind() { return Open(); }

bool NestedLoopJoinOp::Next(std::string* row) {
  const Schema& lschema = outer_->output_schema();
  const Schema& rschema = inner_->output_schema();
  while (true) {
    if (!have_outer_) {
      if (!outer_->Next(&outer_row_)) return false;
      have_outer_ = true;
      Status s = inner_->Rewind();
      if (!s.ok()) {
        status_ = std::move(s);
        return false;
      }
    }
    while (inner_->Next(&inner_row_)) {
      // Compare all key columns byte-wise.
      bool match = true;
      for (const auto& [l, r] : key_cols_) {
        const uint32_t width = lschema.column(l).size;
        if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kMemcmp, width);
        if (memcmp(outer_row_.data() + lschema.offset(l),
                   inner_row_.data() + rschema.offset(r), width) != 0) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      ConcatRows(lschema, rschema, outer_row_.data(), inner_row_.data(), row,
                 ctx_);
      if (residual_ != nullptr &&
          !residual_->Eval(RowView(row->data(), &out_schema_), ctx_)) {
        continue;
      }
      ++rows_produced_;
      return true;
    }
    have_outer_ = false;  // advance outer
  }
}

// --------------------------------------------------------------- BlockNLJoin

BlockNLJoinOp::BlockNLJoinOp(OperatorPtr outer, OperatorPtr inner,
                             std::vector<JoinKey> keys, Expr::Ptr residual,
                             uint64_t buffer_bytes, sim::AccessContext* ctx)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      buffer_bytes_(buffer_bytes),
      ctx_(ctx) {}

Status BlockNLJoinOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(outer_->Open());
  HNDP_RETURN_IF_ERROR(inner_->Open());
  HNDP_RETURN_IF_ERROR(ResolveKeys(keys_, outer_->output_schema(),
                                   inner_->output_schema(), &key_cols_));
  outer_key_cols_ = LeftCols(key_cols_);
  inner_key_cols_ = RightCols(key_cols_);
  out_schema_ =
      Schema::Concat(outer_->output_schema(), inner_->output_schema());
  if (residual_ != nullptr) {
    HNDP_RETURN_IF_ERROR(residual_->Bind(out_schema_));
  }
  outer_exhausted_ = false;
  block_active_ = false;
  have_inner_ = false;
  block_.clear();
  hash_.clear();
  blocks_ = 0;
  inner_batch_ = nullptr;
  inner_pos_ = 0;
  inner_row_ptr_ = nullptr;
  return Status::OK();
}

Status BlockNLJoinOp::Rewind() { return Open(); }

Status BlockNLJoinOp::LoadNextBlock() {
  block_.clear();
  hash_.clear();
  uint64_t bytes = 0;
  std::string row;
  while (bytes < buffer_bytes_ && outer_->Next(&row)) {
    bytes += row.size();
    block_.push_back(std::move(row));
  }
  if (block_.empty()) {
    outer_exhausted_ = true;
    block_active_ = false;
    return Status::OK();
  }
  // Build the hash table over the buffered block.
  for (size_t i = 0; i < block_.size(); ++i) {
    KeyBytesInto(outer_->output_schema(), outer_key_cols_, block_[i].data(),
                 &key_buf_);
    hash_.emplace(key_buf_, i);
    if (ctx_ != nullptr) {
      ctx_->Charge(sim::CostKind::kHashBuild, 1);
      ctx_->ChargeCopy(block_[i].size());
    }
  }
  ++blocks_;
  block_active_ = true;
  have_inner_ = false;
  // Fresh pass over the inner input for this block.
  return inner_->Rewind();
}

Status BlockNLJoinOp::LoadNextBlockBatched() {
  block_.clear();
  hash_.clear();
  uint64_t bytes = 0;
  const size_t rs = outer_->output_schema().row_size();
  // Bounded pulls keep the block composition byte-identical to the row
  // path: request exactly the rows still needed to reach the threshold.
  while (bytes < buffer_bytes_) {
    const uint64_t need =
        rs > 0 ? (buffer_bytes_ - bytes + rs - 1) / rs : uint64_t{1};
    const size_t req =
        static_cast<size_t>(need < uint64_t{4096} ? need : uint64_t{4096});
    RowBatch* ob = outer_->NextBatch(req);
    if (ob == nullptr) break;
    for (size_t k = 0; k < ob->num_active(); ++k) {
      block_.emplace_back(ob->active_row(k), rs);
      bytes += rs;
    }
  }
  if (block_.empty()) {
    outer_exhausted_ = true;
    block_active_ = false;
    return Status::OK();
  }
  for (size_t i = 0; i < block_.size(); ++i) {
    KeyBytesInto(outer_->output_schema(), outer_key_cols_, block_[i].data(),
                 &key_buf_);
    hash_.emplace(key_buf_, i);
  }
  // Identical build-insert and copy charges for every buffered row: pay
  // them once per block instead of once per row.
  if (ctx_ != nullptr) {
    ctx_->ChargeRepeated(sim::CostKind::kHashBuild, 1, block_.size());
    ctx_->ChargeCopyRepeated(rs, block_.size());
  }
  ++blocks_;
  block_active_ = true;
  have_inner_ = false;
  inner_batch_ = nullptr;
  inner_pos_ = 0;
  return inner_->Rewind();
}

RowBatch* BlockNLJoinOp::NextBatch(size_t max_rows) {
  const Schema& lschema = outer_->output_schema();
  const Schema& rschema = inner_->output_schema();
  batch_.Reset(&out_schema_, max_rows);
  while (true) {
    if (!block_active_) {
      if (batch_.num_active() > 0) return &batch_;
      if (outer_exhausted_) return nullptr;
      Status s = LoadNextBlockBatched();
      if (!s.ok()) {
        status_ = std::move(s);
        return nullptr;
      }
      continue;
    }
    // Emit remaining matches of the current inner row.
    while (have_inner_ && match_range_.first != match_range_.second) {
      if (batch_.full()) return &batch_;
      const size_t idx = match_range_.first->second;
      ++match_range_.first;
      char* dst = batch_.PeekRow();
      ConcatRowsInto(lschema, rschema, block_[idx].data(), inner_row_ptr_,
                     dst, ctx_);
      if (residual_ != nullptr &&
          !residual_->Eval(RowView(dst, &out_schema_), ctx_)) {
        continue;
      }
      batch_.CommitRow();
      ++rows_produced_;
    }
    if (batch_.full()) return &batch_;
    // Advance the probe cursor within the current inner batch.
    if (inner_batch_ != nullptr && inner_pos_ < inner_batch_->num_active()) {
      inner_row_ptr_ = inner_batch_->active_row(inner_pos_++);
      have_inner_ = true;
      if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
      KeyBytesInto(rschema, inner_key_cols_, inner_row_ptr_, &key_buf_);
      match_range_ = hash_.equal_range(std::string_view(key_buf_));
      continue;
    }
    // Need a fresh probe batch. Return a partial output batch first so no
    // child pull happens after rows were emitted (stall alignment).
    if (batch_.num_active() > 0) return &batch_;
    have_inner_ = false;
    inner_batch_ = inner_->NextBatch(max_rows);
    inner_pos_ = 0;
    if (inner_batch_ == nullptr) {
      // Inner exhausted for this block: move to the next outer block.
      block_active_ = false;
    }
  }
}

bool BlockNLJoinOp::Next(std::string* row) {
  const Schema& lschema = outer_->output_schema();
  const Schema& rschema = inner_->output_schema();
  while (true) {
    if (!block_active_) {
      if (outer_exhausted_) return false;
      Status s = LoadNextBlock();
      if (!s.ok()) {
        status_ = std::move(s);
        return false;
      }
      if (outer_exhausted_) return false;
    }
    // Emit remaining matches of the current inner row.
    while (have_inner_ && match_range_.first != match_range_.second) {
      const size_t idx = match_range_.first->second;
      ++match_range_.first;
      ConcatRows(lschema, rschema, block_[idx].data(), inner_row_.data(), row,
                 ctx_);
      if (residual_ != nullptr &&
          !residual_->Eval(RowView(row->data(), &out_schema_), ctx_)) {
        continue;
      }
      ++rows_produced_;
      return true;
    }
    // Advance the inner stream.
    if (inner_->Next(&inner_row_)) {
      have_inner_ = true;
      if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
      KeyBytesInto(rschema, inner_key_cols_, inner_row_.data(), &key_buf_);
      match_range_ = hash_.equal_range(std::string_view(key_buf_));
      continue;
    }
    // Inner exhausted for this block: move to the next outer block.
    block_active_ = false;
    have_inner_ = false;
  }
}

// --------------------------------------------------------- BlockNLIndexJoin

BlockNLIndexJoinOp::BlockNLIndexJoinOp(
    OperatorPtr outer, std::string outer_key_col, const TableAccessor* inner_table,
    std::string inner_alias, std::string inner_join_col,
    lsm::ReadOptions inner_opts, Expr::Ptr inner_residual,
    std::vector<std::string> inner_projection, uint64_t buffer_bytes,
    sim::AccessContext* ctx)
    : outer_(std::move(outer)),
      outer_key_col_(std::move(outer_key_col)),
      inner_table_(inner_table),
      inner_alias_(std::move(inner_alias)),
      inner_opts_(inner_opts),
      inner_residual_(std::move(inner_residual)),
      buffer_bytes_(buffer_bytes),
      ctx_(ctx) {
  inner_aliased_schema_ = AliasSchema(inner_table_->schema(), inner_alias_);
  inner_join_col_ = inner_table_->schema().Find(inner_join_col);
  // Inner projection: default all columns.
  std::vector<int> cols;
  if (inner_projection.empty()) {
    for (size_t i = 0; i < inner_aliased_schema_.num_columns(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& name : inner_projection) {
      const int idx = inner_aliased_schema_.Find(name);
      if (idx >= 0) cols.push_back(idx);
    }
  }
  inner_out_cols_ = cols;
  inner_out_schema_ = inner_aliased_schema_.Project(cols);
}

Status BlockNLIndexJoinOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(outer_->Open());
  if (inner_join_col_ < 0) {
    return Status::InvalidArgument("BNLJI: unknown inner join column");
  }
  if (inner_table_->schema().column(inner_join_col_).type !=
      rel::ColType::kInt32) {
    return Status::NotSupported("BNLJI requires an int join column");
  }
  outer_key_idx_ = outer_->output_schema().Find(outer_key_col_);
  if (outer_key_idx_ < 0) {
    return Status::InvalidArgument("BNLJI: unknown outer key column " +
                                   outer_key_col_);
  }
  if (inner_join_col_ == inner_table_->def().pk_col) {
    inner_index_no_ = -1;  // primary-key lookups
  } else {
    inner_index_no_ = inner_table_->FindIndexOn(inner_join_col_);
    if (inner_index_no_ < 0) {
      return Status::InvalidArgument("BNLJI: no index on inner join column");
    }
  }
  if (inner_residual_ != nullptr) {
    HNDP_RETURN_IF_ERROR(inner_residual_->Bind(inner_aliased_schema_));
  }
  out_schema_ = Schema::Concat(outer_->output_schema(), inner_out_schema_);
  index_iter_.reset();
  if (inner_index_no_ >= 0) {
    index_iter_ = inner_table_->NewIndexIterator(
        inner_opts_, static_cast<size_t>(inner_index_no_));
  }
  block_.clear();
  outer_exhausted_ = false;
  matches_.clear();
  match_pos_ = 0;
  have_outer_ = false;
  lookups_ = 0;
  return Status::OK();
}

Status BlockNLIndexJoinOp::Rewind() { return Open(); }

Status BlockNLIndexJoinOp::LoadNextBlock() {
  uint64_t bytes = 0;
  std::string row;
  while (bytes < buffer_bytes_ && outer_->Next(&row)) {
    bytes += row.size();
    if (ctx_ != nullptr) ctx_->ChargeCopy(row.size());
    block_.push_back(std::move(row));
  }
  if (block_.empty()) outer_exhausted_ = true;
  return Status::OK();
}

Status BlockNLIndexJoinOp::LoadNextBlockBatched() {
  uint64_t bytes = 0;
  const size_t rs = outer_->output_schema().row_size();
  while (bytes < buffer_bytes_) {
    const uint64_t need =
        rs > 0 ? (buffer_bytes_ - bytes + rs - 1) / rs : uint64_t{1};
    const size_t req =
        static_cast<size_t>(need < uint64_t{4096} ? need : uint64_t{4096});
    RowBatch* ob = outer_->NextBatch(req);
    if (ob == nullptr) break;
    for (size_t k = 0; k < ob->num_active(); ++k) {
      block_.emplace_back(ob->active_row(k), rs);
      bytes += rs;
    }
    // One identical buffering copy per row, paid per pulled batch.
    if (ctx_ != nullptr) ctx_->ChargeCopyRepeated(rs, ob->num_active());
  }
  if (block_.empty()) outer_exhausted_ = true;
  return Status::OK();
}

Status BlockNLIndexJoinOp::FetchMatches(const RowView& outer_row) {
  matches_.clear();
  match_pos_ = 0;
  const int32_t key = outer_row.GetInt(outer_key_idx_);

  auto consider_row = [&](const std::string& base_row) {
    const RowView view(base_row.data(), &inner_aliased_schema_);
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kSelectionProcessing, 1);
    if (inner_residual_ != nullptr && !inner_residual_->Eval(view, ctx_)) {
      return;
    }
    std::string projected(inner_out_schema_.row_size(), '\0');
    for (size_t i = 0; i < inner_out_cols_.size(); ++i) {
      const int c = inner_out_cols_[i];
      memcpy(projected.data() + inner_out_schema_.offset(i),
             base_row.data() + inner_aliased_schema_.offset(c),
             inner_aliased_schema_.column(c).size);
    }
    if (ctx_ != nullptr) ctx_->ChargeCopy(projected.size());
    matches_.push_back(std::move(projected));
  };

  ++lookups_;
  if (inner_index_no_ < 0) {
    // Direct primary-key seek.
    Status s = inner_table_->GetByPk(inner_opts_, key, &base_row_buf_);
    if (s.ok()) consider_row(base_row_buf_);
    else if (!s.IsNotFound()) return s;
    return Status::OK();
  }

  // Secondary-index path (paper Fig. 9): seek the secondary LSM-tree for all
  // entries with this key, extract the primary keys, then seek each in the
  // primary LSM-tree.
  pk_prefix_buf_.clear();
  PutOrderedInt32(&pk_prefix_buf_, key);
  lsm::Iterator* iter = index_iter_.get();
  iter->Seek(Slice(pk_prefix_buf_));
  while (iter->Valid()) {
    const Slice ikey = iter->key();
    if (ikey.size() < 8 ||
        memcmp(ikey.data(), pk_prefix_buf_.data(), 4) != 0) {
      break;
    }
    const int32_t pk = GetOrderedInt32(ikey.data() + ikey.size() - 4);
    Status s = inner_table_->GetByPk(inner_opts_, pk, &base_row_buf_);
    if (s.ok()) consider_row(base_row_buf_);
    else if (!s.IsNotFound()) return s;
    iter->Next();
  }
  return Status::OK();
}

bool BlockNLIndexJoinOp::Next(std::string* row) {
  const Schema& lschema = outer_->output_schema();
  while (true) {
    if (match_pos_ < matches_.size()) {
      ConcatRows(lschema, inner_out_schema_, current_outer_.data(),
                 matches_[match_pos_].data(), row, ctx_);
      ++match_pos_;
      ++rows_produced_;
      return true;
    }
    if (block_.empty()) {
      if (outer_exhausted_) return false;
      Status s = LoadNextBlock();
      if (!s.ok()) {
        status_ = std::move(s);
        return false;
      }
      continue;
    }
    current_outer_ = std::move(block_.front());
    block_.pop_front();
    const RowView view(current_outer_.data(), &lschema);
    Status s = FetchMatches(view);
    if (!s.ok()) {
      status_ = std::move(s);
      return false;
    }
  }
}

RowBatch* BlockNLIndexJoinOp::NextBatch(size_t max_rows) {
  const Schema& lschema = outer_->output_schema();
  batch_.Reset(&out_schema_, max_rows);
  while (true) {
    if (match_pos_ < matches_.size()) {
      if (batch_.full()) return &batch_;
      ConcatRowsInto(lschema, inner_out_schema_, current_outer_.data(),
                     matches_[match_pos_].data(), batch_.AppendRow(), ctx_);
      ++match_pos_;
      ++rows_produced_;
      continue;
    }
    if (batch_.full()) return &batch_;
    if (block_.empty()) {
      if (batch_.num_active() > 0) return &batch_;  // before any child pull
      if (outer_exhausted_) return nullptr;
      Status s = LoadNextBlockBatched();
      if (!s.ok()) {
        status_ = std::move(s);
        return nullptr;
      }
      continue;
    }
    current_outer_ = std::move(block_.front());
    block_.pop_front();
    const RowView view(current_outer_.data(), &lschema);
    Status s = FetchMatches(view);
    if (!s.ok()) {
      // Rows already placed in batch_ stay delivered; the stream ends on
      // the next call and the drain surfaces status_.
      status_ = std::move(s);
      return batch_.num_active() > 0 ? &batch_ : nullptr;
    }
  }
}

std::string BlockNLIndexJoinOp::Describe() const {
  return std::string("BNLJI(") + inner_table_->name() +
         (inner_index_no_ < 0 ? " via pk" : " via secondary idx") + ")";
}

// ------------------------------------------------------------ GraceHashJoin

GraceHashJoinOp::GraceHashJoinOp(OperatorPtr left, OperatorPtr right,
                                 std::vector<JoinKey> keys, Expr::Ptr residual,
                                 int num_partitions, sim::AccessContext* ctx)
    : left_(std::move(left)),
      right_(std::move(right)),
      keys_(std::move(keys)),
      residual_(std::move(residual)),
      num_partitions_(num_partitions < 1 ? 1 : num_partitions),
      ctx_(ctx) {}

Status GraceHashJoinOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(left_->Open());
  HNDP_RETURN_IF_ERROR(right_->Open());
  HNDP_RETURN_IF_ERROR(ResolveKeys(keys_, left_->output_schema(),
                                   right_->output_schema(), &key_cols_));
  left_key_cols_ = LeftCols(key_cols_);
  right_key_cols_ = RightCols(key_cols_);
  out_schema_ = Schema::Concat(left_->output_schema(), right_->output_schema());
  if (residual_ != nullptr) {
    HNDP_RETURN_IF_ERROR(residual_->Bind(out_schema_));
  }
  partitioned_ = false;
  part_ = 0;
  in_match_ = false;
  return Status::OK();
}

Status GraceHashJoinOp::Rewind() { return Open(); }

Status GraceHashJoinOp::Partition() {
  left_parts_.assign(num_partitions_, {});
  right_parts_.assign(num_partitions_, {});
  std::string row;
  // Spilling a partition run writes it to storage and reads it back later;
  // charge both directions as streaming flash traffic plus the hash work.
  uint64_t spilled = 0;
  while (left_->Next(&row)) {
    KeyBytesInto(left_->output_schema(), left_key_cols_, row.data(),
                 &key_buf_);
    const size_t p = Hash64(Slice(key_buf_)) % num_partitions_;
    spilled += row.size();
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
    left_parts_[p].push_back(std::move(row));
  }
  while (right_->Next(&row)) {
    KeyBytesInto(right_->output_schema(), right_key_cols_, row.data(),
                 &key_buf_);
    const size_t p = Hash64(Slice(key_buf_)) % num_partitions_;
    spilled += row.size();
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
    right_parts_[p].push_back(std::move(row));
  }
  if (ctx_ != nullptr && spilled > 0) {
    ctx_->ChargeFlashRead(spilled);  // spill write
    ctx_->ChargeFlashRead(spilled);  // reload
  }
  partitioned_ = true;
  return Status::OK();
}

Status GraceHashJoinOp::StartPartition(size_t p) {
  hash_.clear();
  const auto& build = left_parts_[p];
  for (size_t i = 0; i < build.size(); ++i) {
    KeyBytesInto(left_->output_schema(), left_key_cols_, build[i].data(),
                 &key_buf_);
    hash_.emplace(key_buf_, i);
    if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashBuild, 1);
  }
  probe_pos_ = 0;
  in_match_ = false;
  return Status::OK();
}

Status GraceHashJoinOp::PartitionBatched(size_t max_rows) {
  left_parts_.assign(num_partitions_, {});
  right_parts_.assign(num_partitions_, {});
  uint64_t spilled = 0;
  const auto drain = [&](Operator* side, const std::vector<int>& key_cols,
                         std::vector<std::vector<std::string>>* parts) {
    const Schema& schema = side->output_schema();
    const size_t rs = schema.row_size();
    while (RowBatch* b = side->NextBatch(max_rows)) {
      for (size_t k = 0; k < b->num_active(); ++k) {
        const char* r = b->active_row(k);
        KeyBytesInto(schema, key_cols, r, &key_buf_);
        const size_t p = Hash64(Slice(key_buf_)) % num_partitions_;
        spilled += rs;
        (*parts)[p].emplace_back(r, rs);
      }
      // One identical partition-hash charge per row, paid per batch
      // (before the next pull, so nothing crosses a stall boundary).
      if (ctx_ != nullptr) {
        ctx_->ChargeRepeated(sim::CostKind::kHashProbe, 1, b->num_active());
      }
    }
  };
  drain(left_.get(), left_key_cols_, &left_parts_);
  drain(right_.get(), right_key_cols_, &right_parts_);
  if (ctx_ != nullptr && spilled > 0) {
    ctx_->ChargeFlashRead(spilled);  // spill write
    ctx_->ChargeFlashRead(spilled);  // reload
  }
  partitioned_ = true;
  return Status::OK();
}

RowBatch* GraceHashJoinOp::NextBatch(size_t max_rows) {
  if (!partitioned_) {
    Status s = PartitionBatched(max_rows);
    if (!s.ok()) {
      status_ = std::move(s);
      return nullptr;
    }
    part_ = 0;
    if (Status sp = StartPartition(0); !sp.ok()) {
      status_ = std::move(sp);
      return nullptr;
    }
  }
  const Schema& lschema = left_->output_schema();
  const Schema& rschema = right_->output_schema();
  batch_.Reset(&out_schema_, max_rows);
  while (part_ < left_parts_.size()) {
    auto& probe = right_parts_[part_];
    while (true) {
      if (in_match_ && match_range_.first != match_range_.second) {
        if (batch_.full()) return &batch_;
        const size_t build_idx = match_range_.first->second;
        ++match_range_.first;
        char* dst = batch_.PeekRow();
        ConcatRowsInto(lschema, rschema, left_parts_[part_][build_idx].data(),
                       probe[probe_pos_ - 1].data(), dst, ctx_);
        if (residual_ != nullptr &&
            !residual_->Eval(RowView(dst, &out_schema_), ctx_)) {
          continue;
        }
        batch_.CommitRow();
        ++rows_produced_;
        continue;
      }
      in_match_ = false;
      if (batch_.full()) return &batch_;
      if (probe_pos_ >= probe.size()) break;
      KeyBytesInto(rschema, right_key_cols_, probe[probe_pos_].data(),
                   &key_buf_);
      ++probe_pos_;
      if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
      match_range_ = hash_.equal_range(std::string_view(key_buf_));
      in_match_ = true;
    }
    ++part_;
    if (part_ < left_parts_.size()) {
      if (Status sp = StartPartition(part_); !sp.ok()) {
        status_ = std::move(sp);
        return nullptr;
      }
    }
  }
  return batch_.num_active() > 0 ? &batch_ : nullptr;
}

bool GraceHashJoinOp::Next(std::string* row) {
  if (!partitioned_) {
    Status s = Partition();
    if (!s.ok()) {
      status_ = std::move(s);
      return false;
    }
    part_ = 0;
    if (Status sp = StartPartition(0); !sp.ok()) {
      status_ = std::move(sp);
      return false;
    }
  }
  while (part_ < left_parts_.size()) {
    auto& probe = right_parts_[part_];
    while (true) {
      if (in_match_ && match_range_.first != match_range_.second) {
        const size_t build_idx = match_range_.first->second;
        ++match_range_.first;
        ConcatRows(left_->output_schema(), right_->output_schema(),
                   left_parts_[part_][build_idx].data(),
                   probe[probe_pos_ - 1].data(), row, ctx_);
        if (residual_ != nullptr &&
            !residual_->Eval(RowView(row->data(), &out_schema_), ctx_)) {
          continue;
        }
        ++rows_produced_;
        return true;
      }
      in_match_ = false;
      if (probe_pos_ >= probe.size()) break;
      KeyBytesInto(right_->output_schema(), right_key_cols_,
                   probe[probe_pos_].data(), &key_buf_);
      ++probe_pos_;
      if (ctx_ != nullptr) ctx_->Charge(sim::CostKind::kHashProbe, 1);
      match_range_ = hash_.equal_range(std::string_view(key_buf_));
      in_match_ = true;
    }
    ++part_;
    if (part_ < left_parts_.size()) {
      if (Status sp = StartPartition(part_); !sp.ok()) {
        status_ = std::move(sp);
        return false;
      }
    }
  }
  return false;
}

}  // namespace hybridndp::exec
