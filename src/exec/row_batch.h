// Batch-at-a-time row storage for the vectorized execution path (paper
// Sect. 4: the device fills multi-slot shared buffers with intermediate
// result *batches*; the host consumes them batch-wise). A RowBatch is a
// fixed-capacity, arena-backed array of fixed-size rows in one schema, plus
// a selection vector: filters narrow the selection in place instead of
// copying survivors.
//
// The batch path must stay metric-identical to the row path; RowBatch
// itself never touches an AccessContext — operators charge exactly the
// per-row costs their Next() path charges (see DESIGN.md §10).

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.h"
#include "rel/schema.h"

namespace hybridndp::exec {

/// Fixed-capacity, schema-typed row storage with a selection vector.
///
/// Layout: `capacity()` row slots of `row_size()` bytes each, contiguous in
/// arena-backed memory; `sel_[0..num_active())` holds the indexes of the
/// rows that are logically present, in output order. Appending a row
/// identity-selects it, so a batch that no filter touched has
/// `sel_[k] == k` for all k.
class RowBatch {
 public:
  RowBatch() = default;
  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  /// Slab ceiling per batch. Batches above the allocator's mmap/trim
  /// threshold (128 KiB in glibc) make every operator instantiation fault
  /// in fresh pages for its row storage and return them on destruction —
  /// measured as 131k vs 3k minor faults over bench_fig12_matrix. Capping
  /// the slab keeps it heap-served and recycled. The cap is invisible to
  /// callers: NextBatch may always return fewer rows than requested.
  static constexpr size_t kMaxBatchBytes = 64 * 1024;

  /// Clear the batch and (re)bind it to `schema` with room for `max_rows`
  /// rows (capped at kMaxBatchBytes of storage). Storage is reused when it
  /// is already big enough; regrowing invalidates pointers returned by
  /// earlier row() calls.
  void Reset(const rel::Schema* schema, size_t max_rows) {
    schema_ = schema;
    row_size_ = schema->row_size();
    if (row_size_ > 0 && max_rows > kMaxBatchBytes / row_size_) {
      const size_t cap_rows = kMaxBatchBytes / row_size_;
      max_rows = cap_rows > 0 ? cap_rows : 1;
    }
    cap_ = max_rows;
    n_rows_ = 0;
    n_active_ = 0;
    const size_t bytes = row_size_ * cap_;
    if (bytes > alloc_bytes_) {
      arena_.Reset();
      data_ = arena_.Allocate(bytes > 0 ? bytes : 1);
      alloc_bytes_ = bytes;
    }
    if (sel_.size() < cap_) sel_.resize(cap_);
  }

  const rel::Schema& schema() const { return *schema_; }
  uint32_t row_size() const { return row_size_; }
  size_t capacity() const { return cap_; }
  /// Physical rows appended (including rows later filtered out).
  size_t size() const { return n_rows_; }
  bool full() const { return n_rows_ >= cap_; }

  /// Pointer to the next free row slot without committing it. Producers
  /// that may discard a row (e.g. a join writing the concatenation before
  /// evaluating the residual) write here first and CommitRow() on success;
  /// a rejected row simply leaves the slot to be overwritten.
  char* PeekRow() { return data_ + n_rows_ * row_size_; }
  void CommitRow() {
    sel_[n_active_++] = static_cast<uint32_t>(n_rows_++);
  }
  /// Commit-and-return: the common append for rows that always survive.
  char* AppendRow() {
    char* p = PeekRow();
    CommitRow();
    return p;
  }
  void AppendCopy(const char* src) { memcpy(AppendRow(), src, row_size_); }

  const char* row(size_t i) const { return data_ + i * row_size_; }
  char* mutable_row(size_t i) { return data_ + i * row_size_; }

  /// Selection vector: logical (surviving) rows in output order.
  size_t num_active() const { return n_active_; }
  uint32_t sel(size_t k) const { return sel_[k]; }
  const char* active_row(size_t k) const { return row(sel_[k]); }
  /// In-place narrowing (FilterOp): callers overwrite a prefix of the
  /// selection vector and shrink the active count.
  uint32_t* mutable_sel() { return sel_.data(); }
  void SetNumActive(size_t n) { n_active_ = n; }

 private:
  Arena arena_;
  char* data_ = nullptr;
  const rel::Schema* schema_ = nullptr;
  uint32_t row_size_ = 0;
  size_t cap_ = 0;
  size_t n_rows_ = 0;
  size_t n_active_ = 0;
  size_t alloc_bytes_ = 0;
  std::vector<uint32_t> sel_;
};

}  // namespace hybridndp::exec
