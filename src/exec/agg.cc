#include <algorithm>
#include <limits>

#include "exec/operator.h"

namespace hybridndp::exec {

GroupByAggOp::GroupByAggOp(OperatorPtr child,
                           std::vector<std::string> group_cols,
                           std::vector<AggSpec> aggs, sim::AccessContext* ctx)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      ctx_(ctx) {}

Status GroupByAggOp::Open() {
  status_ = Status::OK();
  HNDP_RETURN_IF_ERROR(child_->Open());
  const Schema& in = child_->output_schema();

  group_idx_.clear();
  std::vector<rel::Column> out_cols;
  for (const auto& name : group_cols_) {
    const int idx = in.Find(name);
    if (idx < 0) return Status::InvalidArgument("group col missing: " + name);
    group_idx_.push_back(idx);
    out_cols.push_back(in.column(idx));
  }
  agg_idx_.clear();
  for (const auto& agg : aggs_) {
    int idx = -1;
    if (!agg.column.empty()) {
      idx = in.Find(agg.column);
      if (idx < 0) return Status::InvalidArgument("agg col missing: " + agg.column);
    } else if (agg.fn != AggFn::kCount) {
      return Status::InvalidArgument("only COUNT may omit its column");
    }
    agg_idx_.push_back(idx);
    // Output column type: MIN/MAX keep the input type; the rest are ints.
    if ((agg.fn == AggFn::kMin || agg.fn == AggFn::kMax) && idx >= 0 &&
        in.column(idx).type == rel::ColType::kChar) {
      out_cols.push_back(rel::CharCol(agg.output_name, in.column(idx).size));
    } else {
      out_cols.push_back(rel::IntCol(agg.output_name));
    }
  }
  out_schema_ = Schema(std::move(out_cols));
  groups_.clear();
  consumed_ = false;
  return Status::OK();
}

Status GroupByAggOp::Rewind() { return Open(); }

bool GroupByAggOp::UpdateGroups(const RowView& view, const char* row_data,
                                sim::AccessContext* ctx) {
  const Schema& in = child_->output_schema();
  // Group key = raw bytes of the group columns (buffer reused per row; the
  // map only copies it when a new group is inserted).
  KeyBytesInto(in, group_idx_, row_data, &key_buf_);
  auto [it, inserted] = groups_.try_emplace(key_buf_);
  if (inserted) {
    it->second.resize(aggs_.size());
    if (ctx != nullptr) ctx->ChargeCopy(key_buf_.size());
  }
  if (ctx != nullptr) {
    ctx->Charge(sim::CostKind::kHashProbe, 1);
    ctx->Charge(sim::CostKind::kAggUpdate, aggs_.size());
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    AggState& st = it->second[a];
    const int idx = agg_idx_[a];
    ++st.count;
    if (idx < 0) continue;  // COUNT(*)
    if (in.column(idx).type == rel::ColType::kInt32) {
      const int64_t v = view.GetInt(idx);
      st.sum += v;
      if (!st.seen || v < st.min_int) st.min_int = v;
      if (!st.seen || v > st.max_int) st.max_int = v;
    } else {
      const std::string v = view.GetString(idx).ToString();
      if (!st.seen || v < st.min_str) st.min_str = v;
      if (!st.seen || v > st.max_str) st.max_str = v;
    }
    st.seen = true;
  }
  return inserted;
}

Status GroupByAggOp::Consume() {
  const Schema& in = child_->output_schema();
  std::string row;
  while (child_->Next(&row)) {
    UpdateGroups(RowView(row.data(), &in), row.data(), ctx_);
  }
  // Global aggregate with no groups: always emit one row, even on empty
  // input (SQL semantics for aggregates without GROUP BY).
  if (group_cols_.empty() && groups_.empty()) {
    groups_.try_emplace(std::string()).first->second.resize(aggs_.size());
  }
  emit_it_ = groups_.begin();
  consumed_ = true;
  return Status::OK();
}

Status GroupByAggOp::ConsumeBatched(size_t max_rows) {
  const Schema& in = child_->output_schema();
  while (RowBatch* b = child_->NextBatch(max_rows)) {
    uint64_t inserts = 0;
    for (size_t k = 0; k < b->num_active(); ++k) {
      const char* r = b->active_row(k);
      if (UpdateGroups(RowView(r, &in), r, nullptr)) ++inserts;
    }
    // Per-row probe/update charges are identical across the batch; the
    // insert copy charge is identical per new group (fixed key width).
    // Charged per child batch, before the next pull, so nothing crosses a
    // stall boundary.
    if (ctx_ != nullptr) {
      const uint64_t n = b->num_active();
      ctx_->ChargeRepeated(sim::CostKind::kHashProbe, 1, n);
      ctx_->ChargeRepeated(sim::CostKind::kAggUpdate, aggs_.size(), n);
      ctx_->ChargeCopyRepeated(key_buf_.size(), inserts);
    }
  }
  if (group_cols_.empty() && groups_.empty()) {
    groups_.try_emplace(std::string()).first->second.resize(aggs_.size());
  }
  emit_it_ = groups_.begin();
  consumed_ = true;
  return Status::OK();
}

void GroupByAggOp::EmitGroupInto(char* dst) const {
  // Group key columns first.
  size_t out_col = 0;
  size_t key_off = 0;
  for (size_t g = 0; g < group_idx_.size(); ++g, ++out_col) {
    const uint32_t width = out_schema_.column(out_col).size;
    memcpy(dst + out_schema_.offset(out_col), emit_it_->first.data() + key_off,
           width);
    key_off += width;
  }
  // Aggregates.
  for (size_t a = 0; a < aggs_.size(); ++a, ++out_col) {
    const AggState& st = emit_it_->second[a];
    const uint32_t offset = out_schema_.offset(out_col);
    int64_t v = 0;
    switch (aggs_[a].fn) {
      case AggFn::kCount:
        v = st.count;
        break;
      case AggFn::kSum:
        v = st.sum;
        break;
      case AggFn::kAvg:
        v = st.count > 0 ? st.sum / st.count : 0;
        break;
      case AggFn::kMin:
      case AggFn::kMax: {
        if (out_schema_.column(out_col).type == rel::ColType::kChar) {
          const std::string& s =
              aggs_[a].fn == AggFn::kMin ? st.min_str : st.max_str;
          const size_t n =
              std::min<size_t>(s.size(), out_schema_.column(out_col).size);
          memcpy(dst + offset, s.data(), n);
          continue;
        }
        v = aggs_[a].fn == AggFn::kMin ? st.min_int : st.max_int;
        break;
      }
    }
    EncodeFixed32(dst + offset,
                  static_cast<uint32_t>(static_cast<int32_t>(
                      std::clamp<int64_t>(v, std::numeric_limits<int32_t>::min(),
                                          std::numeric_limits<int32_t>::max()))));
  }
}

bool GroupByAggOp::Next(std::string* row) {
  if (!consumed_) {
    Status s = Consume();
    if (!s.ok()) {
      status_ = std::move(s);
      return false;
    }
  }
  if (emit_it_ == groups_.end()) return false;

  row->assign(out_schema_.row_size(), '\0');
  EmitGroupInto(row->data());
  if (ctx_ != nullptr) ctx_->ChargeCopy(row->size());
  ++emit_it_;
  ++rows_produced_;
  return true;
}

RowBatch* GroupByAggOp::NextBatch(size_t max_rows) {
  if (!consumed_) {
    Status s = ConsumeBatched(max_rows);
    if (!s.ok()) {
      status_ = std::move(s);
      return nullptr;
    }
  }
  if (emit_it_ == groups_.end()) return nullptr;
  batch_.Reset(&out_schema_, max_rows);
  while (!batch_.full() && emit_it_ != groups_.end()) {
    char* dst = batch_.AppendRow();
    memset(dst, 0, out_schema_.row_size());
    EmitGroupInto(dst);
    ++emit_it_;
    ++rows_produced_;
  }
  // Identical emission copies, charged once per batch.
  if (ctx_ != nullptr) {
    ctx_->ChargeCopyRepeated(out_schema_.row_size(), batch_.num_active());
  }
  return &batch_;
}

}  // namespace hybridndp::exec
